"""Urban development simulation (the paper's first motivating application).

A city council will build one new public facility per budget year, each
time choosing among the parcels currently for sale so that the average
resident-to-facility distance falls the most.  Each round:

1. run the min-dist location selection query (MND method) over the
   current facility set and the parcels on the market;
2. build the winning facility — the ``dnn`` values of the affected
   residents are maintained *incrementally* (no full recomputation);
3. the sold parcel leaves the market and new parcels are listed.

Run:  python examples/urban_planning.py
"""

import random

from repro.core import Workspace
from repro.core.mnd import MaximumNFCDistance
from repro.datasets import real_instance
from repro.datasets.generators import DOMAIN, SpatialInstance, uniform_points
from repro.geometry.point import Point
from repro.knnjoin import DnnMaintainer

ROUNDS = 6
PARCELS_PER_ROUND = 40


def main() -> None:
    rng = random.Random(1984)

    # A clustered city: the DCW-substitute "US" instance at small scale.
    city = real_instance("US", rng=rng, scale=0.2)
    residents = city.clients
    facilities = list(city.facilities[:40])  # the city starts small
    market: list[Point] = list(uniform_points(PARCELS_PER_ROUND, rng=rng))

    maintainer = DnnMaintainer(residents, facilities)
    print(f"{len(residents)} residents, {len(facilities)} existing facilities")
    print(f"initial average distance: {maintainer.distances.mean():.2f}\n")

    for year in range(1, ROUNDS + 1):
        # Fresh workspace over the current state; dnn values are handed
        # over from the incrementally-maintained join result.
        instance = SpatialInstance(
            name=f"year-{year}",
            clients=residents,
            facilities=list(maintainer.facilities),
            potentials=market,
            domain=DOMAIN,
        )
        ws = Workspace(instance)
        result = MaximumNFCDistance(ws).select()

        chosen = result.location
        affected = maintainer.add_facility(Point(chosen.x, chosen.y))
        market = [p for i, p in enumerate(market) if i != chosen.sid]
        market.extend(uniform_points(PARCELS_PER_ROUND // 2, rng=rng))

        print(
            f"year {year}: build at ({chosen.x:7.2f}, {chosen.y:7.2f})  "
            f"dr={result.dr:9.2f}  residents helped={affected:5d}  "
            f"avg distance now {maintainer.distances.mean():.2f}  "
            f"(query: {result.io_total} I/Os, {result.elapsed_s:.3f}s)"
        )

    assert maintainer.verify(), "incremental dnn maintenance drifted"
    print("\nincremental dnn values verified against full recomputation")


if __name__ == "__main__":
    main()
