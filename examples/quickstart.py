"""Quickstart: answer a min-dist location selection query.

Generates a small synthetic city, asks where to put one new facility so
the average client-to-nearest-facility distance drops the most, and
shows that all four methods of the paper agree — while costing very
different amounts of I/O.

Run:  python examples/quickstart.py
"""

from repro.core import METHODS, Workspace, make_selector, select_location
from repro.core import naive
from repro.datasets import make_instance


def main() -> None:
    # --- one-call API ----------------------------------------------------
    clients = [(10, 10), (12, 11), (90, 95), (88, 92), (91, 90)]
    facilities = [(50, 50)]
    potentials = [(11, 10), (90, 93), (50, 55)]
    result = select_location(clients, facilities, potentials)
    print("tiny example:")
    print(
        "  establish the new facility at potential location "
        f"p{result.location.sid} = ({result.location.x}, {result.location.y})"
    )
    print(f"  total client travel distance drops by {result.dr:.2f}\n")

    # --- full workspace API ----------------------------------------------
    instance = make_instance(n_c=20_000, n_f=1_000, n_p=1_000, rng=2012)
    ws = Workspace(instance)

    before = naive.objective_sum(ws) / ws.n_c
    print(
        f"synthetic city: {ws.n_c} clients, {ws.n_f} facilities, "
        f"{ws.n_p} candidate sites"
    )
    print(f"average distance to nearest facility before: {before:.3f}\n")

    print(
        f"{'method':>6} {'answer':>8} {'dr':>12} {'I/Os':>7} "
        f"{'time(s)':>8} {'index pages':>12}"
    )
    best = None
    for name in METHODS:
        r = make_selector(ws, name).select()
        print(
            f"{name:>6} {'p%d' % r.location.sid:>8} {r.dr:>12.2f} "
            f"{r.io_total:>7} {r.elapsed_s:>8.3f} {r.index_pages:>12}"
        )
        best = r

    assert best is not None
    after = naive.objective_sum(ws, best.location) / ws.n_c
    print(
        f"\naverage distance after establishing p{best.location.sid}: "
        f"{after:.3f}  ({before - after:.3f} saved per client)"
    )


if __name__ == "__main__":
    main()
