"""Regenerate the paper's evaluation tables from the library API.

Runs each figure's sweep at a configurable scale and prints the series
the paper plots (running time, number of I/Os, index size per method).
At ``--scale 1.0`` this reruns the paper's exact cardinalities (slow in
pure Python); the default 0.2 preserves every cardinality ratio.

Run:  python examples/reproduce_figures.py [--scale 0.2] [--figures fig11,fig14]
"""

import argparse

from repro.experiments import format_sweep
from repro.experiments.sweeps import (
    client_size_sweep,
    facility_size_sweep,
    gaussian_sweep,
    potential_size_sweep,
    real_dataset_runs,
    zipfian_sweep,
)

FIGURES = {
    "fig10": ("Fig. 10 — effect of client set size", client_size_sweep),
    "fig11": ("Fig. 11 — effect of existing facility set size", facility_size_sweep),
    "fig12": (
        "Fig. 12 — effect of potential location set size",
        potential_size_sweep,
    ),
    "fig13": ("Fig. 13 — effect of sigma^2 (Gaussian)", gaussian_sweep),
    "fig13b": ("Sec. VIII-C — effect of alpha (Zipfian)", zipfian_sweep),
    "fig14": ("Fig. 14 — real datasets (US / NA substitutes)", real_dataset_runs),
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument(
        "--figures", default="fig11,fig14", help="comma-separated; 'all' for everything"
    )
    args = parser.parse_args()

    names = list(FIGURES) if args.figures == "all" else args.figures.split(",")
    for name in names:
        title, sweep_fn = FIGURES[name]
        print("=" * 72)
        print(title)
        print("=" * 72)
        sweep = sweep_fn(scale=args.scale)
        print(format_sweep(sweep))
        print()


if __name__ == "__main__":
    main()
