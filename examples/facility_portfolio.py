"""Facility portfolio management — extensions beyond the paper's query.

A chain operator manages a portfolio over time:

1. **Expansion** — open five new stores, chosen greedily with repeated
   min-dist location selection queries (``select_sequence``), with the
   clients' nearest-facility distances maintained incrementally.
2. **Consolidation** — budget cuts force one closure; the *facility
   closure query* (``select_closure``) finds the store whose loss hurts
   average customer distance the least.
3. **Cold archives** — the client index is serialised to a binary page
   file and reopened read-only; the same MND join runs against the
   on-disk index with identical answers and I/O accounting.

Run:  python examples/facility_portfolio.py
"""

import tempfile
from pathlib import Path

from repro.core import Workspace, select_closure, select_sequence
from repro.core.greedy import coverage_curve
from repro.core.naive import objective_sum
from repro.datasets import make_instance
from repro.rtree.persist import DiskRTree, save_rtree
from repro.rtree.window import window_query
from repro.storage.codecs import ClientCodec
from repro.storage.stats import IOStats


def main() -> None:
    instance = make_instance(n_c=8_000, n_f=60, n_p=120, rng=404)
    ws = Workspace(instance)
    print(f"{ws.n_c} customers, {ws.n_f} stores, {ws.n_p} candidate sites")
    print(f"average distance to nearest store: {objective_sum(ws) / ws.n_c:.2f}\n")

    # --- 1. greedy expansion ------------------------------------------------
    print("expansion: five new stores, greedy min-dist selection")
    steps = select_sequence(instance, k=5, method="MND")
    for rank, step in enumerate(steps, start=1):
        print(
            f"  #{rank}: site p{step.location.sid} at "
            f"({step.location.x:7.2f}, {step.location.y:7.2f})  "
            f"dr={step.dr:9.2f}  ({step.io_total} I/Os)"
        )
    curve = coverage_curve(steps)
    print("  cumulative distance saved: " + " -> ".join(f"{v:.0f}" for v in curve))

    # --- 2. consolidation ---------------------------------------------------
    facilities = list(instance.facilities) + [
        (s.location.x, s.location.y) for s in steps
    ]
    victim, damage = select_closure(instance.clients, facilities)
    print(
        f"\nconsolidation: closing store f{victim.sid} at "
        f"({victim.x:.2f}, {victim.y:.2f}) costs only {damage:.2f} "
        "total distance"
    )

    # --- 3. cold on-disk index ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "clients.mnd.pages"
        pages = save_rtree(ws.mnd_tree, path, ClientCodec())
        print(
            f"\nserialised R_C^m: {pages} pages "
            f"({path.stat().st_size / 1024:.0f} KiB on disk)"
        )

        disk_stats = IOStats()
        disk_tree = DiskRTree(
            "R_C^m(disk)",
            path,
            ClientCodec(),
            disk_stats,
            radius_of=lambda c: c.dnn,
        )
        # Run a point query on both copies and compare I/O costs.
        from repro.geometry.rect import Rect

        window = Rect(450, 450, 560, 560)
        mem_hits = sorted(c.cid for c in window_query(ws.mnd_tree, window))
        disk_hits = sorted(c.cid for c in window_query(disk_tree, window))
        assert mem_hits == disk_hits
        print(
            f"window query over the disk index: {len(disk_hits)} clients, "
            f"{disk_stats.total_reads} page reads — identical to memory"
        )
        disk_tree.close()


if __name__ == "__main__":
    main()
