"""Fire-station placement on a road network.

Emergency response times follow roads, not straight lines.  This
example places a new fire station on a synthetic road network twice —
once with the paper's Euclidean query, once with the network variant —
and measures both answers *on the network*.  On grid-like cities the
two often agree; on sparse networks the Euclidean shortcut can pick a
station that looks central but is poorly connected.

Run:  python examples/road_network.py
"""

import random

from repro.core import Workspace
from repro.core.mnd import MaximumNFCDistance
from repro.datasets.generators import SpatialInstance
from repro.network import NetworkMindistQuery, delaunay_network, network_dnn

N_CLIENTS = 400
N_FACILITIES = 8
N_CANDIDATES = 12


def main() -> None:
    rng = random.Random(911)
    net = delaunay_network(500, rng=rng)
    nodes = net.nodes()

    client_nodes = [rng.choice(nodes) for __ in range(N_CLIENTS)]
    facility_nodes = rng.sample(nodes, N_FACILITIES)
    candidate_nodes = rng.sample(
        [n for n in nodes if n not in facility_nodes], N_CANDIDATES
    )
    print(f"road network: {net.num_nodes} intersections, {net.num_edges} roads")
    print(
        f"{N_CLIENTS} households, {N_FACILITIES} stations, "
        f"{N_CANDIDATES} candidate sites\n"
    )

    # --- network-aware selection -----------------------------------------
    query = NetworkMindistQuery(net, client_nodes, facility_nodes, candidate_nodes)
    network_result = query.select(pruned=True)
    print(
        f"network query: build at intersection {network_result.candidate_node} "
        f"(network dr = {network_result.dr:.1f}, "
        f"{network_result.settled_nodes} nodes settled)"
    )

    # --- Euclidean selection over the same objects ------------------------
    instance = SpatialInstance(
        name="euclidean-view",
        clients=[net.position(n) for n in client_nodes],
        facilities=[net.position(n) for n in facility_nodes],
        potentials=[net.position(n) for n in candidate_nodes],
    )
    euclid_result = MaximumNFCDistance(Workspace(instance)).select()
    euclid_node = candidate_nodes[euclid_result.location.sid]
    print(
        f"euclidean query: build at intersection {euclid_node} "
        f"(euclidean dr = {euclid_result.dr:.1f})"
    )

    # --- judge both answers by actual road distances -----------------------
    dnn = network_dnn(net, facility_nodes)
    base = sum(dnn[c] for c in client_nodes)
    by_candidate = network_result.dr_by_candidate
    print("\nevaluated on the road network (total household->station metres):")
    print(f"  today                : {base:12.1f}")
    network_gain = base - by_candidate[network_result.candidate_node]
    print(f"  network choice       : {network_gain:12.1f}")
    print(f"  euclidean choice     : {base - by_candidate[euclid_node]:12.1f}")
    loss = by_candidate[network_result.candidate_node] - by_candidate[euclid_node]
    if loss > 1e-9:
        print(f"  -> ignoring the roads costs {loss:.1f} metres of coverage")
    else:
        print("  -> both queries agree on this city")


if __name__ == "__main__":
    main()
