"""MMOG rejoin-point selection (the paper's second motivating application).

A raid group is spread across a quest region fighting mobs.  A player
who rejoins mid-quest should spawn at the preset rejoin location that
minimises the average distance between a mob and its nearest player —
so the team covers the mobs best once she arrives.

Mobs are the clients, currently online teammates are the existing
facilities, and the game's preset rejoin points are the potential
locations.  The quest moves across the map in waves; the query is run
at every rejoin event, demonstrating repeated selection over a changing
world (the reason the paper formulates the problem as a *query*).

Run:  python examples/mmog_rejoin.py
"""

import random

from repro.core import Workspace
from repro.core.mnd import MaximumNFCDistance
from repro.core.naive import objective_sum
from repro.datasets.generators import DOMAIN, SpatialInstance
from repro.geometry.point import Point

REJOIN_POINTS = 24
TEAM_SIZE = 12
WAVES = 4
MOBS_PER_CAMP = 60


def _camp(center: Point, spread: float, n: int, rng: random.Random) -> list[Point]:
    return [
        Point(rng.gauss(center[0], spread), rng.gauss(center[1], spread))
        for _ in range(n)
    ]


def main() -> None:
    rng = random.Random(70)  # level 70, naturally

    # Preset rejoin locations: a fixed grid of graveyards/flight points.
    rejoin_points = [
        Point(x * DOMAIN.width / 5 + 100, y * DOMAIN.height / 5 + 100)
        for x in range(5)
        for y in range(5)
    ][:REJOIN_POINTS]

    # The quest path: camps the raid clears in order.
    path = [Point(150, 150), Point(450, 300), Point(700, 550), Point(850, 850)]

    for wave, camp_center in enumerate(path, start=1):
        # Mobs: mostly at the current camp, stragglers at the next one.
        mobs = _camp(camp_center, 60.0, MOBS_PER_CAMP, rng)
        if wave < len(path):
            mobs += _camp(path[wave], 90.0, MOBS_PER_CAMP // 3, rng)
        # Teammates: scattered around the current camp.
        team = _camp(camp_center, 120.0, TEAM_SIZE, rng)

        instance = SpatialInstance(
            name=f"wave-{wave}",
            clients=mobs,
            facilities=team,
            potentials=rejoin_points,
        )
        ws = Workspace(instance)
        result = MaximumNFCDistance(ws).select()

        avg_before = objective_sum(ws) / len(mobs)
        avg_after = objective_sum(ws, result.location) / len(mobs)
        print(
            f"wave {wave}: camp at ({camp_center[0]:.0f},{camp_center[1]:.0f})  "
            f"-> rejoin at ({result.location.x:.0f},{result.location.y:.0f})  "
            f"avg mob distance {avg_before:6.1f} -> {avg_after:6.1f}  "
            f"({result.io_total} I/Os)"
        )

        # Sanity: the chosen rejoin point is optimal among all presets.
        best = min(rejoin_points, key=lambda p: objective_sum(ws, p))
        assert objective_sum(ws, best) >= avg_after * len(mobs) - 1e-6

    print(
        "\nall waves answered; the chosen spawn always minimised the "
        "average mob-to-player distance"
    )


if __name__ == "__main__":
    main()
