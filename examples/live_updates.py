"""Continuous selection over a live city (dynamic + incremental APIs).

A delivery company keeps a standing answer to "where should the next
depot go?" while the world changes underneath: customers sign up and
churn, competitor-driven depots open and close.  ``ContinuousSelection``
maintains the full distance-reduction vector under each update, so the
current best site is always an O(|P|) lookup away — no re-evaluation.

Run:  python examples/live_updates.py
"""

import random

from repro.core.continuous import ContinuousSelection
from repro.core.dynamic import DynamicWorkspace
from repro.datasets import make_instance
from repro.geometry.point import Point

EVENTS = 30


def main() -> None:
    rng = random.Random(24)
    ws = DynamicWorkspace(make_instance(n_c=3000, n_f=40, n_p=80, rng=rng))
    monitor = ContinuousSelection(ws)

    site, dr = monitor.best()
    print(f"initial best site: p{site.sid} (dr={dr:.1f})\n")

    changes = 0
    for event in range(1, EVENTS + 1):
        roll = rng.random()
        if roll < 0.5:
            monitor.add_client(Point(rng.uniform(0, 1000), rng.uniform(0, 1000)))
            kind = "customer signup   "
        elif roll < 0.75:
            monitor.remove_client(rng.choice(ws.clients))
            kind = "customer churn    "
        elif roll < 0.9 or len(ws.facilities) <= 3:
            monitor.add_facility(Point(rng.uniform(0, 1000), rng.uniform(0, 1000)))
            kind = "depot opened      "
        else:
            monitor.remove_facility(rng.choice(ws.facilities))
            kind = "depot closed      "

        new_site, new_dr = monitor.best()
        marker = ""
        if new_site.sid != site.sid:
            changes += 1
            marker = f"  <- best site moved p{site.sid} -> p{new_site.sid}"
        site, dr = new_site, new_dr
        print(f"event {event:2d}: {kind} best=p{site.sid} dr={dr:9.1f}{marker}")

    assert monitor.verify(), "incremental dr maintenance drifted"
    print(
        f"\n{EVENTS} updates, best site changed {changes} times; "
        "maintained vector verified against a fresh evaluation"
    )


if __name__ == "__main__":
    main()
