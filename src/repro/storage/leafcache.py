"""Workspace-level cache of decoded leaf-node arrays.

The join methods (NFC, MND) and the QVC window query evaluate leaf
nodes with vectorised numpy kernels, which requires *decoding* a leaf's
entry list into flat coordinate/weight arrays.  The paper charges the
page **read**; the decode is a pure CPU artefact of our implementation.
Historically each selector kept a private ``self._leaf_cache`` dict that
was rebuilt per query and — in the MND case — never cleared, pinning
decoded arrays on the selector for its lifetime.

:class:`DecodedLeafCache` replaces those instance attributes with one
workspace-owned cache:

* keyed by ``(tree_name, node_id)``, so all methods and all queries over
  the same workspace share one decode per leaf;
* the page read is still charged by the caller *before* consulting the
  cache — caching never changes ``io_total``;
* versioned per tree: an R-tree bumps its ``version`` on every
  insert/delete, and the cache drops a tree's entries wholesale when it
  observes a new version (plus :meth:`invalidate_tree` / :meth:`clear`
  for explicit control);
* guarded by a lock so concurrent tasks of the execution engine can
  share it safely.  Decodes are pure functions of immutable node
  payloads, so a racing double-decode is benign — the lock only
  protects the dict bookkeeping.

Since the columnar kernels landed, the cached values are the
structure-of-arrays buffers of :mod:`repro.kernels.columnar`
(``SiteColumns``/``ClientColumns``) rather than ad-hoc array tuples.
Each instance keeps local ``hits``/``misses`` attributes for tests and
``repr`` and also reports into the process-wide obs registry as
``leafcache.hits`` / ``leafcache.misses``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.obs.registry import REGISTRY


class DecodedLeafCache:
    """Shared, versioned cache of decoded leaf arrays."""

    __slots__ = (
        "_entries",
        "_versions",
        "_lock",
        "hits",
        "misses",
        "_hits_metric",
        "_misses_metric",
    )

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], Any] = {}
        self._versions: dict[str, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._hits_metric = REGISTRY.counter("leafcache.hits")
        self._misses_metric = REGISTRY.counter("leafcache.misses")

    # ------------------------------------------------------------------
    def get(
        self,
        tree_name: str,
        version: int,
        node_id: int,
        decode: Callable[[], Any],
    ) -> Any:
        """The decoded arrays for one leaf, decoding on first use.

        ``version`` is the owning tree's current mutation counter; a
        version change invalidates every cached leaf of that tree (node
        ids are recycled by splits/merges, so per-node invalidation
        would be unsound).
        """
        key = (tree_name, node_id)
        with self._lock:
            if self._versions.get(tree_name, version) != version:
                self._drop_tree_locked(tree_name)
            self._versions[tree_name] = version
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._hits_metric.inc()
                return cached
            self.misses += 1
            self._misses_metric.inc()
        value = decode()
        with self._lock:
            # Keep the first decode if another task raced us (both are
            # identical by construction).
            return self._entries.setdefault(key, value)

    # ------------------------------------------------------------------
    def _drop_tree_locked(self, tree_name: str) -> None:
        stale = [key for key in self._entries if key[0] == tree_name]
        for key in stale:
            del self._entries[key]

    def invalidate_tree(self, tree_name: str) -> None:
        """Explicitly drop every cached leaf of one tree."""
        with self._lock:
            self._drop_tree_locked(tree_name)
            self._versions.pop(tree_name, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._versions.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"DecodedLeafCache(size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
