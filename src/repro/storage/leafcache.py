"""Workspace-level cache of decoded leaf-node arrays.

The join methods (NFC, MND) and the QVC window query evaluate leaf
nodes with vectorised numpy kernels, which requires *decoding* a leaf's
entry list into flat coordinate/weight arrays.  The paper charges the
page **read**; the decode is a pure CPU artefact of our implementation.
Historically each selector kept a private ``self._leaf_cache`` dict that
was rebuilt per query and — in the MND case — never cleared, pinning
decoded arrays on the selector for its lifetime.

:class:`DecodedLeafCache` replaces those instance attributes with one
workspace-owned cache:

* keyed by ``(tree_name, node_id)``, so all methods and all queries over
  the same workspace share one decode per leaf;
* the page read is still charged by the caller *before* consulting the
  cache — caching never changes ``io_total``;
* versioned per tree: an R-tree bumps its ``version`` on every
  insert/delete, and the cache drops a tree's entries wholesale when it
  observes a new version (plus :meth:`invalidate_tree` / :meth:`clear`
  for explicit control);
* **scoped invalidation for tracked trees**: a tree that binds the
  cache (``RTree.bind_leaf_cache``) reports exactly the node ids its
  mutations dirtied (:meth:`note_dirty`) and drops freed node ids at
  free time (:meth:`drop_node` — which makes node-id recycling sound),
  so a version change on a *tracked* tree keeps every untouched decode
  instead of clearing the tree wholesale.  Under a mutation stream the
  cache stays warm everywhere the mutation didn't reach;
* guarded by a lock so concurrent tasks of the execution engine can
  share it safely.  Decodes are pure functions of immutable node
  payloads, so a racing double-decode is benign — the lock only
  protects the dict bookkeeping.

Since the columnar kernels landed, the cached values are the
structure-of-arrays buffers of :mod:`repro.kernels.columnar`
(``SiteColumns``/``ClientColumns``) rather than ad-hoc array tuples.
Each instance keeps local ``hits``/``misses`` attributes for tests and
``repr`` and also reports into the process-wide obs registry as
``leafcache.hits`` / ``leafcache.misses``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.obs.registry import REGISTRY


class DecodedLeafCache:
    """Shared, versioned cache of decoded leaf arrays."""

    __slots__ = (
        "_entries",
        "_versions",
        "_tracked",
        "_lock",
        "hits",
        "misses",
        "_hits_metric",
        "_misses_metric",
    )

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], Any] = {}
        self._versions: dict[str, int] = {}
        self._tracked: set[str] = set()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._hits_metric = REGISTRY.counter("leafcache.hits")
        self._misses_metric = REGISTRY.counter("leafcache.misses")

    # ------------------------------------------------------------------
    def track(self, tree_name: str) -> None:
        """Opt a tree into scoped invalidation: its version bumps no
        longer clear the tree wholesale, because the tree promises to
        report every dirtied node via :meth:`note_dirty` and every freed
        node via :meth:`drop_node`."""
        with self._lock:
            self._tracked.add(tree_name)

    def note_dirty(self, tree_name: str, node_ids) -> None:
        """Drop exactly the decodes a mutation invalidated."""
        with self._lock:
            for node_id in node_ids:
                self._entries.pop((tree_name, node_id), None)

    def drop_node(self, tree_name: str, node_id: int) -> None:
        """Drop one node's decode the moment its page is freed (node
        ids are recycled, so this must happen before reuse)."""
        with self._lock:
            self._entries.pop((tree_name, node_id), None)

    # ------------------------------------------------------------------
    def get(
        self,
        tree_name: str,
        version: int,
        node_id: int,
        decode: Callable[[], Any],
    ) -> Any:
        """The decoded arrays for one leaf, decoding on first use.

        ``version`` is the owning tree's current mutation counter; a
        version change invalidates every cached leaf of that tree —
        unless the tree is *tracked* (see :meth:`track`), in which case
        the dirty notifications already dropped the stale decodes and
        everything else is still exact.  (For untracked trees node ids
        recycled by splits/merges make per-node invalidation unsound,
        hence the wholesale drop.)
        """
        key = (tree_name, node_id)
        with self._lock:
            if (
                self._versions.get(tree_name, version) != version
                and tree_name not in self._tracked
            ):
                self._drop_tree_locked(tree_name)
            self._versions[tree_name] = version
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._hits_metric.inc()
                return cached
            self.misses += 1
            self._misses_metric.inc()
        value = decode()
        with self._lock:
            # Keep the first decode if another task raced us (both are
            # identical by construction).
            return self._entries.setdefault(key, value)

    # ------------------------------------------------------------------
    def _drop_tree_locked(self, tree_name: str) -> None:
        stale = [key for key in self._entries if key[0] == tree_name]
        for key in stale:
            del self._entries[key]

    def invalidate_tree(self, tree_name: str) -> None:
        """Explicitly drop every cached leaf of one tree."""
        with self._lock:
            self._drop_tree_locked(tree_name)
            self._versions.pop(tree_name, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._versions.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"DecodedLeafCache(size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
