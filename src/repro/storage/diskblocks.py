"""Disk-backed sequential block files.

The on-disk twin of :class:`~repro.storage.blockfile.BlockFile`: the SS
scan's client/potential files persisted as real page files
(:mod:`repro.storage.diskfile`) and read back block-at-a-time with the
exact same I/O accounting.  Page 0 holds the file metadata; logical
block ``b`` lives on page ``b + 1``.

Records are float64 matrices — ``(x, y, dnn, w)`` rows for the client
file, ``(x, y)`` for the potential file — in one of the two block-page
encodings of :mod:`repro.storage.soa`:

* **rows** (format version 1): the row-major matrix, decoded as one
  2-D ``np.frombuffer`` view;
* **columns** (format version 2): one contiguous f8 column per field,
  decoded as a zero-copy :class:`~repro.storage.soa.ColumnBlock`.

Both decode shapes satisfy every access the SS/QVC hot paths make
(``len(block)``, ``block[:, j]``, ``block[a:b]`` row tuples), so the
methods run unchanged over either.

**Accounting invariant**: ``records_per_block`` is pinned to the
*logical* page capacity of the in-memory layout (146 clients / 204
points per 4 KiB page, from :mod:`repro.storage.records`), so block
counts — and with them ``io_total`` and every per-file read split —
are identical to the in-memory workspace, even though the physical
page may be a few bytes wider to carry the block header.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Any, Iterator, Optional, Union

import numpy as np

from repro.storage import soa
from repro.storage.buffer import LRUBufferPool
from repro.storage.diskfile import (
    COLUMNAR_VERSION,
    FORMAT_VERSION,
    DiskPager,
    PageFile,
    PageFileError,
    open_page_file,
)
from repro.storage.records import PAGE_SIZE
from repro.storage.stats import IOStats

#: Metadata page: total records, records per block, columns per record.
_META = struct.Struct("<QII")

BLOCK_FORMATS = ("rows", "columns")
_FORMAT_VERSION_OF = {"rows": FORMAT_VERSION, "columns": COLUMNAR_VERSION}
_ENCODER_OF = {"rows": soa.encode_block_rows, "columns": soa.encode_block_columns}


def _physical_page_size(records_per_block: int, ncols: int) -> int:
    """The smallest 8-byte-aligned page that fits one full block.

    At least :data:`~repro.storage.records.PAGE_SIZE`; wider when the
    block header pushes a full logical block past 4 KiB (the client
    block: ``146 · 4 · 8 + 4`` bytes).  Keeping the size a multiple of
    8 keeps every v2 column 8-byte aligned in the file (the 20-byte
    file header plus the 4-byte block header is 24)."""
    needed = soa.BLOCK_HEADER_SIZE + records_per_block * ncols * 8
    return max(PAGE_SIZE, (needed + 7) // 8 * 8)


def save_block_file(
    path: str | Path,
    matrix: np.ndarray,
    records_per_block: int,
    block_format: str = "rows",
) -> int:
    """Persist a float64 record matrix as a block page file.

    Returns the number of pages written (including the metadata page).
    """
    if block_format not in BLOCK_FORMATS:
        raise ValueError(
            f"unknown block format {block_format!r}; expected one of {BLOCK_FORMATS}"
        )
    if records_per_block <= 0:
        raise ValueError(f"records_per_block must be positive, got {records_per_block}")
    arr = np.ascontiguousarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D record matrix, got shape {arr.shape}")
    num_records, ncols = arr.shape
    encode = _ENCODER_OF[block_format]
    pages = [_META.pack(num_records, records_per_block, ncols)]
    for start in range(0, num_records, records_per_block):
        pages.append(encode(arr[start : start + records_per_block]))
    page_file = PageFile(path, page_size=_physical_page_size(records_per_block, ncols))
    page_file.create(pages, 0, _FORMAT_VERSION_OF[block_format])
    return len(pages)


def convert_block_file(src: str | Path, dst: str | Path, block_format: str) -> int:
    """Rewrite a block page file between the two block encodings."""
    if block_format not in BLOCK_FORMATS:
        raise ValueError(
            f"unknown block format {block_format!r}; expected one of {BLOCK_FORMATS}"
        )
    encode = _ENCODER_OF[block_format]
    with PageFile(src).open() as source:
        src_columns = source.format_version == COLUMNAR_VERSION
        pages = [bytes(source.read_page(0)).rstrip(b"\x00")]
        for page_id in range(1, source.num_pages):
            data = source.read_page(page_id)
            if src_columns:
                block = np.column_stack(soa.decode_block_columns(data).columns)
            else:
                block = soa.decode_block_rows(data)
            pages.append(encode(block))
        out = PageFile(dst, page_size=source.page_size)
        out.create(pages, source.root_page, _FORMAT_VERSION_OF[block_format])
    return len(pages)


class DiskBlockFile:
    """A read-only block file served from a page file on disk.

    Duck-type compatible with :class:`~repro.storage.blockfile.BlockFile`
    for every consumer in :mod:`repro.core`: same properties, same
    counted ``read_block`` / uncounted ``peek_block`` contract.  With
    ``mapped=True`` the blocks come back as zero-copy views over one
    ``mmap`` of the file.
    """

    def __init__(
        self,
        name: str,
        path: str | Path,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
        mapped: bool = False,
    ):
        self._file = open_page_file(path, mapped=mapped)
        self._pager = DiskPager(name, self._file, stats, buffer_pool)
        self.mapped = mapped
        self.block_format = (
            "columns" if self._file.format_version == COLUMNAR_VERSION else "rows"
        )
        meta = bytes(self._file.read_page(0)[: _META.size])
        self._num_records, self._records_per_block, self._ncols = _META.unpack(meta)
        expected = (
            self._num_records + self._records_per_block - 1
        ) // self._records_per_block
        if self._file.num_pages - 1 != expected:
            raise PageFileError(
                f"{path}: metadata promises {expected} block(s) for "
                f"{self._num_records} record(s), file has {self._file.num_pages - 1}"
            )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._pager.name

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_blocks(self) -> int:
        return self._file.num_pages - 1  # minus the metadata page

    @property
    def records_per_block(self) -> int:
        return self._records_per_block

    @property
    def ncols(self) -> int:
        return self._ncols

    # ------------------------------------------------------------------
    def _decode(self, data) -> Union[np.ndarray, soa.ColumnBlock]:
        if self.block_format == "columns":
            return soa.decode_block_columns(data)
        return soa.decode_block_rows(data)

    def read_block(self, block_id: int, stats: Optional[IOStats] = None) -> Any:
        """Read one block (one counted I/O, charged to ``stats`` if given)."""
        self._check_block_id(block_id)
        return self._decode(self._pager.read(block_id + 1, stats=stats))

    def peek_block(self, block_id: int) -> Any:
        """Fetch a block *without* I/O accounting (see BlockFile.peek_block)."""
        self._check_block_id(block_id)
        return self._decode(self._pager.peek(block_id + 1))

    def _check_block_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise PageFileError(
                f"block {block_id} out of range 0..{self.num_blocks - 1}"
            )

    def iter_blocks(self) -> Iterator[Any]:
        """Scan the file front to back, one I/O per block."""
        for block_id in range(self.num_blocks):
            yield self.read_block(block_id)

    def iter_records(self) -> Iterator[Any]:
        """Scan all records (I/O still counted per block, not per record)."""
        for block in self.iter_blocks():
            yield from block

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "DiskBlockFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
