"""Real on-disk page files.

``PageFile`` is a plain file of fixed-size pages with a small header,
giving the simulation's storage layer an actual byte-level backing:
indexes serialized through :mod:`repro.rtree.persist` can be closed,
reopened (by another process, even) and queried, with every page read
counted exactly as in the in-memory pager.

``MappedPageFile`` serves the same files zero-copy: the file is
``mmap``-ed once at ``open`` and every ``read_page`` returns a
``memoryview`` slice of the map — no per-read syscall, no bytes copy.
Consumers that run ``struct.unpack_from`` or ``np.frombuffer`` over the
page operate directly on the mapped region.  Both classes present one
interface, so :class:`DiskPager` (and with it the whole I/O-accounting
contract) is byte-identical across the two: a page read is charged on a
buffer-pool miss regardless of how the bytes are produced.

Two on-disk format versions share the header layout:

* version 1 — node/block pages hold packed record rows (the codec
  layouts of :mod:`repro.storage.records`);
* version 2 — leaf/block pages hold structure-of-arrays column blocks
  (:mod:`repro.storage.soa`), decodable as zero-copy numpy views.

The header only *declares* the version; what the pages mean is up to
the writer (:mod:`repro.rtree.persist`, :mod:`repro.storage.diskblocks`).
"""

from __future__ import annotations

import mmap
import os
import struct
from pathlib import Path
from typing import Optional, Union

from repro.storage.buffer import LRUBufferPool
from repro.storage.records import PAGE_SIZE
from repro.storage.stats import IOStats

#: File magic + format version.
_MAGIC = b"MDLS"
_HEADER = struct.Struct("<4sIIII")  # magic, version, page_size, num_pages, root
HEADER_SIZE = _HEADER.size
#: v1: pages hold packed record rows (array-of-structures).
FORMAT_VERSION = 1
#: v2: leaf/block pages hold column blocks (structure-of-arrays).
COLUMNAR_VERSION = 2
SUPPORTED_VERSIONS = (FORMAT_VERSION, COLUMNAR_VERSION)


class PageFileError(RuntimeError):
    """Raised for malformed or mismatched page files."""


class PageFile:
    """A header plus ``num_pages`` fixed-size binary pages."""

    def __init__(self, path: str | Path, page_size: int = PAGE_SIZE):
        self.path = Path(path)
        self.page_size = page_size
        self.num_pages = 0
        self.root_page = 0
        self.format_version = FORMAT_VERSION
        self._fh: Optional[object] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def create(
        self,
        pages: list[bytes],
        root_page: int,
        format_version: int = FORMAT_VERSION,
    ) -> None:
        """Write a fresh file with the given page images."""
        if format_version not in SUPPORTED_VERSIONS:
            raise PageFileError(
                f"cannot write format version {format_version}; "
                f"supported: {SUPPORTED_VERSIONS}"
            )
        for i, page in enumerate(pages):
            if len(page) > self.page_size:
                raise PageFileError(
                    f"page {i} is {len(page)} bytes > page size {self.page_size}"
                )
        with open(self.path, "wb") as f:
            f.write(
                _HEADER.pack(
                    _MAGIC, format_version, self.page_size, len(pages), root_page
                )
            )
            for page in pages:
                f.write(page.ljust(self.page_size, b"\x00"))
        self.num_pages = len(pages)
        self.root_page = root_page
        self.format_version = format_version

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read_header(self) -> None:
        """Open the file handle and validate the header + file size."""
        if not self.path.exists():
            raise PageFileError(f"{self.path}: no such page file")
        self._fh = open(self.path, "rb")
        header = self._fh.read(HEADER_SIZE)
        if len(header) < HEADER_SIZE:
            raise PageFileError(f"{self.path}: truncated header")
        magic, version, page_size, num_pages, root = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise PageFileError(f"{self.path}: bad magic {magic!r}")
        if version not in SUPPORTED_VERSIONS:
            raise PageFileError(f"{self.path}: unsupported version {version}")
        expected = HEADER_SIZE + num_pages * page_size
        actual = os.path.getsize(self.path)
        if actual < expected:
            raise PageFileError(
                f"{self.path}: file is {actual} bytes, header promises {expected}"
            )
        if actual > expected:
            # Trailing garbage means the header and the writer disagree
            # about the page count — refuse rather than serve a file
            # whose tail silently never existed.
            raise PageFileError(
                f"{self.path}: {actual - expected} trailing byte(s) beyond "
                f"the {num_pages} page(s) the header promises"
            )
        self.page_size = page_size
        self.num_pages = num_pages
        self.root_page = root
        self.format_version = version

    def open(self) -> "PageFile":
        """Open an existing file and validate its header."""
        self._read_header()
        return self

    def read_page(self, page_id: int) -> bytes:
        if self._fh is None:
            raise PageFileError("page file is not open")
        self._check_page_id(page_id)
        # pread is atomic (offset in the call, no shared file position),
        # so concurrent engine workers can read through one handle.
        return os.pread(
            self._fh.fileno(), self.page_size, HEADER_SIZE + page_id * self.page_size
        )

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise PageFileError(f"page {page_id} out of range 0..{self.num_pages - 1}")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "PageFile":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()


class MappedPageFile(PageFile):
    """A page file served zero-copy from one ``mmap`` of the whole file.

    ``read_page`` returns a ``memoryview`` slice of the map: no seek, no
    ``read`` syscall, no bytes copy.  Numpy arrays built over such a
    slice (``np.frombuffer``) reference the mapped memory directly; the
    map therefore stays alive until the last such view is garbage
    collected, even after :meth:`close`.
    """

    def __init__(self, path: str | Path, page_size: int = PAGE_SIZE):
        super().__init__(path, page_size)
        self._mm: Optional[mmap.mmap] = None
        self._view: Optional[memoryview] = None

    def open(self) -> "MappedPageFile":
        self._read_header()
        assert self._fh is not None
        self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._view = memoryview(self._mm)
        return self

    def read_page(self, page_id: int) -> memoryview:
        if self._view is None:
            raise PageFileError("page file is not open")
        self._check_page_id(page_id)
        start = HEADER_SIZE + page_id * self.page_size
        return self._view[start : start + self.page_size]

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # Live zero-copy views still reference the map; it is
                # unmapped when the last of them is collected.
                pass
            self._mm = None
        super().close()


def open_page_file(
    path: str | Path, mapped: bool = False, page_size: int = PAGE_SIZE
) -> Union[PageFile, MappedPageFile]:
    """Open ``path`` through the chosen backend (file handle or mmap)."""
    cls = MappedPageFile if mapped else PageFile
    return cls(path, page_size).open()


class DiskPager:
    """A read-only pager over a :class:`PageFile` with I/O accounting.

    Decoding from bytes to node objects is the caller's job (see
    :mod:`repro.rtree.persist`); the pager only counts and serves raw
    pages, optionally through a buffer pool.
    """

    def __init__(
        self,
        name: str,
        page_file: PageFile,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
    ):
        self.name = name
        self.file = page_file
        self.stats = stats
        self.buffer_pool = buffer_pool

    def read(self, page_id: int, stats: Optional[IOStats] = None) -> bytes:
        """Read a page, charging one I/O on a buffer miss.

        ``stats`` redirects the charge to a caller-private accounting
        (parallel tasks); the default is the pager's shared stats.
        """
        if self.buffer_pool is None or not self.buffer_pool.access(self.name, page_id):
            (stats if stats is not None else self.stats).record_read(self.name)
        return self.file.read_page(page_id)

    def peek(self, page_id: int) -> bytes:
        """Uncounted read (validation and tooling)."""
        return self.file.read_page(page_id)
