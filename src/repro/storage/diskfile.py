"""Real on-disk page files.

``PageFile`` is a plain file of fixed-size pages with a small header,
giving the simulation's storage layer an actual byte-level backing:
indexes serialized through :mod:`repro.rtree.persist` can be closed,
reopened (by another process, even) and queried, with every page read
counted exactly as in the in-memory pager.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Optional

from repro.storage.buffer import LRUBufferPool
from repro.storage.records import PAGE_SIZE
from repro.storage.stats import IOStats

#: File magic + format version.
_MAGIC = b"MDLS"
_HEADER = struct.Struct("<4sIIII")  # magic, version, page_size, num_pages, root
HEADER_SIZE = _HEADER.size
FORMAT_VERSION = 1


class PageFileError(RuntimeError):
    """Raised for malformed or mismatched page files."""


class PageFile:
    """A header plus ``num_pages`` fixed-size binary pages."""

    def __init__(self, path: str | Path, page_size: int = PAGE_SIZE):
        self.path = Path(path)
        self.page_size = page_size
        self.num_pages = 0
        self.root_page = 0
        self._fh: Optional[object] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def create(self, pages: list[bytes], root_page: int) -> None:
        """Write a fresh file with the given page images."""
        for i, page in enumerate(pages):
            if len(page) > self.page_size:
                raise PageFileError(
                    f"page {i} is {len(page)} bytes > page size {self.page_size}"
                )
        with open(self.path, "wb") as f:
            f.write(
                _HEADER.pack(
                    _MAGIC, FORMAT_VERSION, self.page_size, len(pages), root_page
                )
            )
            for page in pages:
                f.write(page.ljust(self.page_size, b"\x00"))
        self.num_pages = len(pages)
        self.root_page = root_page

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def open(self) -> "PageFile":
        """Open an existing file and validate its header."""
        if not self.path.exists():
            raise PageFileError(f"{self.path}: no such page file")
        self._fh = open(self.path, "rb")
        header = self._fh.read(HEADER_SIZE)
        if len(header) < HEADER_SIZE:
            raise PageFileError(f"{self.path}: truncated header")
        magic, version, page_size, num_pages, root = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise PageFileError(f"{self.path}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise PageFileError(f"{self.path}: unsupported version {version}")
        expected = HEADER_SIZE + num_pages * page_size
        actual = os.path.getsize(self.path)
        if actual < expected:
            raise PageFileError(
                f"{self.path}: file is {actual} bytes, header promises {expected}"
            )
        self.page_size = page_size
        self.num_pages = num_pages
        self.root_page = root
        return self

    def read_page(self, page_id: int) -> bytes:
        if self._fh is None:
            raise PageFileError("page file is not open")
        if not 0 <= page_id < self.num_pages:
            raise PageFileError(f"page {page_id} out of range 0..{self.num_pages - 1}")
        self._fh.seek(HEADER_SIZE + page_id * self.page_size)
        return self._fh.read(self.page_size)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "PageFile":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()


class DiskPager:
    """A read-only pager over a :class:`PageFile` with I/O accounting.

    Decoding from bytes to node objects is the caller's job (see
    :mod:`repro.rtree.persist`); the pager only counts and serves raw
    pages, optionally through a buffer pool.
    """

    def __init__(
        self,
        name: str,
        page_file: PageFile,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
    ):
        self.name = name
        self.file = page_file
        self.stats = stats
        self.buffer_pool = buffer_pool
        self._cache: dict[int, bytes] = {}

    def read(self, page_id: int, stats: Optional[IOStats] = None) -> bytes:
        """Read a page, charging one I/O on a buffer miss.

        ``stats`` redirects the charge to a caller-private accounting
        (parallel tasks); the default is the pager's shared stats.
        """
        if self.buffer_pool is None or not self.buffer_pool.access(self.name, page_id):
            (stats if stats is not None else self.stats).record_read(self.name)
        return self.file.read_page(page_id)

    def peek(self, page_id: int) -> bytes:
        """Uncounted read (validation and tooling)."""
        return self.file.read_page(page_id)
