"""Structure-of-arrays (columnar) page layouts — format version 2.

Version-1 pages store packed record *rows* (:mod:`repro.storage.codecs`);
a page must be transposed field-by-field before the batch kernels can
touch it.  Version-2 pages store the transpose directly: one contiguous
column block per field, in the exact dtypes of
:mod:`repro.kernels.columnar`.  Decoding such a page is pure
``np.frombuffer`` pointer arithmetic — zero copies, zero per-record
work — which is what makes the mmap-backed fast path of
:class:`~repro.storage.diskfile.MappedPageFile` end-to-end zero-copy.

Layouts (per page, after the owner's 4-byte ``<HH`` header)::

    site leaf:    xs f8[n] | ys f8[n] | ids u4[n]            (20 n bytes)
    client leaf:  xs f8[n] | ys f8[n] | dnn f8[n] | ids u4[n] (28 n)
    block page:   col_0 f8[n] | col_1 f8[n] | ... | col_{k-1} f8[n]

Bytes per record match the v1 row layouts exactly, so a node or block
that fits a v1 page always fits its v2 page.  Columns begin at page
offset 4; with the 20-byte file header and a page size divisible by 8,
every ``f8`` column lands 8-byte aligned *in the file* (absolute offset
``20 + 4096·k + 4 + 8·n·j``), so mapped views are aligned loads.

Decoded arrays are views over the caller's buffer (page bytes or a
mapped ``memoryview``) — treat them as read-only.  Weights are not part
of any on-disk client layout; decoded client columns carry unit
weights, exactly like ``ClientCodec.decode``.
"""

from __future__ import annotations

import struct
from typing import Iterator, Union

import numpy as np

from repro.kernels.columnar import ClientColumns, SiteColumns

Buffer = Union[bytes, bytearray, memoryview]

#: Block-page header: record count + column count.
_BLOCK_HEADER = struct.Struct("<HH")
BLOCK_HEADER_SIZE = _BLOCK_HEADER.size

_F8 = np.dtype("<f8")
_U4 = np.dtype("<u4")


def _f8_column(data: Buffer, count: int, offset: int) -> np.ndarray:
    return np.frombuffer(data, dtype=_F8, count=count, offset=offset)


# ---------------------------------------------------------------------------
# R-tree leaf payloads
# ---------------------------------------------------------------------------


def encode_site_columns(cols: SiteColumns) -> bytes:
    """The column-block image of ``n`` site records (no header)."""
    return b"".join(
        (
            np.ascontiguousarray(cols.xs, dtype=_F8).tobytes(),
            np.ascontiguousarray(cols.ys, dtype=_F8).tobytes(),
            np.ascontiguousarray(cols.ids, dtype=_U4).tobytes(),
        )
    )


def decode_site_columns_soa(
    data: Buffer, count: int, offset: int = 0
) -> SiteColumns:
    """Zero-copy column views of an encoded site block."""
    return SiteColumns(
        ids=np.frombuffer(data, dtype=_U4, count=count, offset=offset + 16 * count),
        xs=_f8_column(data, count, offset),
        ys=_f8_column(data, count, offset + 8 * count),
    )


def encode_client_columns(cols: ClientColumns) -> bytes:
    """The column-block image of ``n`` client records (no weights)."""
    return b"".join(
        (
            np.ascontiguousarray(cols.xs, dtype=_F8).tobytes(),
            np.ascontiguousarray(cols.ys, dtype=_F8).tobytes(),
            np.ascontiguousarray(cols.dnn, dtype=_F8).tobytes(),
            np.ascontiguousarray(cols.ids, dtype=_U4).tobytes(),
        )
    )


def decode_client_columns_soa(
    data: Buffer, count: int, offset: int = 0
) -> ClientColumns:
    """Zero-copy column views of an encoded client block (unit weights)."""
    return ClientColumns(
        ids=np.frombuffer(data, dtype=_U4, count=count, offset=offset + 24 * count),
        xs=_f8_column(data, count, offset),
        ys=_f8_column(data, count, offset + 8 * count),
        dnn=_f8_column(data, count, offset + 16 * count),
        weights=np.ones(count, dtype=np.float64),
    )


# ---------------------------------------------------------------------------
# Flat block files (float64 matrices: the SS / QVC data files)
# ---------------------------------------------------------------------------


class ColumnBlock:
    """One decoded columnar block, quacking like a 2-D ``(n, k)`` array.

    The SS scan and QVC planner consume blocks through ``len(block)``,
    column selection ``block[:, j]`` and row slicing ``block[a:b]``;
    this wrapper serves all three straight from the per-column views
    without ever materialising the row-major matrix.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: tuple[np.ndarray, ...]):
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self.columns))

    def __getitem__(self, key):
        if isinstance(key, tuple):
            rows, col = key
            return self.columns[col][rows]
        if isinstance(key, (int, np.integer)):
            return tuple(float(c[key]) for c in self.columns)
        # A row slice: the callers iterate the result as per-row tuples
        # (the QVC planner), so hand back exactly that.
        return list(zip(*(c[key].tolist() for c in self.columns)))

    def __iter__(self) -> Iterator[tuple[float, ...]]:
        return iter(self[:])

    def __repr__(self) -> str:
        return f"ColumnBlock(shape={self.shape})"


def encode_block_rows(block: np.ndarray) -> bytes:
    """A v1 block page: ``<HH`` (count, ncols) + row-major float64."""
    arr = np.ascontiguousarray(block, dtype=np.float64)
    count, ncols = arr.shape
    return _BLOCK_HEADER.pack(count, ncols) + arr.tobytes()


def decode_block_rows(data: Buffer, offset: int = 0) -> np.ndarray:
    """The ``(n, k)`` row-major matrix view of a v1 block page."""
    count, ncols = _BLOCK_HEADER.unpack_from(data, offset)
    flat = _f8_column(data, count * ncols, offset + BLOCK_HEADER_SIZE)
    return flat.reshape(count, ncols)


def encode_block_columns(block: np.ndarray) -> bytes:
    """A v2 block page: ``<HH`` (count, ncols) + one f8 column per field."""
    arr = np.asarray(block, dtype=np.float64)
    count, ncols = arr.shape
    parts = [_BLOCK_HEADER.pack(count, ncols)]
    parts.extend(
        np.ascontiguousarray(arr[:, j]).tobytes() for j in range(ncols)
    )
    return b"".join(parts)


def decode_block_columns(data: Buffer, offset: int = 0) -> ColumnBlock:
    """Zero-copy per-column views of a v2 block page."""
    count, ncols = _BLOCK_HEADER.unpack_from(data, offset)
    start = offset + BLOCK_HEADER_SIZE
    return ColumnBlock(
        tuple(
            _f8_column(data, count, start + 8 * count * j) for j in range(ncols)
        )
    )
