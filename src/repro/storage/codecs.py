"""Binary codecs for records and index entries.

The in-memory simulation enforces page *capacities* from the record
layouts; this module makes the byte story real: every payload and entry
kind can be packed to/from the exact byte strings the layouts describe,
which is what the on-disk persistence of :mod:`repro.rtree.persist`
writes.  All values are little-endian; ids are unsigned 32-bit,
coordinates and distances are IEEE-754 doubles — matching the field
sizes in :mod:`repro.storage.records` and the columnar dtypes in
:mod:`repro.kernels.columnar`.

Besides the record-at-a-time ``encode``/``decode`` pair, the site and
client codecs expose a bulk ``decode_columns`` that hands a whole page
of records to :mod:`repro.kernels` in one call (a single ``frombuffer``
under the vector backend), plus ``objects_from_columns`` for callers
that still need payload objects.

The ``Site``/``Client`` payload types live in :mod:`repro.core.types`,
which transitively imports this module; their import sits at the bottom
of the file (after every definition this module exports) to keep a
fresh ``import repro.storage.codecs`` cycle-safe.
"""

from __future__ import annotations

import struct
from typing import Any, Protocol, TypeVar

from repro import kernels
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.kernels.columnar import ClientColumns, SiteColumns
from repro.storage import soa

T = TypeVar("T")


class PayloadCodec(Protocol[T]):
    """Fixed-size binary codec for leaf payloads."""

    size: int

    def encode(self, payload: T) -> bytes: ...

    def decode(self, data: bytes) -> T: ...


class PointCodec:
    """``(x, y)`` — 16 bytes."""

    _fmt = struct.Struct("<dd")
    size = _fmt.size

    def encode(self, payload: Point) -> bytes:
        return self._fmt.pack(payload[0], payload[1])

    def decode(self, data: bytes) -> Point:
        x, y = self._fmt.unpack(data)
        return Point(x, y)


class SiteCodec:
    """``(id, x, y)`` — 20 bytes, the paper's point record."""

    _fmt = struct.Struct("<Idd")
    size = _fmt.size

    def encode(self, payload: Any) -> bytes:
        return self._fmt.pack(payload.sid, payload.x, payload.y)

    def decode(self, data: bytes) -> Any:
        sid, x, y = self._fmt.unpack(data)
        return Site(sid, x, y)

    def decode_columns(self, data: bytes, count: int, offset: int = 0) -> SiteColumns:
        """Bulk-decode ``count`` consecutive records into columns."""
        return kernels.decode_site_columns(data, count, offset=offset)

    def encode_soa(self, cols: SiteColumns) -> bytes:
        """The v2 (structure-of-arrays) image of the same records."""
        return soa.encode_site_columns(cols)

    def decode_soa(self, data, count: int, offset: int = 0) -> SiteColumns:
        """Zero-copy column views of a v2 page (see :mod:`repro.storage.soa`)."""
        return soa.decode_site_columns_soa(data, count, offset=offset)

    def objects_from_columns(self, cols: SiteColumns) -> list:
        """Materialize payload objects from bulk-decoded columns."""
        return [
            Site(sid, x, y)
            for sid, x, y in zip(cols.ids.tolist(), cols.xs.tolist(), cols.ys.tolist())
        ]


class ClientCodec:
    """``(id, x, y, dnn)`` — 28 bytes, the client record."""

    _fmt = struct.Struct("<Iddd")
    size = _fmt.size

    def encode(self, payload: Any) -> bytes:
        return self._fmt.pack(payload.cid, payload.x, payload.y, payload.dnn)

    def decode(self, data: bytes) -> Any:
        cid, x, y, dnn = self._fmt.unpack(data)
        return Client(cid, x, y, dnn)

    def decode_columns(
        self, data: bytes, count: int, offset: int = 0
    ) -> ClientColumns:
        """Bulk-decode ``count`` consecutive records into columns."""
        return kernels.decode_client_columns(data, count, offset=offset)

    def encode_soa(self, cols: ClientColumns) -> bytes:
        """The v2 (structure-of-arrays) image of the same records."""
        return soa.encode_client_columns(cols)

    def decode_soa(self, data, count: int, offset: int = 0) -> ClientColumns:
        """Zero-copy column views of a v2 page (unit weights)."""
        return soa.decode_client_columns_soa(data, count, offset=offset)

    def objects_from_columns(self, cols: ClientColumns) -> list:
        """Materialize payload objects (unit weights, like ``decode``)."""
        return [
            Client(cid, x, y, dnn)
            for cid, x, y, dnn in zip(
                cols.ids.tolist(),
                cols.xs.tolist(),
                cols.ys.tolist(),
                cols.dnn.tolist(),
            )
        ]


_RECT = struct.Struct("<dddd")


def encode_rect(rect: Rect) -> bytes:
    return _RECT.pack(rect.xmin, rect.ymin, rect.xmax, rect.ymax)


def decode_rect(data: bytes) -> Rect:
    return Rect(*_RECT.unpack(data))


RECT_SIZE = _RECT.size

#: Branch entry: MBR + child page id (+ optional 8-byte MND).
_BRANCH = struct.Struct("<ddddI")
_BRANCH_MND = struct.Struct("<ddddId")
BRANCH_SIZE = _BRANCH.size
BRANCH_MND_SIZE = _BRANCH_MND.size


def encode_branch(mbr: Rect, child_id: int, mnd: float | None) -> bytes:
    if mnd is None:
        return _BRANCH.pack(mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, child_id)
    return _BRANCH_MND.pack(mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, child_id, mnd)


def decode_branch(data: bytes, with_mnd: bool) -> tuple[Rect, int, float | None]:
    if with_mnd:
        x1, y1, x2, y2, child, mnd = _BRANCH_MND.unpack(data)
        return Rect(x1, y1, x2, y2), child, mnd
    x1, y1, x2, y2, child = _BRANCH.unpack(data)
    return Rect(x1, y1, x2, y2), child, None


# Bottom-of-module on purpose: repro.core.types transitively imports this
# module (core -> diskmode -> rtree.persist -> codecs), so the payload
# types can only be bound after everything persist needs is defined.
from repro.core.types import Client, Site  # noqa: E402
