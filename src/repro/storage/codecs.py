"""Binary codecs for records and index entries.

The in-memory simulation enforces page *capacities* from the record
layouts; this module makes the byte story real: every payload and entry
kind can be packed to/from the exact byte strings the layouts describe,
which is what the on-disk persistence of :mod:`repro.rtree.persist`
writes.  All values are little-endian; ids are unsigned 32-bit,
coordinates and distances are IEEE-754 doubles — matching the field
sizes in :mod:`repro.storage.records`.
"""

from __future__ import annotations

import struct
from typing import Any, Protocol, TypeVar

from repro.geometry.point import Point
from repro.geometry.rect import Rect

T = TypeVar("T")


class PayloadCodec(Protocol[T]):
    """Fixed-size binary codec for leaf payloads."""

    size: int

    def encode(self, payload: T) -> bytes: ...

    def decode(self, data: bytes) -> T: ...


class PointCodec:
    """``(x, y)`` — 16 bytes."""

    _fmt = struct.Struct("<dd")
    size = _fmt.size

    def encode(self, payload: Point) -> bytes:
        return self._fmt.pack(payload[0], payload[1])

    def decode(self, data: bytes) -> Point:
        x, y = self._fmt.unpack(data)
        return Point(x, y)


class SiteCodec:
    """``(id, x, y)`` — 20 bytes, the paper's point record."""

    _fmt = struct.Struct("<Idd")
    size = _fmt.size

    def encode(self, payload: Any) -> bytes:
        return self._fmt.pack(payload.sid, payload.x, payload.y)

    def decode(self, data: bytes) -> Any:
        from repro.core.types import Site

        sid, x, y = self._fmt.unpack(data)
        return Site(sid, x, y)


class ClientCodec:
    """``(id, x, y, dnn)`` — 28 bytes, the client record."""

    _fmt = struct.Struct("<Iddd")
    size = _fmt.size

    def encode(self, payload: Any) -> bytes:
        return self._fmt.pack(payload.cid, payload.x, payload.y, payload.dnn)

    def decode(self, data: bytes) -> Any:
        from repro.core.types import Client

        cid, x, y, dnn = self._fmt.unpack(data)
        return Client(cid, x, y, dnn)


_RECT = struct.Struct("<dddd")


def encode_rect(rect: Rect) -> bytes:
    return _RECT.pack(rect.xmin, rect.ymin, rect.xmax, rect.ymax)


def decode_rect(data: bytes) -> Rect:
    return Rect(*_RECT.unpack(data))


RECT_SIZE = _RECT.size

#: Branch entry: MBR + child page id (+ optional 8-byte MND).
_BRANCH = struct.Struct("<ddddI")
_BRANCH_MND = struct.Struct("<ddddId")
BRANCH_SIZE = _BRANCH.size
BRANCH_MND_SIZE = _BRANCH_MND.size


def encode_branch(mbr: Rect, child_id: int, mnd: float | None) -> bytes:
    if mnd is None:
        return _BRANCH.pack(mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, child_id)
    return _BRANCH_MND.pack(mbr.xmin, mbr.ymin, mbr.xmax, mbr.ymax, child_id, mnd)


def decode_branch(data: bytes, with_mnd: bool) -> tuple[Rect, int, float | None]:
    if with_mnd:
        x1, y1, x2, y2, child, mnd = _BRANCH_MND.unpack(data)
        return Rect(x1, y1, x2, y2), child, mnd
    x1, y1, x2, y2, child = _BRANCH.unpack(data)
    return Rect(x1, y1, x2, y2), child, None
