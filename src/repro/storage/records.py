"""Record layouts and page capacities.

The paper derives its cost model from two capacities: ``C_m``, the number
of data entries per disk block, and ``C_e``, the effective (average) fanout
of an R-tree node.  Both follow from byte-level record layouts on 4 KiB
pages.  We fix the same layouts the paper implies — it quotes
``C_m = 204`` for point records on 4 KiB pages, which corresponds to a
20-byte record (4-byte id + two 8-byte coordinates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Disk page size in bytes (Section VIII-A: "The disk page size is 4K bytes").
PAGE_SIZE = 4096


@dataclass(frozen=True)
class RecordLayout:
    """A fixed-size record described field by field.

    ``fields`` maps field name to its size in bytes.  The layout knows how
    many records fit on a page, which is the only property the simulation
    needs — actual byte packing never happens because the "disk" stores
    Python objects.
    """

    name: str
    fields: dict[str, int] = field(hash=False)

    @property
    def record_size(self) -> int:
        """Total record size in bytes."""
        return sum(self.fields.values())

    def capacity(self, page_size: int = PAGE_SIZE) -> int:
        """Number of records per page of ``page_size`` bytes."""
        cap = page_size // self.record_size
        if cap < 1:
            raise ValueError(
                f"record {self.name!r} ({self.record_size} B) exceeds the "
                f"page size ({page_size} B)"
            )
        return cap

    def effective_capacity(
        self, page_size: int = PAGE_SIZE, fill_factor: float = 0.7
    ) -> int:
        """The paper's ``C_e``: average entries per R-tree node.

        R-tree nodes are on average ~70 % full; the cost model of
        Section VII uses this effective fanout.
        """
        return max(2, int(self.capacity(page_size) * fill_factor))


#: A bare point record: ``id`` + ``(x, y)``.  20 bytes -> C_m = 204.
POINT_RECORD = RecordLayout("point", {"id": 4, "x": 8, "y": 8})

#: A client record additionally stores the precomputed ``dnn(c, F)``.
CLIENT_RECORD = RecordLayout("client", {"id": 4, "x": 8, "y": 8, "dnn": 8})

#: An R-tree directory entry: MBR (4 doubles) + child page pointer.
RTREE_ENTRY = RecordLayout(
    "rtree_entry", {"xmin": 8, "ymin": 8, "xmax": 8, "ymax": 8, "child": 4}
)

#: An RNN-tree entry is structurally an R-tree entry (the MBR bounds an
#: NFC rather than points); kept separate so index sizes are reported
#: against the right structure.
RNN_ENTRY = RecordLayout(
    "rnn_entry", {"xmin": 8, "ymin": 8, "xmax": 8, "ymax": 8, "child": 4}
)

#: An MND-tree entry carries one extra 8-byte ``mnd`` value per entry —
#: the whole storage overhead of the MND method (Section VI).
MND_ENTRY = RecordLayout(
    "mnd_entry", {"xmin": 8, "ymin": 8, "xmax": 8, "ymax": 8, "child": 4, "mnd": 8}
)
