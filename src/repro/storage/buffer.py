"""An LRU buffer pool.

The paper counts raw page accesses, i.e. it assumes a cold buffer; the
pool is therefore *off by default*.  It exists for the ablation study
(E8 in DESIGN.md): with a warm buffer the I/O gap between methods narrows
but their ordering is preserved.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.registry import REGISTRY


class LRUBufferPool:
    """Tracks which pages are resident, evicting least-recently-used.

    Residency updates are guarded by a lock so concurrent accessors
    cannot corrupt the LRU order or lose hit/miss counts.  Note that a
    *warm* pool's hit pattern still depends on the global access order,
    which is scheduler-dependent under concurrency — the execution
    engine therefore refuses to parallelise workspaces with a pool
    attached (see :mod:`repro.exec`).
    """

    __slots__ = (
        "capacity",
        "_resident",
        "hits",
        "misses",
        "_reg_hits",
        "_reg_misses",
        "_lock",
    )

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self.capacity = capacity
        self._resident: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Process-lifetime hit/miss totals live in the metrics registry;
        # the instance attributes keep the per-pool, per-run view.
        self._reg_hits = REGISTRY.counter("storage.buffer.hits")
        self._reg_misses = REGISTRY.counter("storage.buffer.misses")
        self._lock = threading.Lock()

    def access(self, file_name: str, page_id: int) -> bool:
        """Register an access; returns True on a buffer hit (no disk I/O)."""
        key = (file_name, page_id)
        with self._lock:
            if key in self._resident:
                self._resident.move_to_end(key)
                self.hits += 1
                hit = True
            else:
                self.misses += 1
                self._resident[key] = None
                if len(self._resident) > self.capacity:
                    self._resident.popitem(last=False)
                hit = False
        if hit:
            self._reg_hits.inc()
        else:
            self._reg_misses.inc()
        return hit

    def invalidate(self, file_name: str, page_id: int) -> None:
        with self._lock:
            self._resident.pop((file_name, page_id), None)

    def clear(self) -> None:
        with self._lock:
            self._resident.clear()

    def __len__(self) -> int:
        return len(self._resident)
