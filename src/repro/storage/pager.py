"""The simulated paged disk.

A :class:`Pager` is a named collection of pages.  Pages hold arbitrary
Python objects (we simulate the *access pattern*, not the byte encoding),
but callers declare a :class:`~repro.storage.records.RecordLayout` so the
pager can enforce capacity — a page can never hold more records than
would physically fit in ``PAGE_SIZE`` bytes.

Every ``read`` is charged to a shared :class:`~repro.storage.stats.IOStats`
instance unless an attached buffer pool reports a hit.  Allocation
volume additionally feeds the process-wide ``storage.pages_allocated``
metric (:mod:`repro.obs.registry`); read/write totals flow into the
registry through :class:`IOStats` itself.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.registry import REGISTRY
from repro.storage.buffer import LRUBufferPool
from repro.storage.records import PAGE_SIZE, RecordLayout
from repro.storage.stats import IOStats

_PAGES_ALLOCATED = REGISTRY.counter("storage.pages_allocated")


class Pager:
    """A paged file with read accounting."""

    __slots__ = ("name", "layout", "stats", "buffer_pool", "_pages", "page_size")

    def __init__(
        self,
        name: str,
        layout: RecordLayout,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
        page_size: int = PAGE_SIZE,
    ):
        self.name = name
        self.layout = layout
        self.stats = stats
        self.buffer_pool = buffer_pool
        self.page_size = page_size
        self._pages: list[Any] = []

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Records (entries) per page for this pager's layout."""
        return self.layout.capacity(self.page_size)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.page_size

    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None) -> int:
        """Allocate a fresh page holding ``payload``; returns its id."""
        self._pages.append(payload)
        _PAGES_ALLOCATED.inc()
        return len(self._pages) - 1

    def write(self, page_id: int, payload: Any) -> None:
        """Overwrite a page in place (counted as a page write)."""
        self._pages[page_id] = payload
        self.stats.record_write(self.name)

    def read(self, page_id: int, stats: Optional[IOStats] = None) -> Any:
        """Read a page, charging one I/O unless the buffer pool hits.

        ``stats`` redirects the charge to a caller-private accounting
        (used by the parallel execution engine so each task charges its
        own :class:`IOStats` and the engine merges them determinately);
        by default the pager's shared accounting is charged.
        """
        if self.buffer_pool is None or not self.buffer_pool.access(self.name, page_id):
            (stats if stats is not None else self.stats).record_read(self.name)
        return self._pages[page_id]

    def peek(self, page_id: int) -> Any:
        """Read a page *without* I/O accounting.

        Reserved for index construction and validation, which the paper
        excludes from query-time I/O counts.
        """
        return self._pages[page_id]
