"""Simulated disk storage with explicit I/O accounting.

The paper evaluates its methods on disk-resident data and reports the
*number of I/Os* — page reads — as a primary metric.  This package
reproduces that environment in memory:

* :mod:`~repro.storage.records` — byte-accurate record and entry layouts;
  page capacities (the paper's ``C_m``) are derived from them.
* :mod:`~repro.storage.stats` — hierarchical I/O counters.
* :mod:`~repro.storage.pager` — a paged "disk" whose every page read is
  counted, with an optional buffer pool in front of it.
* :mod:`~repro.storage.blockfile` — sequential files read one block at a
  time, used by the SS and QVC methods to scan the flat datasets.
* :mod:`~repro.storage.buffer` — an LRU buffer pool (disabled by default
  to match the paper's raw-I/O counting; enabling it is an ablation).
"""

from repro.storage.blockfile import BlockFile
from repro.storage.buffer import LRUBufferPool
from repro.storage.leafcache import DecodedLeafCache
from repro.storage.pager import Pager
from repro.storage.records import (
    CLIENT_RECORD,
    MND_ENTRY,
    PAGE_SIZE,
    POINT_RECORD,
    RTREE_ENTRY,
    RNN_ENTRY,
    RecordLayout,
)
from repro.storage.stats import IOStats

__all__ = [
    "BlockFile",
    "CLIENT_RECORD",
    "DecodedLeafCache",
    "IOStats",
    "LRUBufferPool",
    "MND_ENTRY",
    "PAGE_SIZE",
    "POINT_RECORD",
    "Pager",
    "RNN_ENTRY",
    "RTREE_ENTRY",
    "RecordLayout",
]
