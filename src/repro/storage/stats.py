"""I/O accounting.

A single :class:`IOStats` instance is shared by all simulated files and
trees taking part in a query; every page read is recorded against the
owning structure's name so experiments can report both the total I/O
count (the paper's headline metric) and a per-structure breakdown.

Two observability integrations ride on top of the per-query counters
(:mod:`repro.obs`):

- process-lifetime totals accumulate in the metrics registry
  (``storage.page_reads`` / ``storage.page_writes``), surviving
  :meth:`IOStats.reset` — the registry answers "what has this process
  done", the counters answer "what did this query cost";
- when a tracer is bound (:meth:`bind_tracer`), every read/write is
  also attributed to the tracer's innermost open span, giving queries a
  per-phase I/O breakdown.  Unbound (the default), the cost is a single
  ``is None`` check.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.obs.registry import REGISTRY
from repro.obs.trace import NOOP_TRACER, Tracer


class IOStats:
    """Counts page reads and writes, grouped by structure name."""

    __slots__ = ("reads", "writes", "_tracer", "_reg_reads", "_reg_writes")

    def __init__(self) -> None:
        self.reads: Counter[str] = Counter()
        self.writes: Counter[str] = Counter()
        self._tracer: Optional[Tracer] = None
        self._reg_reads = REGISTRY.counter("storage.page_reads")
        self._reg_writes = REGISTRY.counter("storage.page_writes")

    # ------------------------------------------------------------------
    def bind_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attribute subsequent I/O to ``tracer``'s open spans.

        Passing None (or the no-op tracer) unbinds, restoring the
        zero-overhead fast path.
        """
        if tracer is None or not tracer.enabled:
            self._tracer = None
        else:
            self._tracer = tracer

    @property
    def tracer(self) -> Tracer:
        """The bound tracer, or the process no-op tracer when unbound."""
        return self._tracer if self._tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    def record_read(self, source: str, pages: int = 1) -> None:
        self.reads[source] += pages
        self._reg_reads.inc(pages)
        tracer = self._tracer
        if tracer is not None:
            tracer.on_page_read(source, pages)

    def record_write(self, source: str, pages: int = 1) -> None:
        self.writes[source] += pages
        self._reg_writes.inc(pages)
        tracer = self._tracer
        if tracer is not None:
            tracer.on_page_write(source, pages)

    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total(self) -> int:
        return self.total_reads + self.total_writes

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()

    # ------------------------------------------------------------------
    def merge(self, other: "IOStats") -> None:
        """Fold another accounting into this one (integer addition).

        Page counts are integers, so the merge is associative and
        commutative: folding per-task partials in *any* order yields the
        same totals as a serial run — the property the parallel
        execution engine (:mod:`repro.exec`) relies on.  Registry
        totals are not re-reported: the partials already fed the
        process-wide counters when the reads were recorded.
        """
        self.reads.update(other.reads)
        self.writes.update(other.writes)

    def merge_counts(
        self, reads: dict[str, int], writes: Optional[dict[str, int]] = None
    ) -> None:
        """Merge plain-dict partial counters (e.g. from a worker process).

        Unlike :meth:`merge`, partials arriving as plain dicts crossed a
        process boundary, so their reads were recorded against the
        *child* process's registry; they are replayed into this
        process's registry here to keep lifetime totals meaningful.
        """
        pages = sum(reads.values())
        if pages:
            self.reads.update(reads)
            self._reg_reads.inc(pages)
        if writes:
            self.writes.update(writes)
            self._reg_writes.inc(sum(writes.values()))

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the read counters (for reports/tests)."""
        return dict(self.reads)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.reads.items()))
        return f"IOStats(reads={self.total_reads} [{parts}])"
