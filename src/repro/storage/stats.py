"""I/O accounting.

A single :class:`IOStats` instance is shared by all simulated files and
trees taking part in a query; every page read is recorded against the
owning structure's name so experiments can report both the total I/O
count (the paper's headline metric) and a per-structure breakdown.
"""

from __future__ import annotations

from collections import Counter


class IOStats:
    """Counts page reads and writes, grouped by structure name."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Counter[str] = Counter()
        self.writes: Counter[str] = Counter()

    # ------------------------------------------------------------------
    def record_read(self, source: str, pages: int = 1) -> None:
        self.reads[source] += pages

    def record_write(self, source: str, pages: int = 1) -> None:
        self.writes[source] += pages

    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total(self) -> int:
        return self.total_reads + self.total_writes

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the read counters (for reports/tests)."""
        return dict(self.reads)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.reads.items()))
        return f"IOStats(reads={self.total_reads} [{parts}])"
