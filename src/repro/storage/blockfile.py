"""Sequential block files.

The SS method scans the client and potential-location datasets as flat
files, one block at a time (``ReadBlock`` in Algorithm 1); the QVC method
likewise reads ``P`` in blocks.  ``BlockFile`` chunks a record list into
pages on a :class:`~repro.storage.pager.Pager` and yields them back with
one counted I/O per block.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.storage.buffer import LRUBufferPool
from repro.storage.pager import Pager
from repro.storage.records import PAGE_SIZE, RecordLayout
from repro.storage.stats import IOStats


class BlockFile:
    """A read-only sequential file of fixed-size records."""

    def __init__(
        self,
        name: str,
        records: Sequence[Any],
        layout: RecordLayout,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
        page_size: int = PAGE_SIZE,
    ):
        self._pager = Pager(name, layout, stats, buffer_pool, page_size)
        capacity = self._pager.capacity
        # Blocks are stored as slices of the input sequence so that both
        # plain lists and numpy arrays (used by the vectorised SS scan)
        # work; callers must treat blocks as read-only.
        for start in range(0, len(records), capacity):
            self._pager.allocate(records[start : start + capacity])
        self._num_records = len(records)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._pager.name

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_blocks(self) -> int:
        return self._pager.num_pages

    @property
    def records_per_block(self) -> int:
        return self._pager.capacity

    @property
    def size_bytes(self) -> int:
        return self._pager.size_bytes

    # ------------------------------------------------------------------
    def read_block(
        self, block_id: int, stats: Optional[IOStats] = None
    ) -> list[Any]:
        """Read one block (one counted I/O, charged to ``stats`` if given)."""
        return self._pager.read(block_id, stats=stats)

    def peek_block(self, block_id: int) -> list[Any]:
        """Fetch a block *without* I/O accounting.

        For re-visiting a block whose read was already charged once by
        the owner of the traversal (the execution engine charges a
        potential-location block at planning time, then the scan tasks
        re-use it for free — mirroring the serial loop, which holds the
        block in memory across the inner scan).
        """
        return self._pager.peek(block_id)

    def iter_blocks(self) -> Iterator[list[Any]]:
        """Scan the file front to back, one I/O per block."""
        for block_id in range(self._pager.num_pages):
            yield self._pager.read(block_id)

    def iter_records(self) -> Iterator[Any]:
        """Scan all records (I/O still counted per block, not per record)."""
        for block in self.iter_blocks():
            yield from block
