"""Load-generator configuration.

One :class:`LoadgenConfig` describes a complete traffic experiment:
the loop discipline (open vs. closed), the workload shape (operation
mix, Zipf key skew, per-request deadlines), the phase structure
(ramp / warmup / measure) and the retry policy of the client loops.

Everything the *schedule* derives from a config is a pure function of
``(config, seed)`` — see :mod:`repro.loadgen.schedule` — which is what
lets the bench gate hold request counts and mix to an exact-match
policy while latency and throughput stay advisory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: The two loop disciplines.
MODE_OPEN = "open"
MODE_CLOSED = "closed"
MODES = (MODE_OPEN, MODE_CLOSED)

#: Phase tags carried by every planned request.
PHASE_WARMUP = "warmup"
PHASE_MEASURE = "measure"

#: The operations the generator can issue, in mix order.
OPS = ("select", "evaluate", "update")

#: Named (select, evaluate, update) mixes, expressible on the CLI as
#: ``--mix <name>``.  ``churn`` is the region-clock stress shape: a
#: write-heavy stream whose cache hit rate shows how much of the result
#: cache survives mutations (see ``repro.churn``).
MIX_PROFILES: dict[str, tuple[float, float, float]] = {
    "read-heavy": (0.80, 0.10, 0.10),
    "mixed": (0.50, 0.20, 0.30),
    "churn": (0.30, 0.10, 0.60),
    "write-only": (0.00, 0.00, 1.00),
}


def parse_mix(spec: str) -> tuple[float, float, float]:
    """``--mix`` parser: a profile name from :data:`MIX_PROFILES` or
    three comma-separated fractions (select, evaluate, update).

    Raises :class:`ValueError` with the available profile names on
    anything else; fraction validation itself stays with
    :class:`LoadgenConfig`.
    """
    profile = MIX_PROFILES.get(spec.strip().lower())
    if profile is not None:
        return profile
    parts = spec.split(",")
    try:
        if len(parts) != 3:
            raise ValueError
        select_f, evaluate_f, update_f = (float(v) for v in parts)
    except ValueError:
        raise ValueError(
            f"--mix must be three floats or one of "
            f"{', '.join(sorted(MIX_PROFILES))}; got {spec!r}"
        ) from None
    return select_f, evaluate_f, update_f


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff on ``queue_full``.

    Only explicit ``queue_full`` rejections are retried — they are the
    server *asking* for backoff.  Deadline misses and protocol errors
    are terminal: retrying a request whose answer nobody awaits just
    adds load to an already-struggling server.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based): capped exponential."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))


@dataclass(frozen=True)
class LoadgenConfig:
    """Tunables of one load-generation run."""

    #: Loop discipline: ``"closed"`` (fixed client count, each issuing
    #: back-to-back) or ``"open"`` (Poisson arrivals at a target qps,
    #: arrivals independent of completions).
    mode: str = MODE_CLOSED

    # -- closed loop ---------------------------------------------------
    #: Concurrent clients, one connection and thread each.
    clients: int = 4
    #: Measured requests per client.
    requests_per_client: int = 25
    #: Unmeasured leading requests per client (cache/pool warm-up).
    warmup_requests: int = 5

    # -- open loop -----------------------------------------------------
    #: Target arrival rate during warmup and measure.
    qps: float = 150.0
    #: Measured window length.
    measure_s: float = 1.2
    #: Full-rate, unmeasured window before measurement.
    warmup_s: float = 0.4
    #: Linear 0 -> qps ramp before warmup (arrivals thinned).
    ramp_s: float = 0.4
    #: Concurrent in-flight requests the sender pool allows.
    max_inflight: int = 32

    # -- workload shape ------------------------------------------------
    #: Select methods, *rank order for the Zipf skew*: index 0 is the
    #: hottest key.
    methods: tuple[str, ...] = ("MND", "NFC", "SS", "QVC")
    #: Operation mix (fractions of all requests; must sum to 1).
    select_fraction: float = 0.80
    evaluate_fraction: float = 0.10
    update_fraction: float = 0.10
    #: Zipf skew exponent over cache-able keys (0 = uniform).
    zipf_alpha: float = 0.9
    #: Zipf keyspace size for ``evaluate`` candidate ids.
    evaluate_keys: int = 64

    # -- per request ---------------------------------------------------
    #: Deadline sent with every request (None = server default).
    timeout_s: Optional[float] = 5.0
    #: Hosted workspace name to drive.
    workspace: str = "default"

    # -- client loops --------------------------------------------------
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    # -- determinism ---------------------------------------------------
    #: Seeds the arrival process, the op mix and the Zipf draws; two
    #: runs with the same (config, seed) plan identical request streams.
    seed: int = 20120401

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, not {self.mode!r}")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        if self.warmup_requests < 0:
            raise ValueError("warmup_requests must be >= 0")
        if self.qps <= 0:
            raise ValueError("qps must be > 0")
        if self.measure_s <= 0:
            raise ValueError("measure_s must be > 0")
        if self.warmup_s < 0 or self.ramp_s < 0:
            raise ValueError("warmup_s and ramp_s must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not self.methods:
            raise ValueError("at least one select method is required")
        mix = (
            self.select_fraction,
            self.evaluate_fraction,
            self.update_fraction,
        )
        if any(f < 0 for f in mix):
            raise ValueError("mix fractions must be >= 0")
        if abs(sum(mix) - 1.0) > 1e-9:
            raise ValueError(
                f"mix fractions must sum to 1 (got {sum(mix):g}); "
                "pass e.g. select=0.8, evaluate=0.1, update=0.1"
            )
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")
        if self.evaluate_keys < 1:
            raise ValueError("evaluate_keys must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0 (or None)")

    # ------------------------------------------------------------------
    def with_methods(self, methods) -> "LoadgenConfig":
        """The same config over a subset of select methods."""
        return replace(self, methods=tuple(methods))

    def mix(self) -> dict[str, float]:
        return {
            "select": self.select_fraction,
            "evaluate": self.evaluate_fraction,
            "update": self.update_fraction,
        }

    def label(self) -> str:
        """A compact identity string (the bench entry's config label)."""
        if self.mode == MODE_CLOSED:
            shape = (
                f"clients={self.clients},"
                f"reqs={self.requests_per_client}+{self.warmup_requests}w"
            )
        else:
            shape = (
                f"qps={self.qps:g},measure={self.measure_s:g}s,"
                f"warmup={self.warmup_s:g}s,ramp={self.ramp_s:g}s"
            )
        return (
            f"{self.mode}({shape},a={self.zipf_alpha:g},"
            f"mix={self.select_fraction:g}/{self.evaluate_fraction:g}"
            f"/{self.update_fraction:g},seed={self.seed})"
        )
