"""The client request loop: issue, retry, account.

:func:`execute_request` is the socket-free core every worker thread
runs per planned request.  It talks to the server through a minimal
*transport* (anything with ``send(planned) -> TransportReply``), which
is what lets the retry/backoff and error-accounting logic be tested
deterministically with an injected fake — in the spirit of a
thread-pooled downloader's per-item retry loop.

Outcome accounting is **typed**: every failure carries the protocol's
machine-readable error code (``queue_full``, ``deadline_exceeded``,
``connection``, ...), so the aggregator can tell admission-control
pushback (expected under overload, bounded by the retry policy) from
protocol errors (always a bug, gated to zero in the smoke check).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.service.protocol import (
    DeadlineExceededError,
    QueueFullError,
    ServiceError,
)
from repro.loadgen.config import RetryPolicy
from repro.loadgen.schedule import PlannedRequest


def plan_trace_id(planned: PlannedRequest) -> str:
    """The deterministic trace id one planned request travels under.

    Derived from the plan coordinates (phase, client, sequence) — never
    stored *in* the plan — so attaching trace ids cannot drift the
    pinned schedules the bench suite gates on, yet any request in a
    report can be looked up in the server's trace buffer afterwards.
    """
    return f"lg-{planned.phase}-{planned.client}-{planned.sequence}"


@dataclass(frozen=True)
class TransportReply:
    """What the transport learned from one successful round trip."""

    cached: bool = False
    batch_size: Optional[int] = None
    data_version: Optional[int] = None
    #: The id the server correlated this request's spans under.
    trace_id: Optional[str] = None


class Transport(Protocol):
    """One connection's sending surface (see :class:`ServiceTransport`)."""

    def send(self, planned: PlannedRequest) -> TransportReply: ...


@dataclass
class RequestOutcome:
    """Everything the aggregator needs to know about one request."""

    planned: PlannedRequest
    ok: bool
    cached: bool = False
    error_code: Optional[str] = None
    attempts: int = 1
    queue_full_retries: int = 0
    #: First attempt start -> final resolution (includes backoff sleeps).
    latency_s: float = 0.0
    #: The final attempt's round trip alone.
    service_latency_s: float = 0.0
    #: Run-relative clock stamps (for throughput windows).
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Server-correlated trace id (successful requests only).
    trace_id: Optional[str] = None

    @property
    def deadline_missed(self) -> bool:
        return self.error_code == DeadlineExceededError.code

    @property
    def queue_full_failure(self) -> bool:
        """Rejected by admission control even after bounded retries."""
        return self.error_code == QueueFullError.code


def execute_request(
    planned: PlannedRequest,
    transport: Transport,
    retry: RetryPolicy,
    clock: Callable[[], float] = time.perf_counter,
    sleep: Callable[[float], None] = time.sleep,
) -> RequestOutcome:
    """Issue one planned request with bounded ``queue_full`` retries.

    ``clock`` and ``sleep`` are injectable so tests can drive the loop
    with a virtual clock and assert the exact backoff sequence.
    """
    started = clock()
    attempts = 0
    queue_full_retries = 0
    while True:
        attempts += 1
        attempt_started = clock()
        try:
            reply = transport.send(planned)
        except QueueFullError:
            if attempts <= retry.max_retries:
                queue_full_retries += 1
                sleep(retry.backoff_s(attempts))
                continue
            finished = clock()
            return RequestOutcome(
                planned=planned,
                ok=False,
                error_code=QueueFullError.code,
                attempts=attempts,
                queue_full_retries=queue_full_retries,
                latency_s=finished - started,
                service_latency_s=finished - attempt_started,
                started_at=started,
                finished_at=finished,
            )
        except ServiceError as exc:
            # Terminal: deadline misses and protocol errors are not
            # retried (see RetryPolicy's docstring).
            finished = clock()
            return RequestOutcome(
                planned=planned,
                ok=False,
                error_code=exc.code,
                attempts=attempts,
                queue_full_retries=queue_full_retries,
                latency_s=finished - started,
                service_latency_s=finished - attempt_started,
                started_at=started,
                finished_at=finished,
            )
        finished = clock()
        return RequestOutcome(
            planned=planned,
            ok=True,
            cached=reply.cached,
            trace_id=reply.trace_id,
            attempts=attempts,
            queue_full_retries=queue_full_retries,
            latency_s=finished - started,
            service_latency_s=finished - attempt_started,
            started_at=started,
            finished_at=finished,
        )


class ServiceTransport:
    """A :class:`~repro.service.client.ServiceClient` as a transport.

    One transport per worker thread (the underlying client serialises
    whole calls).  ``n_p`` is the served workspace's potential-location
    count, scraped from ``stats`` before the run; evaluate keys are
    taken modulo it so one plan drives any dataset size.
    """

    def __init__(
        self,
        host: str,
        port: int,
        workspace: str = "default",
        timeout_s: Optional[float] = None,
        n_p: int = 1,
    ):
        # Imported here so the socket-free core stays importable (and
        # testable) without the service stack.
        from repro.service.client import ServiceClient

        self._client = ServiceClient(host, port)
        self.workspace = workspace
        self.timeout_s = timeout_s
        self.n_p = max(1, int(n_p))

    def send(self, planned: PlannedRequest) -> TransportReply:
        trace_id = plan_trace_id(planned)
        params: dict = {"workspace": self.workspace, "trace_id": trace_id}
        if self.timeout_s is not None:
            params["timeout_s"] = self.timeout_s
        if planned.op == "select":
            params["method"] = planned.method
        elif planned.op == "evaluate":
            assert planned.evaluate_key is not None
            params["ids"] = [planned.evaluate_key % self.n_p]
        else:  # update
            assert planned.point is not None
            params["action"] = "add_client"
            params["point"] = list(planned.point)
        response = self._client.call(planned.op, **params)
        return TransportReply(
            cached=bool(response.get("cached", False)),
            batch_size=response.get("batch_size"),
            data_version=response.get("data_version"),
            trace_id=response.get("trace_id", trace_id),
        )

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "ServiceTransport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
