"""Deterministic request planning: arrivals, mix and key skew.

The schedule is computed *before* any socket is opened, as a pure
function of ``(config, seed)``:

* **closed loop** — each client ``i`` gets its own request sequence
  from a private ``Random(f"{seed}:client:{i}")`` stream, so the plan
  is independent of thread interleaving and of how many clients finish
  first;
* **open loop** — one ``Random(f"{seed}:open")`` stream drives a
  Poisson process at the target qps (exponential inter-arrival gaps);
  arrivals inside the ramp window are *thinned* with acceptance
  probability ``t / ramp_s``, which turns the homogeneous process into
  a linear 0 → qps ramp without a second clock.

Key skew reuses :class:`repro.datasets.zipf.ZipfSampler` (the Table IV
sampler): select traffic draws a Zipf rank over the method list (rank 1
— the config's first method — is the hottest cache key), ``evaluate``
traffic draws candidate-id keys from a ``evaluate_keys``-sized Zipf
keyspace.  Skewed key popularity is exactly what exercises the
service's result cache and the batcher's duplicate coalescing.

Python's ``random`` module is the Mersenne Twister with a stable
string-seeding path, so the planned counts and mix are identical on
every platform and Python version — which is why the bench suite can
gate them with an exact-match policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.datasets.zipf import ZipfSampler
from repro.loadgen.config import (
    MODE_CLOSED,
    PHASE_MEASURE,
    PHASE_WARMUP,
    LoadgenConfig,
)

#: The paper's space domain; update points are drawn inside it.
_DOMAIN = 1000.0


@dataclass(frozen=True)
class PlannedRequest:
    """One request the generator will issue, fully decided in advance."""

    client: int  # closed-loop client index (0 for open loop)
    sequence: int  # position within the client's / the arrival stream
    phase: str  # PHASE_WARMUP | PHASE_MEASURE
    op: str  # "select" | "evaluate" | "update"
    #: Open loop only: arrival offset from the run start, seconds.
    at_s: Optional[float] = None
    #: select: the method; also the cache key.
    method: Optional[str] = None
    #: evaluate: the Zipf-drawn candidate key (taken modulo the served
    #: workspace's ``n_p`` at send time, so plans are dataset-agnostic).
    evaluate_key: Optional[int] = None
    #: update: the client point to add.
    point: Optional[tuple[float, float]] = None

    @property
    def key(self) -> str:
        """The cache-able identity this request hits (for skew stats)."""
        if self.op == "select":
            return f"select:{self.method}"
        if self.op == "evaluate":
            return f"evaluate:{self.evaluate_key}"
        return "update"


class _RequestPlanner:
    """Draws ops and keys from one deterministic RNG stream."""

    def __init__(self, config: LoadgenConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.method_zipf = ZipfSampler(len(config.methods), config.zipf_alpha, rng)
        self.evaluate_zipf = ZipfSampler(config.evaluate_keys, config.zipf_alpha, rng)

    def plan(
        self,
        client: int,
        sequence: int,
        phase: str,
        at_s: Optional[float] = None,
    ) -> PlannedRequest:
        config, rng = self.config, self.rng
        draw = rng.random()
        if draw < config.select_fraction:
            rank = self.method_zipf.sample()
            return PlannedRequest(
                client=client,
                sequence=sequence,
                phase=phase,
                op="select",
                at_s=at_s,
                method=config.methods[rank - 1],
            )
        if draw < config.select_fraction + config.evaluate_fraction:
            rank = self.evaluate_zipf.sample()
            return PlannedRequest(
                client=client,
                sequence=sequence,
                phase=phase,
                op="evaluate",
                at_s=at_s,
                evaluate_key=rank - 1,
            )
        return PlannedRequest(
            client=client,
            sequence=sequence,
            phase=phase,
            op="update",
            at_s=at_s,
            point=(rng.uniform(0.0, _DOMAIN), rng.uniform(0.0, _DOMAIN)),
        )


def closed_schedule(config: LoadgenConfig) -> list[list[PlannedRequest]]:
    """Per-client request sequences for a closed-loop run.

    Client ``i``'s stream is seeded independently, so the plan does not
    depend on how the threads interleave at run time.
    """
    schedules: list[list[PlannedRequest]] = []
    for client in range(config.clients):
        planner = _RequestPlanner(
            config, random.Random(f"{config.seed}:client:{client}")
        )
        sequence: list[PlannedRequest] = []
        total = config.warmup_requests + config.requests_per_client
        for index in range(total):
            phase = (
                PHASE_WARMUP if index < config.warmup_requests else PHASE_MEASURE
            )
            sequence.append(planner.plan(client, index, phase))
        schedules.append(sequence)
    return schedules


def open_schedule(config: LoadgenConfig) -> list[PlannedRequest]:
    """The arrival stream for an open-loop run (sorted by ``at_s``).

    A homogeneous Poisson process at ``config.qps`` runs over
    ``ramp_s + warmup_s + measure_s``; ramp-window arrivals are thinned
    with probability ``t / ramp_s`` to realise the linear ramp.  Ramp
    and warmup arrivals are tagged ``warmup`` (issued, never measured).
    """
    rng = random.Random(f"{config.seed}:open")
    planner = _RequestPlanner(config, rng)
    total_s = config.ramp_s + config.warmup_s + config.measure_s
    measure_from = config.ramp_s + config.warmup_s
    arrivals: list[PlannedRequest] = []
    t = 0.0
    sequence = 0
    while True:
        t += rng.expovariate(config.qps)
        if t >= total_s:
            break
        if t < config.ramp_s and rng.random() >= t / config.ramp_s:
            continue  # thinned: the ramp is still below full rate here
        phase = PHASE_MEASURE if t >= measure_from else PHASE_WARMUP
        arrivals.append(planner.plan(0, sequence, phase, at_s=t))
        sequence += 1
    return arrivals


def plan_requests(config: LoadgenConfig) -> list[PlannedRequest]:
    """The full planned stream, flattened (closed: client-major)."""
    if config.mode == MODE_CLOSED:
        return [req for client in closed_schedule(config) for req in client]
    return open_schedule(config)


def schedule_summary(planned: list[PlannedRequest]) -> dict:
    """Deterministic counts and mix of one plan.

    This is exactly what the bench suite gates: measured request count,
    per-op counts, per-method select counts and the warmup volume.  The
    ``key_histogram`` (measure phase, most-popular first) is what the
    skew tests assert Zipf shape on.
    """
    measured = [p for p in planned if p.phase == PHASE_MEASURE]
    ops = {"select": 0, "evaluate": 0, "update": 0}
    by_method: dict[str, int] = {}
    histogram: dict[str, int] = {}
    for req in measured:
        ops[req.op] += 1
        if req.op == "select" and req.method is not None:
            by_method[req.method] = by_method.get(req.method, 0) + 1
        histogram[req.key] = histogram.get(req.key, 0) + 1
    return {
        "requests": len(measured),
        "warmup_requests": len(planned) - len(measured),
        "ops": ops,
        "selects_by_method": dict(sorted(by_method.items())),
        "key_histogram": dict(
            sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        ),
    }
