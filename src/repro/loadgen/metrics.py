"""SLO accounting: latency percentiles, rates, policy checks, report.

The aggregator folds a run's :class:`~repro.loadgen.loop.RequestOutcome`
stream into one :class:`LoadgenStats`: deterministic counts (gated by
the bench suite), latency percentiles p50/p99/p999, realised
throughput, and the three service-level rates — queue-full, deadline
miss, protocol error — plus the client-observed cache hit rate.

:class:`SLOPolicy` turns those into explicit pass/fail checks, and
:func:`render_slo_report` renders the whole run as the markdown SLO
report CI uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.loadgen.config import PHASE_MEASURE, LoadgenConfig
from repro.loadgen.loop import RequestOutcome
from repro.service.protocol import (
    DeadlineExceededError,
    QueueFullError,
)

#: Error codes that count as *pushback*, not protocol failures.
PUSHBACK_CODES = (QueueFullError.code, DeadlineExceededError.code)


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of pre-sorted samples (nearest-rank)."""
    if not sorted_samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    rank = int(q * len(sorted_samples))
    return sorted_samples[min(rank, len(sorted_samples) - 1)]


@dataclass(frozen=True)
class LatencyStats:
    """Percentiles of one latency sample set (seconds)."""

    count: int = 0
    p50_s: float = 0.0
    p99_s: float = 0.0
    p999_s: float = 0.0
    mean_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls()
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            p50_s=percentile(ordered, 0.50),
            p99_s=percentile(ordered, 0.99),
            p999_s=percentile(ordered, 0.999),
            mean_s=sum(ordered) / len(ordered),
            max_s=ordered[-1],
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "p999_s": self.p999_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


@dataclass
class LoadgenStats:
    """One run's measured-phase accounting."""

    mode: str
    requests: int = 0  # measured requests issued
    completed_ok: int = 0
    warmup_requests: int = 0
    selects: int = 0
    evaluates: int = 0
    updates: int = 0
    select_cache_hits: int = 0
    queue_full_failures: int = 0  # rejected even after bounded retries
    queue_full_retries: int = 0  # retried-and-recovered pushback events
    deadline_misses: int = 0
    errors: dict[str, int] = field(default_factory=dict)  # by error code
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: First measured issue -> last measured completion, seconds.
    duration_s: float = 0.0

    # -- rates ---------------------------------------------------------
    @property
    def throughput_qps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def queue_full_rate(self) -> float:
        return self.queue_full_failures / self.requests if self.requests else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.requests if self.requests else 0.0

    @property
    def protocol_errors(self) -> int:
        """Failures that are bugs, not pushback (bad_request, internal,
        connection, ...)."""
        return sum(
            count
            for code, count in self.errors.items()
            if code not in PUSHBACK_CODES
        )

    @property
    def protocol_error_rate(self) -> float:
        return self.protocol_errors / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Client-observed: fraction of measured selects answered from
        the service's result cache."""
        return self.select_cache_hits / self.selects if self.selects else 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "completed_ok": self.completed_ok,
            "warmup_requests": self.warmup_requests,
            "selects": self.selects,
            "evaluates": self.evaluates,
            "updates": self.updates,
            "select_cache_hits": self.select_cache_hits,
            "queue_full_failures": self.queue_full_failures,
            "queue_full_retries": self.queue_full_retries,
            "deadline_misses": self.deadline_misses,
            "errors": dict(self.errors),
            "latency": self.latency.to_dict(),
            "duration_s": self.duration_s,
            "throughput_qps": self.throughput_qps,
            "queue_full_rate": self.queue_full_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "protocol_errors": self.protocol_errors,
            "cache_hit_rate": self.cache_hit_rate,
        }


def aggregate_outcomes(
    outcomes: Sequence[RequestOutcome], mode: str
) -> LoadgenStats:
    """Fold a run's outcomes into one :class:`LoadgenStats`.

    Only measure-phase outcomes enter the counts, rates and latency
    percentiles; warmup outcomes contribute their volume alone.
    """
    stats = LoadgenStats(mode=mode)
    samples: list[float] = []
    first_issue: Optional[float] = None
    last_finish: Optional[float] = None
    for outcome in outcomes:
        if outcome.planned.phase != PHASE_MEASURE:
            stats.warmup_requests += 1
            continue
        stats.requests += 1
        stats.queue_full_retries += outcome.queue_full_retries
        op = outcome.planned.op
        if op == "select":
            stats.selects += 1
            if outcome.ok and outcome.cached:
                stats.select_cache_hits += 1
        elif op == "evaluate":
            stats.evaluates += 1
        else:
            stats.updates += 1
        if outcome.ok:
            stats.completed_ok += 1
        else:
            code = outcome.error_code or "internal"
            stats.errors[code] = stats.errors.get(code, 0) + 1
            if outcome.queue_full_failure:
                stats.queue_full_failures += 1
            if outcome.deadline_missed:
                stats.deadline_misses += 1
        samples.append(outcome.latency_s)
        if first_issue is None or outcome.started_at < first_issue:
            first_issue = outcome.started_at
        if last_finish is None or outcome.finished_at > last_finish:
            last_finish = outcome.finished_at
    stats.latency = LatencyStats.from_samples(samples)
    if first_issue is not None and last_finish is not None:
        stats.duration_s = max(0.0, last_finish - first_issue)
    return stats


# ----------------------------------------------------------------------
# SLO policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOCheck:
    """One evaluated service-level objective."""

    name: str
    ok: bool
    actual: float
    limit: float

    def format(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"{mark}  {self.name}: {self.actual:.4g} (limit {self.limit:.4g})"


@dataclass(frozen=True)
class SLOPolicy:
    """Thresholds a run must hold; ``None`` disables a check."""

    max_protocol_error_rate: float = 0.0
    max_queue_full_rate: Optional[float] = 0.05
    max_deadline_miss_rate: Optional[float] = 0.05
    p99_target_s: Optional[float] = None
    min_cache_hit_rate: Optional[float] = None

    def evaluate(self, stats: LoadgenStats) -> list[SLOCheck]:
        checks = [
            SLOCheck(
                "protocol error rate",
                stats.protocol_error_rate <= self.max_protocol_error_rate,
                stats.protocol_error_rate,
                self.max_protocol_error_rate,
            )
        ]
        if self.max_queue_full_rate is not None:
            checks.append(
                SLOCheck(
                    "queue-full rate",
                    stats.queue_full_rate <= self.max_queue_full_rate,
                    stats.queue_full_rate,
                    self.max_queue_full_rate,
                )
            )
        if self.max_deadline_miss_rate is not None:
            checks.append(
                SLOCheck(
                    "deadline-miss rate",
                    stats.deadline_miss_rate <= self.max_deadline_miss_rate,
                    stats.deadline_miss_rate,
                    self.max_deadline_miss_rate,
                )
            )
        if self.p99_target_s is not None:
            checks.append(
                SLOCheck(
                    "p99 latency (s)",
                    stats.latency.p99_s <= self.p99_target_s,
                    stats.latency.p99_s,
                    self.p99_target_s,
                )
            )
        if self.min_cache_hit_rate is not None:
            checks.append(
                SLOCheck(
                    "cache hit rate (min)",
                    stats.cache_hit_rate >= self.min_cache_hit_rate,
                    stats.cache_hit_rate,
                    self.min_cache_hit_rate,
                )
            )
        return checks

    def passed(self, stats: LoadgenStats) -> bool:
        return all(check.ok for check in self.evaluate(stats))


# ----------------------------------------------------------------------
# Markdown SLO report
# ----------------------------------------------------------------------
def render_slo_report(
    config: LoadgenConfig,
    stats: LoadgenStats,
    checks: Sequence[SLOCheck],
    server_cache_hit_rate: Optional[float] = None,
    server_deltas: Optional[dict] = None,
    title: str = "Load-generator SLO report",
) -> str:
    """The run as a self-contained markdown document."""
    lines = [
        f"# {title}",
        "",
        f"- config: `{config.label()}`",
        f"- methods: {', '.join(config.methods)}",
        f"- measured requests: {stats.requests} "
        f"(+{stats.warmup_requests} warmup)  "
        f"mix: {stats.selects} select / {stats.evaluates} evaluate / "
        f"{stats.updates} update",
        f"- duration: {stats.duration_s:.3f}s  "
        f"throughput: {stats.throughput_qps:.1f} req/s",
        "",
        "| metric | value |",
        "|---|---:|",
        f"| p50 latency | {stats.latency.p50_s * 1000:.2f} ms |",
        f"| p99 latency | {stats.latency.p99_s * 1000:.2f} ms |",
        f"| p999 latency | {stats.latency.p999_s * 1000:.2f} ms |",
        f"| max latency | {stats.latency.max_s * 1000:.2f} ms |",
        f"| queue-full rate | {stats.queue_full_rate:.4f} |",
        f"| queue-full retries (recovered) | {stats.queue_full_retries} |",
        f"| deadline-miss rate | {stats.deadline_miss_rate:.4f} |",
        f"| protocol errors | {stats.protocol_errors} |",
        f"| cache hit rate (client-observed) | {stats.cache_hit_rate:.4f} |",
    ]
    if server_cache_hit_rate is not None:
        lines.append(
            f"| cache hit rate (server counters) | {server_cache_hit_rate:.4f} |"
        )
    if stats.errors:
        lines.append("")
        lines.append("Errors by code: " + ", ".join(
            f"`{code}`×{count}" for code, count in sorted(stats.errors.items())
        ))
    # Counter movement only: duration aggregates (latency sums) are
    # real deltas but read as noise in a table of event counts — the
    # JSON result keeps them.
    moved = {
        key: value
        for key, value in (server_deltas or {}).items()
        if value and "latency_s" not in key
    }
    if moved:
        lines.append("")
        lines.append("## Server-side counter deltas")
        lines.append("")
        lines.append("| counter | Δ over run |")
        lines.append("|---|---:|")
        for key in sorted(moved):
            lines.append(f"| `{key}` | {moved[key]:g} |")
    lines.append("")
    lines.append("## SLO checks")
    lines.append("")
    for check in checks:
        lines.append(f"- {'✅' if check.ok else '❌'} {check.format()}")
    lines.append("")
    verdict = "PASS" if all(c.ok for c in checks) else "FAIL"
    lines.append(f"**Overall: {verdict}**")
    lines.append("")
    return "\n".join(lines)
