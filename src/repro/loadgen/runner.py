"""Run a planned load against a live ``mindist serve`` instance.

:func:`run_loadgen` drives real TCP connections:

* **closed loop** — one daemon thread per configured client, each with
  its own connection, walking its planned sequence back-to-back (the
  next request leaves only when the previous answered);
* **open loop** — a dispatcher thread replays the planned Poisson
  arrival times, handing each request to a bounded sender pool with a
  connection per pool thread; arrivals do not wait for completions, so
  a slow server accumulates in-flight work exactly the way real
  traffic would (bounded by ``max_inflight``).

Both loops run :func:`~repro.loadgen.loop.execute_request` per planned
request, so retries/backoff and typed error accounting are identical.
The runner verifies *plan fidelity* — every planned request produced
exactly one outcome — which is the invariant that lets the bench suite
gate request counts and mix exactly.

Service-side counters (``stats`` op: cache hits/misses, admission
rejections) are scraped before and after the drive; the delta is the
server's own view of the run, reported alongside the client-observed
rates.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.loadgen.config import MODE_CLOSED, LoadgenConfig
from repro.loadgen.loop import RequestOutcome, ServiceTransport, execute_request
from repro.loadgen.metrics import LoadgenStats, aggregate_outcomes
from repro.loadgen.schedule import (
    PlannedRequest,
    closed_schedule,
    open_schedule,
    schedule_summary,
)


@dataclass
class LoadgenResult:
    """One completed run: plan, outcomes, stats and the server's view."""

    config: LoadgenConfig
    planned: dict  # schedule_summary() of the plan
    stats: LoadgenStats
    outcomes: list[RequestOutcome] = field(default_factory=list)
    server_before: dict = field(default_factory=dict)
    server_after: dict = field(default_factory=dict)
    issued: int = 0  # outcomes produced (warmup + measure)

    @property
    def plan_fidelity(self) -> bool:
        """Did every planned request produce exactly one outcome?"""
        return self.issued == self.planned["requests"] + self.planned[
            "warmup_requests"
        ]

    def server_cache_hit_rate(self) -> Optional[float]:
        """Hit rate from the service's own counters over the run window."""
        try:
            before = self.server_before["cache"]
            after = self.server_after["cache"]
            hits = after["hits"] - before["hits"]
            misses = after["misses"] - before["misses"]
        except (KeyError, TypeError):
            return None
        total = hits + misses
        return hits / total if total > 0 else None

    def server_deltas(self) -> dict[str, float]:
        """The server's own view of the run: per-counter deltas.

        Flat numeric diffs of the ``requests``/``cache``/``counters``
        stats sections between the before/after scrapes (``.mean`` keys
        are averages, not monotone counters, so they are skipped).
        Empty when either scrape is missing a section.
        """
        deltas: dict[str, float] = {}
        for section in ("requests", "cache", "counters"):
            before = self.server_before.get(section)
            after = self.server_after.get(section)
            if not isinstance(before, dict) or not isinstance(after, dict):
                continue
            for key, value in after.items():
                if key.endswith(".mean") or not isinstance(value, (int, float)):
                    continue
                base = before.get(key, 0)
                if not isinstance(base, (int, float)):
                    continue
                deltas[f"{section}.{key}"] = value - base
        return deltas

    def to_dict(self) -> dict:
        return {
            "config_label": self.config.label(),
            "mode": self.config.mode,
            "seed": self.config.seed,
            "zipf_alpha": self.config.zipf_alpha,
            "planned": self.planned,
            "issued": self.issued,
            "plan_fidelity": self.plan_fidelity,
            "stats": self.stats.to_dict(),
            "server_cache_hit_rate": self.server_cache_hit_rate(),
            "server_deltas": self.server_deltas(),
        }


def _scrape_stats(host: str, port: int) -> dict:
    from repro.service.client import ServiceClient

    with ServiceClient(host, port) as client:
        return client.stats()


def _workspace_n_p(stats: dict, workspace: str) -> int:
    try:
        return int(stats["workspaces"][workspace]["n_p"])
    except (KeyError, TypeError, ValueError):
        return 1


def _run_closed(
    config: LoadgenConfig, host: str, port: int, n_p: int
) -> list[RequestOutcome]:
    schedules = closed_schedule(config)
    buckets: list[list[RequestOutcome]] = [[] for _ in schedules]
    failures: list[BaseException] = []
    lock = threading.Lock()

    def _client_loop(index: int, sequence: list[PlannedRequest]) -> None:
        try:
            with ServiceTransport(
                host,
                port,
                workspace=config.workspace,
                timeout_s=config.timeout_s,
                n_p=n_p,
            ) as transport:
                for planned in sequence:
                    buckets[index].append(
                        execute_request(planned, transport, config.retry)
                    )
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(
            target=_client_loop,
            args=(index, sequence),
            name=f"loadgen-client-{index}",
            daemon=True,
        )
        for index, sequence in enumerate(schedules)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise RuntimeError(
            f"{len(failures)} client loop(s) died; first: {failures[0]!r}"
        ) from failures[0]
    return [outcome for bucket in buckets for outcome in bucket]


def _run_open(
    config: LoadgenConfig, host: str, port: int, n_p: int
) -> list[RequestOutcome]:
    arrivals = open_schedule(config)
    local = threading.local()
    transports: list[ServiceTransport] = []
    transports_lock = threading.Lock()

    def _transport() -> ServiceTransport:
        transport = getattr(local, "transport", None)
        if transport is None:
            transport = ServiceTransport(
                host,
                port,
                workspace=config.workspace,
                timeout_s=config.timeout_s,
                n_p=n_p,
            )
            local.transport = transport
            with transports_lock:
                transports.append(transport)
        return transport

    def _send(planned: PlannedRequest) -> RequestOutcome:
        return execute_request(planned, _transport(), config.retry)

    outcomes: list[RequestOutcome] = []
    start = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=config.max_inflight, thread_name_prefix="loadgen-open"
    ) as pool:
        futures = []
        for planned in arrivals:
            assert planned.at_s is not None
            # Open loop: pace off the wall clock, never off completions.
            delay = planned.at_s - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(_send, planned))
        for future in futures:
            outcomes.append(future.result())
    for transport in transports:
        transport.close()
    return outcomes


def run_loadgen(config: LoadgenConfig, host: str, port: int) -> LoadgenResult:
    """Drive one planned load against the service at ``host:port``."""
    before = _scrape_stats(host, port)
    if config.workspace not in before.get("workspaces", {}):
        served = ", ".join(sorted(before.get("workspaces", {}))) or "none"
        raise ValueError(
            f"service does not host workspace {config.workspace!r} "
            f"(serving: {served})"
        )
    n_p = _workspace_n_p(before, config.workspace)
    if config.mode == MODE_CLOSED:
        outcomes = _run_closed(config, host, port, n_p)
        planned = schedule_summary(
            [req for client in closed_schedule(config) for req in client]
        )
    else:
        outcomes = _run_open(config, host, port, n_p)
        planned = schedule_summary(open_schedule(config))
    after = _scrape_stats(host, port)
    stats = aggregate_outcomes(outcomes, config.mode)
    return LoadgenResult(
        config=config,
        planned=planned,
        stats=stats,
        outcomes=outcomes,
        server_before=before,
        server_after=after,
        issued=len(outcomes),
    )


# ----------------------------------------------------------------------
# Self-hosting (smoke, bench suite, CLI without a live server)
# ----------------------------------------------------------------------
def self_hosted(
    n_c: int = 2_000,
    n_f: int = 100,
    n_p: int = 100,
    seed: int = 20120401,
    workspace: str = "default",
    workers: int = 2,
    max_pending: int = 64,
    batch_window_s: float = 0.002,
):
    """A context manager serving a fresh dynamic workspace in-thread.

    Yields the :class:`~repro.service.server.ServiceHandle`; use its
    ``host``/``port`` with :func:`run_loadgen`.
    """
    from repro.core import DynamicWorkspace
    from repro.datasets.generators import make_instance
    from repro.service import ServiceConfig, serve_in_thread

    instance = make_instance(n_c, n_f, n_p, rng=seed)
    return serve_in_thread(
        {workspace: DynamicWorkspace(instance)},
        ServiceConfig(
            workers=workers,
            max_pending=max_pending,
            batch_window_s=batch_window_s,
        ),
    )
