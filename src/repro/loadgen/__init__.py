"""Load generation and SLO measurement for the query service.

PR 4 gave the TCP service admission control, micro-batching and a
versioned result cache; this package is their adversary.  It drives a
live server — ``mindist serve`` or an in-thread handle — with
deterministic, realistically *skewed* traffic and measures whether
"heavy traffic" actually holds:

* :mod:`repro.loadgen.config` — the experiment description: open
  (Poisson arrivals at a target qps) or closed (fixed client count)
  loop, select/evaluate/update mix, Zipf key skew, per-request
  deadlines, ramp/warmup/measure phases, bounded retry policy;
* :mod:`repro.loadgen.schedule` — the deterministic plan: every
  arrival, op and key decided up front from the seed, so request
  counts and mix gate exactly in the bench harness;
* :mod:`repro.loadgen.loop` — the per-request client loop (bounded
  ``queue_full`` retries with capped exponential backoff, typed error
  accounting) over an injectable transport;
* :mod:`repro.loadgen.metrics` — p50/p99/p999 latency, throughput,
  queue-full / deadline-miss / protocol-error rates, cache hit rate,
  :class:`SLOPolicy` checks and the markdown SLO report;
* :mod:`repro.loadgen.runner` — the thread-pooled drivers and the
  before/after scrape of the service's own ``stats`` counters;
* :mod:`repro.loadgen.smoke` — the CI smoke check.

Quick usage::

    from repro.loadgen import LoadgenConfig, run_loadgen, self_hosted

    with self_hosted(n_c=2_000, n_f=100, n_p=100) as handle:
        result = run_loadgen(LoadgenConfig(mode="open", qps=200),
                             handle.host, handle.port)
    print(result.stats.latency.p99_s, result.stats.cache_hit_rate)

or from a shell: ``mindist loadgen --random 10000 500 500 --mode open
--qps 300 --report slo.md``.  The ``loadgen`` bench suite
(``mindist bench run loadgen``) records the same drive into the
regression-gated history.
"""

from repro.loadgen.config import (
    MIX_PROFILES,
    MODE_CLOSED,
    MODE_OPEN,
    MODES,
    OPS,
    PHASE_MEASURE,
    PHASE_WARMUP,
    LoadgenConfig,
    RetryPolicy,
    parse_mix,
)
from repro.loadgen.loop import (
    RequestOutcome,
    ServiceTransport,
    TransportReply,
    execute_request,
)
from repro.loadgen.metrics import (
    PUSHBACK_CODES,
    LatencyStats,
    LoadgenStats,
    SLOCheck,
    SLOPolicy,
    aggregate_outcomes,
    percentile,
    render_slo_report,
)
from repro.loadgen.runner import LoadgenResult, run_loadgen, self_hosted
from repro.loadgen.schedule import (
    PlannedRequest,
    closed_schedule,
    open_schedule,
    plan_requests,
    schedule_summary,
)

__all__ = [
    "LatencyStats",
    "LoadgenConfig",
    "LoadgenResult",
    "LoadgenStats",
    "MIX_PROFILES",
    "MODES",
    "MODE_CLOSED",
    "MODE_OPEN",
    "OPS",
    "PHASE_MEASURE",
    "PHASE_WARMUP",
    "PUSHBACK_CODES",
    "PlannedRequest",
    "RequestOutcome",
    "RetryPolicy",
    "SLOCheck",
    "SLOPolicy",
    "ServiceTransport",
    "TransportReply",
    "aggregate_outcomes",
    "closed_schedule",
    "execute_request",
    "open_schedule",
    "parse_mix",
    "percentile",
    "plan_requests",
    "render_slo_report",
    "run_loadgen",
    "schedule_summary",
    "self_hosted",
]
