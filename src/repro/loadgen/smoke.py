"""Loadgen smoke check (run in CI as ``python -m repro.loadgen.smoke``).

Boots an ephemeral server and fires a short closed-loop burst with the
default skewed mix at it, then asserts the properties that make load
generation a trustworthy adversary:

1. **plan fidelity** — every planned request produced exactly one
   outcome (no silent drops, no duplicates);
2. **zero protocol errors** — pushback (``queue_full``,
   ``deadline_exceeded``) is legitimate under load, but a
   ``bad_request``/``internal``/``connection`` error means the
   generator or the service is broken;
3. **cache hits under skew** — the Zipf-skewed select stream must
   actually land repeated keys in the service's result cache (that is
   the workload property the generator exists to emulate);
4. **bounded queue-full rate** — with the default admission bound the
   burst must be mostly admitted; bounded retries absorb transient
   pushback.

Exits non-zero on the first violated invariant.
"""

from __future__ import annotations

import sys

from repro.loadgen.config import LoadgenConfig
from repro.loadgen.metrics import SLOPolicy, render_slo_report
from repro.loadgen.runner import run_loadgen, self_hosted

SMOKE_SEED = 11
SMOKE_SIZES = dict(n_c=800, n_f=40, n_p=60)

#: A short, skewed closed-loop burst: 4 clients × (3 warmup + 20
#: measured) requests, 80/10/10 select/evaluate/update mix, alpha 0.9.
SMOKE_CONFIG = LoadgenConfig(
    mode="closed",
    clients=4,
    requests_per_client=20,
    warmup_requests=3,
    zipf_alpha=0.9,
    timeout_s=15.0,
    seed=SMOKE_SEED,
)

#: The smoke bar: no protocol errors at all, a mostly-admitted burst,
#: and the skew visibly warming the result cache.
SMOKE_POLICY = SLOPolicy(
    max_protocol_error_rate=0.0,
    max_queue_full_rate=0.10,
    max_deadline_miss_rate=0.10,
    min_cache_hit_rate=1e-9,  # "nonzero", without guessing the exact rate
)


def main() -> int:
    with self_hosted(seed=SMOKE_SEED, **SMOKE_SIZES) as handle:
        print(f"loadgen smoke: serving on {handle.host}:{handle.port}")
        result = run_loadgen(SMOKE_CONFIG, handle.host, handle.port)

    stats = result.stats
    checks = SMOKE_POLICY.evaluate(stats)
    failures = [check.format() for check in checks if not check.ok]
    if not result.plan_fidelity:
        failures.append(
            f"plan fidelity: planned "
            f"{result.planned['requests'] + result.planned['warmup_requests']} "
            f"requests but issued {result.issued}"
        )

    print(
        f"loadgen smoke: {stats.requests} measured requests "
        f"({stats.selects} select / {stats.evaluates} evaluate / "
        f"{stats.updates} update), p50 {stats.latency.p50_s * 1000:.1f}ms, "
        f"p99 {stats.latency.p99_s * 1000:.1f}ms, "
        f"cache hit rate {stats.cache_hit_rate:.2f}, "
        f"queue-full rate {stats.queue_full_rate:.2f}"
    )
    server_rate = result.server_cache_hit_rate()
    if server_rate is not None:
        print(f"loadgen smoke: server-side cache hit rate {server_rate:.2f}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        print()
        print(
            render_slo_report(
                SMOKE_CONFIG, stats, checks, server_cache_hit_rate=server_rate
            )
        )
        return 1
    print(
        "loadgen smoke: OK (plan fidelity, zero protocol errors, "
        "cache hits under skew, bounded queue-full rate)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
