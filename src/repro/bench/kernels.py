"""The ``kernels`` benchmark suite: columnar speedup with exactness enforced.

A ladder of configurations, every method, two kernel backends.  As with
the ``parallel`` suite, two things are measured and one is *enforced*:

* **measured** — wall time per (config, method) under the default
  vectorized backend (median of ``repeats``), and one run under the
  scalar loop-per-record backend.  The ratio is recorded as the
  advisory ``speedup`` metric — the honest answer to "what did the
  columnar fast path buy on this machine";
* **enforced** — exactness: for every ladder point the two backends
  must return the identical selected location, aggregate ``dr``, full
  ``dr`` vector (bit for bit), ``io_total`` and per-structure read
  split.  The recorder raises on any deviation, so the vector kernels
  can never drift from the reference semantics and still produce a
  plausible-looking record.

The gate then pins ``io_total`` / ``index_reads`` / ``data_reads`` /
``index_pages`` of every point to the committed ``BENCH_kernels.json``
exactly (backends share one I/O story by construction, so a single
gated row covers both); ``elapsed_s``, ``scalar_elapsed_s`` and
``speedup`` stay advisory.

The suite runs with **zero simulated page latency**: the columnar
kernels accelerate CPU work, so the CPU-bound regime is the one where
the speedup is visible and the paper's I/O counts are unaffected either
way.  The decoded-leaf cache is cleared before every run so each
backend pays its own decode cost.
"""

from __future__ import annotations

import statistics
from typing import Callable, Optional, Sequence

import numpy as np

from repro import kernels
from repro.bench.record import BenchEntry, BenchRecord, environment_fingerprint
from repro.core import Workspace, make_selector
from repro.experiments.config import ExperimentConfig
from repro.experiments.smoke import SMOKE_METHODS

#: The configuration ladder (keyed by |C|; |F| and |P| scale along).
#: Two rungs: one where whole queries finish in milliseconds vectorized,
#: and one deep enough that leaf pages are full and the batch kernels
#: dominate the runtime.
KERNELS_CONFIGS: tuple[ExperimentConfig, ...] = (
    ExperimentConfig(n_c=4_000, n_f=200, n_p=200),
    ExperimentConfig(n_c=8_000, n_f=400, n_p=400),
)

#: Simulated latency per page read: zero, the CPU-bound regime (see
#: module docstring).
KERNELS_IO_LATENCY_S = 0.0

#: The paper-motivated floor asserted by CI on the SS and MND rows of
#: the committed record (see tests/bench/test_kernels_suite.py).
TARGET_SPEEDUP = 3.0


def _run_once(workspace: Workspace, name: str):
    """One cold select: fresh decode, fresh accounting."""
    workspace.invalidate_leaf_cache()
    selector = make_selector(workspace, name)
    result = selector.select()
    return result, selector.distance_reductions()


def run_kernels_suite(
    repeats: int = 3,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> BenchRecord:
    """Record one execution of the ``kernels`` suite.

    Raises on any vector/scalar divergence (see module docstring).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if workers is not None:
        raise ValueError("suite 'kernels' does not take a worker count")
    chosen = tuple(methods) if methods is not None else SMOKE_METHODS

    record = BenchRecord(
        suite="kernels",
        repeats=repeats,
        environment=environment_fingerprint(dataset_seed=KERNELS_CONFIGS[0].seed),
    )
    for config in KERNELS_CONFIGS:
        label = config.label()
        workspace = Workspace(config.instance(), io_latency_s=KERNELS_IO_LATENCY_S)
        for name in chosen:
            if progress is not None:
                progress(f"running {label} {name} (vector vs scalar) ...")
            samples: list[float] = []
            result = None
            dr_vector = None
            with kernels.use_backend("vector"):
                for __ in range(repeats):
                    r, dr_vector = _run_once(workspace, name)
                    if result is not None and r.io_total != result.io_total:
                        raise AssertionError(
                            f"{name}: page reads differ across repeats "
                            f"({result.io_total} vs {r.io_total})"
                        )
                    result = r
                    samples.append(r.elapsed_s)
            assert result is not None and dr_vector is not None
            with kernels.use_backend("scalar"):
                scalar_result, scalar_dr_vector = _run_once(workspace, name)

            mismatches = [
                field
                for field, vec, ref in (
                    ("location", result.location.sid, scalar_result.location.sid),
                    ("dr", result.dr, scalar_result.dr),
                    ("io_total", result.io_total, scalar_result.io_total),
                    ("io_reads", dict(result.io_reads), dict(scalar_result.io_reads)),
                )
                if vec != ref
            ]
            if not np.array_equal(dr_vector, scalar_dr_vector):
                mismatches.append("dr_vector")
            if mismatches:
                raise AssertionError(
                    f"{label} {name}: vectorized kernels diverge from the "
                    f"scalar reference on {mismatches} — the columnar fast "
                    "path must be exact"
                )

            elapsed = statistics.median(samples)
            index_reads = sum(
                pages
                for source, pages in result.io_reads.items()
                if source.startswith("R_")
            )
            record.entries.append(
                BenchEntry(
                    config=label,
                    method=name,
                    x=float(config.n_c),
                    metrics={
                        "io_total": float(result.io_total),
                        "index_reads": float(index_reads),
                        "data_reads": float(result.io_total - index_reads),
                        "index_pages": float(result.index_pages),
                        "elapsed_s": elapsed,
                        # Informational (not gated): the scalar twin's
                        # wall time and the resulting columnar speedup.
                        "scalar_elapsed_s": scalar_result.elapsed_s,
                        "speedup": (
                            scalar_result.elapsed_s / elapsed if elapsed > 0 else 0.0
                        ),
                    },
                    io_breakdown=dict(result.io_reads),
                    elapsed_samples=samples,
                )
            )
    return record
