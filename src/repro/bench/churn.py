"""The ``churn`` benchmark suite: the write path under load.

Two parts, both with their correctness contract enforced at record
time (the recorder raises; a maintenance bug can never produce a
plausible-looking record):

* **maintenance speedup** (the 100K-client scale rung) — a scripted
  stream of interleaved client/facility mutations runs against a
  :class:`DynamicWorkspace` with every index built, measuring
  maintained mutations per second; the baseline rebuilds the workspace
  (grid NN join + every index) from scratch per mutation, the only
  strategy available before incremental upkeep.  The recorder asserts
  the speedup is **>= 10x** and that the mutated workspace passes the
  full :func:`repro.churn.verify_parity` rebuild-twin check;
* **warm cache under churn** (the micro service dataset) — a mixed
  select/update stream over TCP where most mutations are spatially
  disjoint from every potential site (clients arriving exactly on a
  facility, then departing).  The recorder asserts the region clock
  classified every mutation as expected (``select_changed`` false for
  the disjoint ones, true for the covering ones) and that the select
  cache hit rate over the whole stream — cold start included — is
  **>= 0.5**, the headline claim: under region-scoped invalidation a
  write-heavy stream no longer empties the cache.  Post-stream cold
  selects per method record the usual page-read metrics, exact-gated:
  the mutation stream is deterministic, so the post-churn tree shapes
  (incrementally grown, not bulk-loaded) are too.

Gated metrics: page reads exact; stream shape (mutation/select counts,
mix) pinned; rates advisory (higher is better); wall times advisory.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Optional, Sequence

from repro.bench.record import (
    POLICY_INFO,
    POLICY_PIN,
    POLICY_RATE,
    BenchEntry,
    BenchRecord,
    environment_fingerprint,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.smoke import SMOKE_METHODS

#: The maintenance-speedup rung: the scale suite's 100K-client dataset.
CHURN_RUNG_N_C = 100_000

#: Mutations applied incrementally at the rung (timed as one stream).
CHURN_RUNG_MUTATIONS = 200

#: From-scratch rebuilds timed for the baseline rate (each one is a
#: full grid join + index build; two are plenty to estimate the rate).
CHURN_RUNG_REBUILDS = 2

#: The record-time floor on incremental-vs-rebuild speedup.
CHURN_MIN_SPEEDUP = 10.0

#: The service-stream dataset (the loadgen micro size).
CHURN_MICRO = ExperimentConfig(n_c=2_000, n_f=100, n_p=100)

#: Service-stream shape: select rounds and where the covering
#: mutations land (after these rounds the cache must go cold once).
CHURN_ROUNDS = 6
CHURN_COVERING_AFTER = (2, 4)

#: The record-time floor on the stream's select cache hit rate.
CHURN_MIN_HIT_RATE = 0.5

#: Deterministic seed for the rung's scripted mutation stream.
CHURN_STREAM_SEED = 23


def churn_metric_policies() -> dict[str, str]:
    """The suite's schema-v2 metric -> policy declaration (page reads
    and ``elapsed_s`` keep the classic defaults)."""
    return {
        "mutations": POLICY_PIN,
        "rebuilds": POLICY_PIN,
        "n_c": POLICY_PIN,
        "selects": POLICY_PIN,
        "disjoint_mutations": POLICY_PIN,
        "covering_mutations": POLICY_PIN,
        "incremental_mutations_per_s": POLICY_RATE,
        "maintenance_speedup": POLICY_RATE,
        "select_hit_rate": POLICY_RATE,
        "rebuild_mutations_per_s": POLICY_INFO,
        "cache_survival": POLICY_INFO,
        "duration_s": POLICY_INFO,
    }


def _build_indexes(ws) -> None:
    """Force every index so mutations maintain, never lazily rebuild."""
    for name in ("r_c", "r_f", "rnn_tree", "mnd_tree"):
        getattr(ws, name)


def _rung_stream(ws, mutations: int, seed: int) -> None:
    """The rung's deterministic interleaved mutation stream."""
    import random

    rng = random.Random(seed)
    for _ in range(mutations):
        roll = rng.random()
        if roll < 0.40:
            ws.add_client((rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)))
        elif roll < 0.60:
            ws.remove_client(ws.clients[rng.randrange(ws.n_c)])
        elif roll < 0.85:
            ws.add_facility(
                (rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
            )
        else:
            ws.remove_facility(ws.facilities[rng.randrange(ws.n_f)])


def _speedup_entries(
    progress: Optional[Callable[[str], None]],
) -> list[BenchEntry]:
    from repro.bench.scale import config_for_rung
    from repro.churn.parity import verify_parity
    from repro.core import DynamicWorkspace, Workspace

    config = config_for_rung(CHURN_RUNG_N_C)
    label = config.label()
    if progress is not None:
        progress(f"building {label} with all indexes ...")
    ws = DynamicWorkspace(config.instance())
    _build_indexes(ws)

    if progress is not None:
        progress(
            f"applying {CHURN_RUNG_MUTATIONS} incremental mutations ..."
        )
    t0 = time.perf_counter()
    _rung_stream(ws, CHURN_RUNG_MUTATIONS, CHURN_STREAM_SEED)
    incremental_s = time.perf_counter() - t0
    incremental_rate = CHURN_RUNG_MUTATIONS / incremental_s

    if progress is not None:
        progress("verifying rebuild-twin parity after the stream ...")
    verify_parity(ws, methods=("SS", "MND"))

    if progress is not None:
        progress(f"timing {CHURN_RUNG_REBUILDS} from-scratch rebuilds ...")
    t0 = time.perf_counter()
    for _ in range(CHURN_RUNG_REBUILDS):
        _build_indexes(Workspace(ws.instance))
    rebuild_s = time.perf_counter() - t0
    rebuild_rate = CHURN_RUNG_REBUILDS / rebuild_s

    speedup = incremental_rate / rebuild_rate
    if speedup < CHURN_MIN_SPEEDUP:
        raise AssertionError(
            f"incremental maintenance is only {speedup:.1f}x a per-mutation "
            f"rebuild at n_c={CHURN_RUNG_N_C} (floor {CHURN_MIN_SPEEDUP}x)"
        )
    return [
        BenchEntry(
            config=label,
            method="incremental",
            x=float(CHURN_RUNG_N_C),
            metrics={
                "mutations": float(CHURN_RUNG_MUTATIONS),
                "incremental_mutations_per_s": incremental_rate,
                "elapsed_s": incremental_s,
            },
            elapsed_samples=[incremental_s],
        ),
        BenchEntry(
            config=label,
            method="rebuild",
            x=float(CHURN_RUNG_N_C),
            metrics={
                "rebuilds": float(CHURN_RUNG_REBUILDS),
                "rebuild_mutations_per_s": rebuild_rate,
                "elapsed_s": rebuild_s,
            },
            elapsed_samples=[rebuild_s],
        ),
        BenchEntry(
            config=label,
            method="speedup",
            x=float(CHURN_RUNG_N_C),
            metrics={
                "n_c": float(CHURN_RUNG_N_C),
                "maintenance_speedup": speedup,
            },
        ),
    ]


def _stream_entries(
    repeats: int,
    chosen: Sequence[str],
    progress: Optional[Callable[[str], None]],
    workers: int,
) -> list[BenchEntry]:
    from repro.churn.parity import verify_parity
    from repro.core import DynamicWorkspace, make_selector
    from repro.service import ServiceClient, ServiceConfig, serve_in_thread

    config = CHURN_MICRO
    label = config.label()
    if progress is not None:
        progress(f"running {label} mixed select/update stream over TCP ...")
    ws = DynamicWorkspace(config.instance())
    handle = serve_in_thread({"default": ws}, ServiceConfig(workers=workers))
    hits = selects = disjoint = covering = 0
    t0 = time.perf_counter()
    try:
        with ServiceClient(handle.host, handle.port) as client:
            def run_selects() -> None:
                nonlocal hits, selects
                for name in chosen:
                    selects += 1
                    hits += bool(client.select(name).cached)

            run_selects()  # cold start — counted against the hit rate
            for round_no in range(CHURN_ROUNDS):
                # Two disjoint mutations: a client arrives exactly on a
                # facility (its NFC is a point covering no potential
                # site) and departs again.
                site = ws.facilities[round_no % ws.n_f]
                added = client.update(
                    "add_client", point=[site.x, site.y]
                )
                removed_detail = client.update(
                    "remove_client", cid=added["cid"]
                )
                for detail in (added, removed_detail):
                    if detail.get("select_changed") is not False:
                        raise AssertionError(
                            "disjoint mutation reported select_changed="
                            f"{detail.get('select_changed')!r}; the region "
                            "clock must keep the select cache warm"
                        )
                disjoint += 2
                if round_no in CHURN_COVERING_AFTER:
                    # One covering mutation: a client arrives on a
                    # potential site, which its NFC box then contains.
                    spot = ws.potentials[round_no]
                    detail = client.update(
                        "add_client", point=[spot.x, spot.y]
                    )
                    if detail.get("select_changed") is not True:
                        raise AssertionError(
                            "covering mutation reported select_changed="
                            f"{detail.get('select_changed')!r}; stale "
                            "selects would be served"
                        )
                    covering += 1
                run_selects()
            stats = client.stats()
    finally:
        handle.stop()
    duration_s = time.perf_counter() - t0

    hit_rate = hits / selects
    if hit_rate < CHURN_MIN_HIT_RATE:
        raise AssertionError(
            f"select cache hit rate {hit_rate:.2f} under the churn stream "
            f"is below the {CHURN_MIN_HIT_RATE} floor"
        )
    verify_parity(ws)

    survival = (
        stats.get("workspaces", {}).get("default", {}).get("cache_survival")
    )
    entries = [
        BenchEntry(
            config=label,
            method="service-stream",
            x=None,
            metrics={
                "selects": float(selects),
                "mutations": float(disjoint + covering),
                "disjoint_mutations": float(disjoint),
                "covering_mutations": float(covering),
                "select_hit_rate": hit_rate,
                "cache_survival": float(survival or 0.0),
                "duration_s": duration_s,
            },
        )
    ]

    # Post-churn cold selects: the page-read contract of the maintained
    # (incrementally grown) indexes, deterministic given the stream.
    for name in chosen:
        if progress is not None:
            progress(f"running post-churn cold {name} ...")
        samples = []
        result = None
        for _ in range(repeats):
            ws.invalidate_leaf_cache()
            result = make_selector(ws, name).select()
            samples.append(result.elapsed_s)
        assert result is not None
        index_reads = sum(
            pages
            for source, pages in result.io_reads.items()
            if source.startswith("R_")
        )
        entries.append(
            BenchEntry(
                config=label,
                method=name,
                x=None,
                metrics={
                    "io_total": float(result.io_total),
                    "index_reads": float(index_reads),
                    "data_reads": float(result.io_total - index_reads),
                    "index_pages": float(result.index_pages),
                    "elapsed_s": statistics.median(samples),
                },
                io_breakdown=dict(result.io_reads),
                elapsed_samples=samples,
            )
        )
    return entries


def run_churn_suite(
    repeats: int = 3,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> BenchRecord:
    """Record one execution of the ``churn`` suite (see module docstring;
    raises on any violated correctness floor)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chosen = tuple(methods) if methods is not None else SMOKE_METHODS
    record = BenchRecord(
        suite="churn",
        repeats=repeats,
        environment=environment_fingerprint(
            dataset_seed=CHURN_MICRO.seed
        ),
        metric_policies=churn_metric_policies(),
    )
    record.entries.extend(_speedup_entries(progress))
    record.entries.extend(
        _stream_entries(repeats, chosen, progress, workers or 1)
    )
    return record
