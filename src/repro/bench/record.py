"""The benchmark record schema (``BENCH_<suite>.json``).

A :class:`BenchRecord` is one recorded execution of a named suite: per
(configuration, method) it stores the paper's three metrics plus the
observability breakdowns PR 1 made available — per-source page splits
(index vs. data), per-phase span attribution and the raw wall-time
samples behind the median — and an environment fingerprint that makes
two records comparable (or explains why they are not).

The schema is versioned.  Readers refuse records from a *newer* schema
than they understand; older versions are migrated forward here when the
schema evolves, so committed baselines never go unreadable.

Schema version 2 added **metric policies**: a record may declare, per
metric name, how the comparator must treat it — ``exact`` (fully
deterministic, any increase gates), ``time`` (lower is better, relative
tolerance, advisory unless time-gating is requested), ``rate`` (higher
is better, same tolerance/advisory treatment) or ``info`` (recorded but
never compared).  Suites whose deterministic quantities are *not* page
counts (the ``loadgen`` suite gates request counts and workload mix)
declare them here instead of stretching the page-read metric list.
Version-1 records migrate forward with an empty policy map, which
leaves the classic defaults below in charge.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

from repro.experiments.config import BENCH_SCALE
from repro.experiments.metrics import MeasuredRun
from repro.storage.records import PAGE_SIZE

#: Bump on any backward-incompatible change to the JSON layout; add a
#: migration in :func:`_migrate` alongside.
SCHEMA_VERSION = 2

#: Metrics whose values are fully determined by the dataset seed.  The
#: comparator holds these to an exact-match policy; everything else
#: (wall times) is noise-smoothed and tolerance-compared.
DETERMINISTIC_METRICS = ("io_total", "index_reads", "data_reads", "index_pages")

#: Wall-time metrics (noise-aware comparison).
TIMING_METRICS = ("elapsed_s",)

# -- metric policies (schema v2) ---------------------------------------
#: Deterministic: any increase is a gated regression, any decrease an
#: improvement; no tolerance.
POLICY_EXACT = "exact"
#: Lower is better; relative tolerance; advisory unless time-gating.
POLICY_TIME = "time"
#: Higher is better; relative tolerance; advisory unless time-gating.
POLICY_RATE = "rate"
#: Recorded for history/reporting only; the comparator skips it.
POLICY_INFO = "info"
#: Pinned: *any* difference from the baseline is a gated mismatch.
#: For quantities with no better/worse direction — request counts, a
#: workload mix, a seed — where drift in either direction means the
#: deterministic contract broke.
POLICY_PIN = "pin"

POLICIES = (POLICY_EXACT, POLICY_TIME, POLICY_RATE, POLICY_INFO, POLICY_PIN)


def default_metric_policies() -> dict[str, str]:
    """The classic pre-v2 policy assignment (page counts + wall time)."""
    policies = {metric: POLICY_EXACT for metric in DETERMINISTIC_METRICS}
    policies.update({metric: POLICY_TIME for metric in TIMING_METRICS})
    return policies


def git_sha(short: bool = True) -> str:
    """The current git commit, or ``"unknown"`` outside a checkout."""
    cmd = ["git", "rev-parse"] + (["--short", "HEAD"] if short else ["HEAD"])
    try:
        out = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_fingerprint(dataset_seed: Optional[int] = None) -> dict:
    """Everything that could legitimately change a measurement.

    Two records with different fingerprints are still comparable on
    deterministic metrics (page reads depend only on the seed), but the
    comparator annotates wall-time verdicts when the platform differs.
    """
    return {
        "git_sha": git_sha(),
        "date_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "page_size": PAGE_SIZE,
        "bench_scale": BENCH_SCALE,
        "dataset_seed": dataset_seed,
    }


@dataclass
class BenchEntry:
    """One (configuration, method) measurement inside a record."""

    config: str  # the configuration label (ExperimentConfig.label())
    method: str
    x: Optional[float]  # swept parameter value, None for single configs
    metrics: dict[str, float] = field(default_factory=dict)
    io_breakdown: dict[str, int] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    elapsed_samples: list[float] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        """The identity the comparator joins baseline/current rows on."""
        return (self.config, self.method)

    @classmethod
    def from_run(cls, run: MeasuredRun) -> "BenchEntry":
        import math

        return cls(
            config=run.config_label,
            method=run.method,
            x=None if math.isnan(run.x) else run.x,
            metrics={
                "io_total": float(run.io_total),
                "index_reads": float(run.index_reads()),
                "data_reads": float(run.data_reads()),
                "index_pages": float(run.index_pages),
                "elapsed_s": run.elapsed_s,
            },
            io_breakdown=dict(run.io_breakdown),
            phases={name: dict(row) for name, row in run.phases.items()},
            elapsed_samples=list(run.elapsed_samples) or [run.elapsed_s],
        )

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "method": self.method,
            "x": self.x,
            "metrics": self.metrics,
            "io_breakdown": self.io_breakdown,
            "phases": self.phases,
            "elapsed_samples": self.elapsed_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchEntry":
        return cls(
            config=data["config"],
            method=data["method"],
            x=data.get("x"),
            metrics=dict(data.get("metrics", {})),
            io_breakdown=dict(data.get("io_breakdown", {})),
            phases={k: dict(v) for k, v in data.get("phases", {}).items()},
            elapsed_samples=list(data.get("elapsed_samples", [])),
        )


@dataclass
class BenchRecord:
    """One recorded execution of a named benchmark suite."""

    suite: str
    repeats: int
    environment: dict = field(default_factory=dict)
    entries: list[BenchEntry] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION
    #: Per-metric comparator policy overrides (see ``POLICY_*``).  Empty
    #: means the classic defaults: page counts exact, wall times timed.
    metric_policies: dict[str, str] = field(default_factory=dict)

    def by_key(self) -> dict[tuple[str, str], BenchEntry]:
        return {entry.key: entry for entry in self.entries}

    def methods(self) -> list[str]:
        seen: list[str] = []
        for entry in self.entries:
            if entry.method not in seen:
                seen.append(entry.method)
        return seen

    def totals(self, metric: str) -> dict[str, float]:
        """Per-method sum of ``metric`` across every configuration —
        the scalar trajectory the history module tracks."""
        out: dict[str, float] = {}
        for entry in self.entries:
            out[entry.method] = out.get(entry.method, 0.0) + entry.metrics.get(
                metric, 0.0
            )
        return out

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "repeats": self.repeats,
            "environment": self.environment,
            "metric_policies": self.metric_policies,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dumps(), encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        data = _migrate(data)
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported benchmark schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        policies = dict(data.get("metric_policies", {}))
        unknown = sorted(
            policy for policy in set(policies.values()) if policy not in POLICIES
        )
        if unknown:
            raise ValueError(
                f"unknown metric policy {', '.join(map(repr, unknown))}; "
                f"expected one of {', '.join(POLICIES)}"
            )
        return cls(
            suite=data["suite"],
            repeats=int(data.get("repeats", 1)),
            environment=dict(data.get("environment", {})),
            entries=[BenchEntry.from_dict(e) for e in data.get("entries", [])],
            schema_version=version,
            metric_policies=policies,
        )

    @classmethod
    def loads(cls, text: str) -> "BenchRecord":
        return cls.from_dict(json.loads(text))

    @classmethod
    def read(cls, path: Union[str, Path]) -> "BenchRecord":
        return cls.loads(Path(path).read_text(encoding="utf-8"))


def _migrate(data: dict) -> dict:
    """Migrate an older schema's dict forward to :data:`SCHEMA_VERSION`.

    Upgrades chain (1 -> 2 -> ...), so a committed baseline written by
    any earlier build stays readable forever.
    """
    if data.get("schema_version") == 1:
        # v1 -> v2: records gained an explicit metric-policy map.  An
        # empty map keeps the classic defaults (page counts exact, wall
        # times tolerance-compared) in force, which is exactly what v1
        # records meant implicitly.
        data = dict(data)
        data["schema_version"] = 2
        data.setdefault("metric_policies", {})
    return data
