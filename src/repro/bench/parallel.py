"""The ``parallel`` benchmark suite: the execution engine's scaling.

One configuration, every method, a ladder of worker counts.  Two things
are measured and one thing is *enforced*:

* **measured** — the realised wall time per (method, workers) point and
  the derived speedup over the same engine at one worker.  The engine
  runs with ``realize_latency=True``, i.e. each task sleeps out the
  simulated page-read latency of the reads it performed, so concurrent
  tasks overlap their I/O waits exactly as a disk-bound system would —
  the speedup is genuine wall-clock, not bookkeeping;
* **enforced** — determinism: at every worker count the selected
  location, the full ``dr`` vector (bit for bit), ``io_total`` and the
  per-structure read split must equal the one-worker run.  The recorder
  raises on any deviation, so a scheduling-dependent charge can never
  produce a plausible-looking record.

The gate (``mindist bench compare``) then holds the recorded
``io_total`` / ``index_reads`` / ``data_reads`` of every point to the
committed baseline exactly — worker count is part of the entry key
(``method@wN``), so a change that makes parallel I/O drift from serial
I/O fails CI even if both drift together.

The configuration is larger than the ``micro`` suite's (the client
trees must be deep enough that the join frontier leaves real I/O inside
the tasks) and the simulated latency is raised to 3 ms/page so the
I/O-bound regime — the one the engine accelerates — dominates the
single-CPU Python overhead.
"""

from __future__ import annotations

import statistics
from typing import Callable, Optional, Sequence

import numpy as np

from repro.bench.record import BenchEntry, BenchRecord, environment_fingerprint
from repro.core import Workspace, make_selector
from repro.exec import QueryEngine
from repro.experiments.config import ExperimentConfig
from repro.experiments.smoke import SMOKE_METHODS
from repro.obs import InMemorySink, Tracer, phase_breakdown

#: The suite's configuration: deep enough client trees (height 3 at the
#: default page size) that the join methods' frontier tasks carry most
#: of the traversal I/O.
PARALLEL_CONFIG = ExperimentConfig(n_c=15_000, n_f=750, n_p=750)

#: Simulated latency per page read while recording this suite (the
#: workspace default is 1 ms; see module docstring).
PARALLEL_IO_LATENCY_S = 3e-3

#: Frontier size the engine aims for; fixed here so the recorded float
#: groupings and trace shapes are stable across machines.
PARALLEL_TASK_TARGET = 16

#: Worker counts measured by default.
DEFAULT_WORKER_LADDER = (1, 2, 4)


def worker_ladder(max_workers: Optional[int]) -> tuple[int, ...]:
    """Powers of two up to ``max_workers`` (always including it)."""
    if max_workers is None:
        return DEFAULT_WORKER_LADDER
    if max_workers < 1:
        raise ValueError("workers must be >= 1")
    ladder = []
    w = 1
    while w < max_workers:
        ladder.append(w)
        w *= 2
    ladder.append(max_workers)
    return tuple(ladder)


def run_parallel_suite(
    repeats: int = 3,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> BenchRecord:
    """Record one execution of the ``parallel`` suite.

    ``workers`` stretches the ladder (e.g. 8 measures 1/2/4/8); the
    default ladder is :data:`DEFAULT_WORKER_LADDER`.  Raises on any
    determinism violation (see module docstring).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chosen = tuple(methods) if methods is not None else SMOKE_METHODS
    ladder = worker_ladder(workers)
    config = PARALLEL_CONFIG
    label = config.label()

    record = BenchRecord(
        suite="parallel",
        repeats=repeats,
        environment=environment_fingerprint(dataset_seed=config.seed),
    )
    workspace = Workspace(config.instance(), io_latency_s=PARALLEL_IO_LATENCY_S)
    engines = {
        w: QueryEngine(
            workspace,
            workers=w,
            executor="thread",
            realize_latency=True,
            task_target=PARALLEL_TASK_TARGET,
        )
        for w in ladder
    }
    try:
        for name in chosen:
            reference = None  # the one-worker point every ladder step must match
            base_elapsed = None
            for w in ladder:
                if progress is not None:
                    progress(f"running {label} {name} workers={w} ...")
                engine = engines[w]
                selector = make_selector(workspace, name)
                samples: list[float] = []
                result = None
                for __ in range(repeats):
                    r = engine.run(selector)
                    if result is not None and r.io_total != result.io_total:
                        raise AssertionError(
                            f"{name}@w{w}: page reads differ across repeats "
                            f"({result.io_total} vs {r.io_total})"
                        )
                    result = r
                    samples.append(r.elapsed_s)
                assert result is not None
                dr_vector = selector.distance_reductions()
                point = {
                    "location": result.location.sid,
                    "dr": result.dr,
                    "io_total": result.io_total,
                    "io_reads": dict(result.io_reads),
                }
                if reference is None:
                    reference = point
                    reference["dr_vector"] = dr_vector
                else:
                    mismatches = [
                        k
                        for k in ("location", "dr", "io_total", "io_reads")
                        if point[k] != reference[k]
                    ]
                    dr_matches = np.array_equal(dr_vector, reference["dr_vector"])
                    if mismatches or not dr_matches:
                        raise AssertionError(
                            f"{name}@w{w} diverges from the one-worker run "
                            f"on {mismatches or ['dr_vector']} — parallel "
                            "execution must be deterministic"
                        )
                # One additional profiled run for the per-phase breakdown
                # (kept out of the timing samples).
                sink = InMemorySink()
                workspace.attach_tracer(Tracer([sink]))
                try:
                    profiled = engine.run(selector)
                finally:
                    workspace.detach_tracer()
                assert sink.last is not None
                phases = phase_breakdown(sink.last)
                phase_reads = int(sum(row["page_reads"] for row in phases.values()))
                if phase_reads != profiled.io_total:
                    raise AssertionError(
                        f"{name}@w{w}: phase reads {phase_reads} != "
                        f"I/O total {profiled.io_total}"
                    )
                elapsed = statistics.median(samples)
                if w == ladder[0]:
                    base_elapsed = elapsed
                index_reads = sum(
                    pages
                    for source, pages in result.io_reads.items()
                    if source.startswith("R_")
                )
                record.entries.append(
                    BenchEntry(
                        config=label,
                        method=f"{name}@w{w}",
                        x=float(w),
                        metrics={
                            "io_total": float(result.io_total),
                            "index_reads": float(index_reads),
                            "data_reads": float(result.io_total - index_reads),
                            "index_pages": float(result.index_pages),
                            "elapsed_s": elapsed,
                            # Informational (not gated): wall-clock gain
                            # over the same engine at the ladder's base.
                            "speedup": base_elapsed / elapsed if elapsed > 0 else 0.0,
                        },
                        io_breakdown=dict(result.io_reads),
                        phases=phases,
                        elapsed_samples=samples,
                    )
                )
    finally:
        for engine in engines.values():
            engine.close()
    return record
