"""Named benchmark suites and the recorder that runs them.

A suite is a fixed list of (x, configuration) pairs plus the methods to
measure — the unit the regression gate operates on.  The registry holds:

* ``smoke`` — the CI gate: the single configuration of
  :mod:`repro.experiments.smoke`, where the paper's Fig. 10 ordering
  (MND I/O < SS I/O) already holds;
* ``micro`` — a seconds-fast single configuration for tests and quick
  local sanity checks (too small for the paper's ordering regime);
* ``fig10`` / ``fig11`` / ``fig12`` — scaled-down versions of the
  paper's cardinality sweeps (vary |C| / |F| / |P|), for tracking the
  comparative *curves* rather than one point.

:func:`run_suite` executes a suite through the profiled experiment
runner with median-of-k repeats, verifies the observability invariant
(per-phase reads sum to the I/O total) on every run, and returns a
schema-versioned :class:`~repro.bench.record.BenchRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Union

from repro.bench.record import BenchEntry, BenchRecord, environment_fingerprint
from repro.core import Workspace
from repro.experiments.config import PAPER_SWEEPS, ExperimentConfig
from repro.experiments.runner import run_config
from repro.experiments.smoke import (
    SMOKE_CONFIG,
    SMOKE_METHODS,
    check_phase_attribution,
)

#: Default number of repeats per (config, method): page reads are
#: deterministic, so the repeats exist purely to median-smooth wall
#: times; three is enough to drop one outlier.
DEFAULT_REPEATS = 3

#: Scale applied to the paper's Table IV sweep values for the fig*
#: suites — small enough that a whole sweep records in a couple of
#: minutes of pure Python, large enough that the trees have depth and
#: the comparative shapes survive.
SWEEP_SUITE_SCALE = 0.02


@dataclass(frozen=True)
class Suite:
    """A named, fixed list of configurations to measure.

    A suite with a ``runner`` is self-recording: :func:`run_suite`
    delegates to it instead of the generic per-config loop (used by the
    ``parallel`` suite, whose unit of measurement is a worker count, not
    a configuration).
    """

    name: str
    description: str
    configs: tuple[tuple[Optional[float], ExperimentConfig], ...]
    methods: tuple[str, ...] = SMOKE_METHODS
    runner: Optional[Callable[..., BenchRecord]] = None

    def seed(self) -> Optional[int]:
        """The dataset seed, when every configuration shares one."""
        seeds = {config.seed for _, config in self.configs}
        return seeds.pop() if len(seeds) == 1 else None


def _sweep_suite(
    name: str, description: str, parameter: str, scale: float = SWEEP_SUITE_SCALE
) -> Suite:
    base = ExperimentConfig().scaled(scale)
    configs = []
    for value in PAPER_SWEEPS[parameter]:
        scaled_value = max(2, int(value * scale))
        configs.append(
            (float(scaled_value), replace(base, **{parameter: scaled_value}))
        )
    return Suite(name=name, description=description, configs=tuple(configs))


def _builtin_suites() -> dict[str, Suite]:
    from repro.bench.churn import CHURN_MICRO, run_churn_suite
    from repro.bench.kernels import KERNELS_CONFIGS, run_kernels_suite
    from repro.bench.loadgen import LOADGEN_DATASET, run_loadgen_suite
    from repro.bench.parallel import PARALLEL_CONFIG, run_parallel_suite
    from repro.bench.scale import SCALE_RUNGS, config_for_rung, run_scale_suite
    from repro.bench.service import SERVICE_CONFIG, run_service_suite
    from repro.bench.shard import SHARD_CONFIG, run_shard_suite

    return {
        "churn": Suite(
            name="churn",
            description="write path under load: incremental maintenance "
            "speedup vs per-mutation rebuild (>= 10x and rebuild "
            "parity enforced) plus a warm-cache service stream "
            "(>= 50% select hit rate enforced)",
            configs=((None, CHURN_MICRO),),
            runner=run_churn_suite,
        ),
        "kernels": Suite(
            name="kernels",
            description="columnar kernel speedup vs the scalar backend, "
            "bitwise result parity enforced",
            configs=tuple(
                (float(config.n_c), config) for config in KERNELS_CONFIGS
            ),
            runner=run_kernels_suite,
        ),
        "loadgen": Suite(
            name="loadgen",
            description="load generator vs the query service: closed + "
            "open loop SLOs, plan fidelity and zero protocol "
            "errors enforced",
            configs=((None, LOADGEN_DATASET),),
            runner=run_loadgen_suite,
        ),
        "parallel": Suite(
            name="parallel",
            description="execution-engine scaling: every method at a "
            "ladder of worker counts, determinism enforced",
            configs=((None, PARALLEL_CONFIG),),
            runner=run_parallel_suite,
        ),
        "scale": Suite(
            name="scale",
            description="storage backends (file / mmap / mmap+columnar) "
            "at client-count rungs, bitwise result parity "
            "vs memory enforced",
            configs=tuple((float(n), config_for_rung(n)) for n in SCALE_RUNGS),
            runner=run_scale_suite,
        ),
        "service": Suite(
            name="service",
            description="query service over the wire: cold/cached/"
            "batched selections, parity enforced",
            configs=((None, SERVICE_CONFIG),),
            runner=run_service_suite,
        ),
        "shard": Suite(
            name="shard",
            description="scatter-gather at 1/2/4 shards plus a TCP "
            "coordinator pass, byte-identical merge vs the "
            "serial tile-order reference enforced",
            configs=((None, SHARD_CONFIG),),
            runner=run_shard_suite,
        ),
        "smoke": Suite(
            name="smoke",
            description="CI regression gate: the smoke config "
            "(Fig. 10 regime, all four methods)",
            configs=((None, SMOKE_CONFIG),),
        ),
        "micro": Suite(
            name="micro",
            description="seconds-fast single config for tests and quick checks",
            configs=((None, ExperimentConfig(n_c=2_000, n_f=100, n_p=100)),),
        ),
        "fig10": _sweep_suite(
            "fig10", "scaled-down Fig. 10 sweep (vary |C|)", "n_c"
        ),
        "fig11": _sweep_suite(
            "fig11", "scaled-down Fig. 11 sweep (vary |F|)", "n_f"
        ),
        "fig12": _sweep_suite(
            "fig12", "scaled-down Fig. 12 sweep (vary |P|)", "n_p"
        ),
    }


SUITES: dict[str, Suite] = _builtin_suites()


def suite_names() -> list[str]:
    return sorted(SUITES)


def get_suite(name: str) -> Suite:
    try:
        return SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; available: {', '.join(suite_names())}"
        ) from None


def run_suite(
    suite: Union[str, Suite],
    repeats: int = DEFAULT_REPEATS,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    rungs: Optional[Sequence[int]] = None,
) -> BenchRecord:
    """Record one execution of ``suite``.

    Each configuration's workspace is built once (dataset generation and
    index construction stay out of the measured window) and every method
    is run ``repeats`` times on it; per-phase I/O attribution is checked
    against the I/O totals so a tracing regression can never produce a
    plausible-looking record.

    ``workers`` is only meaningful for suites with their own runner
    (``parallel``, where it stretches the worker ladder); ``rungs``
    only for the ``scale`` suite, where it overrides the client-count
    ladder (CI records the smallest rung only).
    """
    if isinstance(suite, str):
        suite = get_suite(suite)
    if rungs is not None and suite.name != "scale":
        raise ValueError(f"suite {suite.name!r} does not take a rung ladder")
    if suite.runner is not None:
        kwargs = {} if rungs is None else {"rungs": rungs}
        return suite.runner(
            repeats=repeats, methods=methods, progress=progress, workers=workers,
            **kwargs,
        )
    if workers is not None:
        raise ValueError(f"suite {suite.name!r} does not take a worker count")
    chosen = tuple(methods) if methods is not None else suite.methods

    record = BenchRecord(
        suite=suite.name,
        repeats=repeats,
        environment=environment_fingerprint(dataset_seed=suite.seed()),
    )
    for x, config in suite.configs:
        if progress is not None:
            progress(f"running {config.label()} ({', '.join(chosen)}) ...")
        workspace = Workspace(config.instance())
        runs = run_config(
            config,
            methods=chosen,
            x=x,
            workspace=workspace,
            profile=True,
            repeats=repeats,
        )
        check_phase_attribution(runs)
        record.entries.extend(BenchEntry.from_run(run) for run in runs)
    return record
