"""The ``shard`` benchmark suite: scatter-gather at a shard ladder.

One partitioned configuration, every method, at 1 / 2 / 4 shards —
the unit of measurement is the shard count, so entries are named
``METHOD@kN`` (the convention the ``parallel`` suite established for
worker counts).  Per entry:

* **gated** — ``io_total`` / ``index_reads`` / ``data_reads`` /
  ``index_pages``: the sum of the per-tile page reads, identical at
  every shard count by construction (the tiles are the same; only their
  placement changes) and deterministic given the dataset seed, so the
  comparator holds them to the committed baseline exactly;
* **advisory** — ``elapsed_s``: the median scatter-gather wall time
  (tolerance-compared, like every wall time in the gate);
* **enforced at record time** — the merged answer at every shard count
  (location, the *full* ``dr`` vector bit for bit, I/O total,
  per-structure read split) must equal the serial tile-order reference;
  the recorder raises on the first deviation, so a merge-order bug can
  never produce a plausible-looking record.

One extra informational ``coordinator`` row then drives the same
partition through real shard servers and a real
:class:`~repro.shard.coordinator.ShardCoordinator` over TCP — every
wire answer held to the same reference — and reports the fan-out
round-trip time.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.bench.record import BenchEntry, BenchRecord, environment_fingerprint
from repro.core import Workspace
from repro.experiments.config import ExperimentConfig
from repro.experiments.smoke import SMOKE_METHODS

#: The suite's configuration: ``micro``-sized on purpose — merge-order
#: determinism and the per-tile page-read sums gate at any size, and the
#: four-method ladder re-runs every tile once per shard count.
SHARD_CONFIG = ExperimentConfig(n_c=2_000, n_f=100, n_p=100)

#: Fixed tile count — independent of the shard ladder, which is the
#: whole point: K only changes tile placement, never tile content.
SHARD_TILES = 4

#: The shard counts measured (every divisor-ish rung of the tile count).
SHARD_LADDER = (1, 2, 4)


def _fingerprint(result) -> tuple:
    return (
        result.location.sid,
        result.location.x,
        result.location.y,
        result.dr,
        result.io_total,
        dict(result.io_reads),
        result.index_pages,
    )


def run_shard_suite(
    repeats: int = 3,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> BenchRecord:
    """Record one execution of the ``shard`` suite.

    ``workers`` sets the per-shard engine worker count (default 1; the
    determinism contract makes the merged answer independent of it).
    Raises on any parity violation (see module docstring).
    """
    from repro.service import ServiceClient, ServiceConfig, serve_in_thread
    from repro.shard.coordinator import (
        ShardSpec,
        ShardTopology,
        serve_coordinator_in_thread,
        tile_workspace_name,
    )
    from repro.shard.executor import (
        ScatterGatherExecutor,
        assign_tiles,
        serial_reference,
    )
    from repro.shard.merge import merged_distance_reductions
    from repro.shard.partition import partition_workspace

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chosen = tuple(methods) if methods is not None else SMOKE_METHODS
    config = SHARD_CONFIG
    label = config.label()
    per_shard_workers = workers if workers is not None else 1

    workspace = Workspace(config.instance())
    partition = partition_workspace(workspace, SHARD_TILES)

    # The serial tile-order reference every shard count must reproduce.
    expected: dict[str, tuple] = {}
    expected_dr: dict[str, np.ndarray] = {}
    for name in chosen:
        reference = serial_reference(
            partition, name, workers=per_shard_workers
        )
        expected[name] = _fingerprint(reference)
        executor = ScatterGatherExecutor(
            partition, n_shards=1, workers_per_shard=per_shard_workers
        )
        expected_dr[name] = merged_distance_reductions(executor.scatter(name))

    record = BenchRecord(
        suite="shard",
        repeats=repeats,
        environment=environment_fingerprint(dataset_seed=config.seed),
    )
    for name in chosen:
        for n_shards in SHARD_LADDER:
            if progress is not None:
                progress(f"running {label} {name} at k={n_shards} ...")
            executor = ScatterGatherExecutor(
                partition,
                n_shards=n_shards,
                workers_per_shard=per_shard_workers,
            )
            samples: list[float] = []
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                partials = executor.scatter(name)
                merged = executor.run(name)
                samples.append(time.perf_counter() - t0)
                if _fingerprint(merged) != expected[name]:
                    raise AssertionError(
                        f"{name}@k{n_shards}: merged answer diverges from "
                        "the serial tile-order reference — the shard merge "
                        "must be answer-transparent"
                    )
                dr = merged_distance_reductions(partials)
                if not np.array_equal(dr, expected_dr[name]):
                    raise AssertionError(
                        f"{name}@k{n_shards}: merged dr vector is not "
                        "byte-identical to the serial reference"
                    )
                result = merged
            assert result is not None
            index_reads = sum(
                pages
                for source, pages in result.io_reads.items()
                if source.startswith("R_")
            )
            record.entries.append(
                BenchEntry(
                    config=label,
                    method=f"{name}@k{n_shards}",
                    x=float(n_shards),
                    metrics={
                        "io_total": float(result.io_total),
                        "index_reads": float(index_reads),
                        "data_reads": float(result.io_total - index_reads),
                        "index_pages": float(result.index_pages),
                        "elapsed_s": statistics.median(samples),
                    },
                    io_breakdown=dict(result.io_reads),
                    elapsed_samples=samples,
                )
            )

    # Informational row: the same answers through a real coordinator.
    if progress is not None:
        progress(f"running {label} TCP coordinator pass ...")
    groups = assign_tiles(SHARD_TILES, 2)
    handles = []
    try:
        for group in groups:
            workspaces = {
                tile_workspace_name(t): partition.tiles[t] for t in group
            }
            handles.append(
                serve_in_thread(
                    workspaces, ServiceConfig(workers=per_shard_workers)
                )
            )
        topology = ShardTopology(
            plan=partition.plan,
            potentials=tuple(partition.potentials),
            shards=tuple(
                ShardSpec(f"shard-{i}", handle.host, handle.port, group)
                for i, (group, handle) in enumerate(zip(groups, handles))
            ),
        )
        coordinator = serve_coordinator_in_thread(topology)
        try:
            with ServiceClient(coordinator.host, coordinator.port) as client:
                t0 = time.perf_counter()
                for name in chosen:
                    answer = client.select(name, no_cache=True)
                    if _fingerprint(answer.result) != expected[name]:
                        raise AssertionError(
                            f"{name}: coordinator wire answer diverges from "
                            "the serial tile-order reference"
                        )
                wall_s = time.perf_counter() - t0
        finally:
            coordinator.stop()
    finally:
        for handle in handles:
            handle.stop()
    record.entries.append(
        BenchEntry(
            config=label,
            method="coordinator",
            x=None,
            metrics={
                # All informational: the comparator gates only the
                # metric names it knows.
                "requests": float(len(chosen)),
                "wall_s": wall_s,
                "qps": len(chosen) / wall_s if wall_s > 0 else 0.0,
                "shards": 2.0,
                "tiles": float(SHARD_TILES),
            },
        )
    )
    return record
