"""The benchmark history: an append-only JSON-lines trajectory.

Every recorded suite execution appends one compact line to
``benchmarks/history.jsonl`` — suite, timestamp, git SHA and the
per-method totals of each tracked metric (summed across the suite's
configurations, so multi-config sweeps contribute one scalar per
method per metric).  The renderers turn that trajectory into an ASCII
sparkline table (terminals) or a markdown summary (CI artifacts), so
the repo's performance history is inspectable without external tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.bench.record import POLICY_INFO, BenchRecord

#: Default history location, relative to the repo root.
DEFAULT_HISTORY_PATH = Path("benchmarks") / "history.jsonl"

#: Metrics tracked in history rows (per-method totals across configs)
#: for records without their own metric-policy declaration.
HISTORY_METRICS = ("io_total", "index_reads", "data_reads", "elapsed_s")

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _tracked_metrics(record: BenchRecord) -> tuple[str, ...]:
    """Which metrics a record's history row carries.

    Records that declare schema-v2 metric policies (e.g. the ``loadgen``
    suite, whose quantities are request counts and SLO rates, not page
    reads) track every non-``info`` metric they declared; classic
    records track the page-count/wall-time set.
    """
    if record.metric_policies:
        return tuple(
            sorted(
                metric
                for metric, policy in record.metric_policies.items()
                if policy != POLICY_INFO
            )
        )
    return HISTORY_METRICS


def history_row(record: BenchRecord) -> dict:
    """Flatten a record to the one-line shape stored in the history."""
    return {
        "schema_version": record.schema_version,
        "suite": record.suite,
        "date_utc": record.environment.get("date_utc"),
        "git_sha": record.environment.get("git_sha"),
        "python": record.environment.get("python"),
        "repeats": record.repeats,
        "methods": {
            method: {
                metric: record.totals(metric).get(method, 0.0)
                for metric in _tracked_metrics(record)
            }
            for method in record.methods()
        },
    }


def append_history(
    record: BenchRecord, path: Union[str, Path] = DEFAULT_HISTORY_PATH
) -> Path:
    """Append ``record``'s history row; creates the file if absent."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as stream:
        stream.write(json.dumps(history_row(record), sort_keys=True) + "\n")
    return path


def load_history(
    path: Union[str, Path] = DEFAULT_HISTORY_PATH,
    suite: Optional[str] = None,
) -> list[dict]:
    """All history rows (oldest first), optionally for one suite.

    Unparseable lines are skipped rather than fatal: the history is
    append-only across many tool versions and a single corrupt line
    must not take down trend reporting.
    """
    path = Path(path)
    if not path.exists():
        return []
    rows: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(row, dict):
            continue
        if suite is not None and row.get("suite") != suite:
            continue
        rows.append(row)
    return rows


def sparkline(values: Sequence[float]) -> str:
    """Render ``values`` as a fixed-height unicode sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(top, int((v - lo) / span * top))] for v in values
    )


def _series(
    rows: Sequence[dict], method: str, metric: str
) -> list[Optional[float]]:
    out: list[Optional[float]] = []
    for row in rows:
        value = row.get("methods", {}).get(method, {}).get(metric)
        out.append(float(value) if value is not None else None)
    return out


def _methods_in(rows: Sequence[dict]) -> list[str]:
    seen: list[str] = []
    for row in rows:
        for method in row.get("methods", {}):
            if method not in seen:
                seen.append(method)
    return seen


def _fmt(value: Optional[float], metric: str) -> str:
    if value is None:
        return "-"
    if metric.startswith(("io_", "index_", "data_")):
        return f"{value:g}"
    return f"{value:.3f}"


def trend_report(
    rows: Sequence[dict],
    metrics: Sequence[str] = ("io_total", "elapsed_s"),
    last: int = 20,
) -> str:
    """An ASCII trend table: one sparkline per method x metric.

    ``rows`` is the output of :func:`load_history` (one suite); the
    report covers the most recent ``last`` entries.
    """
    if not rows:
        return "history is empty — record a run with `mindist bench run`"
    rows = list(rows)[-last:]
    suite = rows[-1].get("suite", "?")
    lines = [
        f"suite {suite}: {len(rows)} run(s), "
        f"{rows[0].get('git_sha', '?')} .. {rows[-1].get('git_sha', '?')}"
    ]
    width = max(len(m) for m in _methods_in(rows)) if _methods_in(rows) else 4
    for metric in metrics:
        lines.append("")
        lines.append(f"{metric}:")
        for method in _methods_in(rows):
            series = _series(rows, method, metric)
            present = [v for v in series if v is not None]
            if not present:
                continue
            first, latest = present[0], present[-1]
            change = ""
            if first:
                change = f" ({(latest - first) / first:+.1%})"
            lines.append(
                f"  {method:>{width}}  {sparkline(present)}  "
                f"{_fmt(first, metric)} -> {_fmt(latest, metric)}{change}"
            )
    return "\n".join(lines)


def markdown_summary(
    rows: Sequence[dict],
    metrics: Sequence[str] = ("io_total", "elapsed_s"),
    last: int = 20,
) -> str:
    """The same trajectory as a markdown table (for CI artifacts)."""
    if not rows:
        return "_history is empty_\n"
    rows = list(rows)[-last:]
    suite = rows[-1].get("suite", "?")
    out = [
        f"## Benchmark trend — suite `{suite}`",
        "",
        f"{len(rows)} run(s), `{rows[0].get('git_sha', '?')}` .. "
        f"`{rows[-1].get('git_sha', '?')}` "
        f"(latest: {rows[-1].get('date_utc', '?')})",
        "",
        "| method | metric | trend | first | latest | change |",
        "|---|---|---|---:|---:|---:|",
    ]
    for metric in metrics:
        for method in _methods_in(rows):
            series = [v for v in _series(rows, method, metric) if v is not None]
            if not series:
                continue
            first, latest = series[0], series[-1]
            change = f"{(latest - first) / first:+.1%}" if first else "n/a"
            out.append(
                f"| {method} | {metric} | `{sparkline(series)}` | "
                f"{_fmt(first, metric)} | {_fmt(latest, metric)} | {change} |"
            )
    out.append("")
    return "\n".join(out)
