"""The ``service`` benchmark suite: selections served over the wire.

One configuration, every method, measured *through* the query service —
a real :class:`~repro.service.server.QueryService` on an ephemeral TCP
port, driven by :class:`~repro.service.client.ServiceClient`.  Three
facets per method, one enforcement:

* **cold** — the gated facet: a cache-bypassing selection over the
  wire.  Its page reads (``io_total`` / ``index_reads`` /
  ``data_reads`` / ``index_pages``) are fully deterministic given the
  dataset seed and must match the committed baseline exactly; its
  round-trip wall time is recorded as ``elapsed_s`` (tolerance-compared,
  advisory);
* **cached** — the same request repeated: every repeat must be a cache
  hit, and its latency is recorded as ``cached_latency_s``
  (informational — the comparator ignores metric names it does not
  know), alongside ``p50_s`` / ``p99_s`` percentiles of the cache-hit
  round-trips across the whole suite on the ``pipeline`` row;
* **pipeline** — one extra informational row: a pipelined burst of
  cache-bypassing selections across all methods, coalesced by the
  server's micro-batcher, reported as realised ``qps``.

* **enforced** — wire parity: every result that comes back (cold,
  cached, batched) must equal — location, bit-for-bit ``dr``, I/O total
  and per-structure read split — the serial in-process ``select()`` on
  an identically-seeded workspace.  The recorder raises on the first
  deviation, so a framing or caching bug can never produce a
  plausible-looking record.

The gate (``mindist bench compare``) then holds every method's cold
page reads to the committed ``BENCH_service.json`` exactly; the
throughput numbers ride along as history, not policy.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Optional, Sequence

from repro.bench.record import BenchEntry, BenchRecord, environment_fingerprint
from repro.core import Workspace, make_selector
from repro.experiments.config import ExperimentConfig
from repro.experiments.smoke import SMOKE_METHODS

#: The suite's configuration: ``micro``-sized on purpose — the wire and
#: cache overheads being measured do not grow with the dataset, and the
#: cold page reads gate at any size.
SERVICE_CONFIG = ExperimentConfig(n_c=2_000, n_f=100, n_p=100)

#: Pipelined cache-bypassing selections per method in the burst row.
PIPELINE_ROUNDS = 3

#: Micro-batch window while recording (wide enough that a pipelined
#: burst reliably coalesces on a loaded CI machine).
SERVICE_BATCH_WINDOW_S = 0.02


def _fingerprint(result) -> tuple:
    return (
        result.location.sid,
        result.location.x,
        result.location.y,
        result.dr,
        result.io_total,
        dict(result.io_reads),
    )


def run_service_suite(
    repeats: int = 3,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> BenchRecord:
    """Record one execution of the ``service`` suite.

    ``workers`` sets the engine worker count inside the service (default
    2).  Raises on any wire-parity or cache-behaviour violation (see
    module docstring).
    """
    from repro.service import ServiceClient, ServiceConfig, serve_in_thread

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chosen = tuple(methods) if methods is not None else SMOKE_METHODS
    config = SERVICE_CONFIG
    label = config.label()

    # The serial in-process reference every wire answer must equal.
    reference = Workspace(config.instance())
    expected = {
        name: _fingerprint(make_selector(reference, name).select())
        for name in chosen
    }

    record = BenchRecord(
        suite="service",
        repeats=repeats,
        environment=environment_fingerprint(dataset_seed=config.seed),
    )
    service_config = ServiceConfig(
        workers=workers if workers is not None else 2,
        batch_window_s=SERVICE_BATCH_WINDOW_S,
    )
    served = Workspace(config.instance())
    cached_samples: list[float] = []
    with serve_in_thread({"default": served}, service_config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            for name in chosen:
                if progress is not None:
                    progress(f"running {label} {name} over the wire ...")
                # Cold facet: cache-bypassing round trips.
                cold: list[float] = []
                result = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    answer = client.select(name, no_cache=True)
                    cold.append(time.perf_counter() - t0)
                    if answer.cached:
                        raise AssertionError(
                            f"{name}: cache-bypassing request claimed a hit"
                        )
                    if _fingerprint(answer.result) != expected[name]:
                        raise AssertionError(
                            f"{name}: wire result diverges from the serial "
                            "in-process select() — the service must be "
                            "answer-transparent"
                        )
                    result = answer.result
                assert result is not None
                # Cached facet: prime once, then every repeat must hit.
                client.select(name)
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    answer = client.select(name)
                    cached_samples.append(time.perf_counter() - t0)
                    if not answer.cached:
                        raise AssertionError(
                            f"{name}: repeated request missed the result cache"
                        )
                    if _fingerprint(answer.result) != expected[name]:
                        raise AssertionError(
                            f"{name}: cached result diverges from select()"
                        )
                index_reads = sum(
                    pages
                    for source, pages in result.io_reads.items()
                    if source.startswith("R_")
                )
                record.entries.append(
                    BenchEntry(
                        config=label,
                        method=name,
                        x=None,
                        metrics={
                            "io_total": float(result.io_total),
                            "index_reads": float(index_reads),
                            "data_reads": float(result.io_total - index_reads),
                            "index_pages": float(result.index_pages),
                            "elapsed_s": statistics.median(cold),
                            # Informational (not gated): cache-hit latency.
                            "cached_latency_s": statistics.median(
                                cached_samples[-repeats:]
                            ),
                        },
                        io_breakdown=dict(result.io_reads),
                        elapsed_samples=cold,
                    )
                )

            # Pipeline row: a coalesced burst across all methods.
            if progress is not None:
                progress(f"running {label} pipelined burst ...")
            burst = list(chosen) * PIPELINE_ROUNDS
            t0 = time.perf_counter()
            answers = client.select_many(burst, no_cache=True)
            wall_s = time.perf_counter() - t0
            for name, answer in zip(burst, answers):
                if _fingerprint(answer.result) != expected[name]:
                    raise AssertionError(
                        f"{name}: batched result diverges from select()"
                    )
            cached_samples.sort()
            p50 = cached_samples[len(cached_samples) // 2]
            p99 = cached_samples[
                min(len(cached_samples) - 1, int(len(cached_samples) * 0.99))
            ]
            record.entries.append(
                BenchEntry(
                    config=label,
                    method="pipeline",
                    x=None,
                    metrics={
                        # All informational: the comparator gates only
                        # the metric names it knows.
                        "requests": float(len(burst)),
                        "wall_s": wall_s,
                        "qps": len(burst) / wall_s if wall_s > 0 else 0.0,
                        "p50_s": p50,
                        "p99_s": p99,
                        "max_batch": float(
                            max(a.batch_size or 1 for a in answers)
                        ),
                    },
                )
            )
    return record
