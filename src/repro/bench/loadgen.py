"""The ``loadgen`` benchmark suite: SLOs under generated load.

One ephemeral service instance (the same micro dataset as the
``service`` suite), two drives from :mod:`repro.loadgen` — a closed
loop (fixed client count, back-to-back requests) and an open loop
(Poisson arrivals at a target qps) — each with the default skewed
select/evaluate/update mix.  One :class:`~repro.bench.record.BenchEntry`
per mode, with schema-v2 metric policies splitting the record into:

* **pinned** (gated, any drift fails) — the planned request counts and
  workload mix: ``requests``, ``warmup_requests``, per-op counts,
  per-method select counts, the plan ``seed`` and ``zipf_alpha``.  The
  schedule is a pure function of ``(config, seed)`` and the runner
  enforces plan fidelity, so these are exactly reproducible — a
  mismatch means the generator's determinism contract broke;
* **time** (tolerance-compared, advisory) — ``p50_s`` / ``p99_s`` /
  ``p999_s`` request latency percentiles;
* **rate** (tolerance-compared, advisory, higher is better) —
  realised ``qps`` and the client-observed ``cache_hit_rate``;
* **info** (history only) — pushback accounting: queue-full and
  deadline-miss rates, recovered retries, run duration, the server's
  own cache hit rate.

Two behaviours are *enforced* while recording, not just recorded: every
planned request must produce exactly one outcome (plan fidelity), and
the drive must complete with **zero protocol errors** — pushback
(``queue_full``, ``deadline_exceeded``) is legitimate under load, a
``bad_request``/``internal``/``connection`` error is a bug and the
recorder raises rather than writing a plausible-looking record.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.bench.record import (
    POLICY_INFO,
    POLICY_PIN,
    POLICY_RATE,
    POLICY_TIME,
    BenchEntry,
    BenchRecord,
    environment_fingerprint,
)
from repro.experiments.config import ExperimentConfig
from repro.loadgen.config import LoadgenConfig

#: The served dataset: the ``service`` suite's micro sizing — the SLOs
#: being measured (admission, batching, caching, wire overhead) do not
#: grow with the dataset, and the planned mix gates at any size.
LOADGEN_DATASET = ExperimentConfig(n_c=2_000, n_f=100, n_p=100)

#: Closed loop: 4 clients x (5 warmup + 25 measured) requests.
LOADGEN_CLOSED = LoadgenConfig(mode="closed", timeout_s=10.0)

#: Open loop: 150 qps Poisson arrivals, 0.4s ramp + 0.4s warmup +
#: 1.2s measured window.
LOADGEN_OPEN = LoadgenConfig(mode="open", timeout_s=10.0)

#: The drives recorded per suite execution, in record order.
LOADGEN_MODES = (LOADGEN_CLOSED, LOADGEN_OPEN)


def loadgen_metric_policies(
    methods: Sequence[str] = LOADGEN_CLOSED.methods,
) -> dict[str, str]:
    """The suite's schema-v2 metric -> policy declaration."""
    policies = {
        "requests": POLICY_PIN,
        "warmup_requests": POLICY_PIN,
        "selects": POLICY_PIN,
        "evaluates": POLICY_PIN,
        "updates": POLICY_PIN,
        "seed": POLICY_PIN,
        "zipf_alpha": POLICY_PIN,
        "p50_s": POLICY_TIME,
        "p99_s": POLICY_TIME,
        "p999_s": POLICY_TIME,
        "qps": POLICY_RATE,
        "cache_hit_rate": POLICY_RATE,
        "queue_full_rate": POLICY_INFO,
        "deadline_miss_rate": POLICY_INFO,
        "queue_full_retries": POLICY_INFO,
        "completed_ok": POLICY_INFO,
        "duration_s": POLICY_INFO,
        "server_cache_hit_rate": POLICY_INFO,
    }
    for method in methods:
        policies[f"selects_{method}"] = POLICY_PIN
    return policies


def loadgen_entry(config: LoadgenConfig, result) -> BenchEntry:
    """One mode's drive as a bench entry (see the module docstring for
    which metrics gate)."""
    stats = result.stats
    metrics = {
        "requests": float(stats.requests),
        "warmup_requests": float(stats.warmup_requests),
        "selects": float(stats.selects),
        "evaluates": float(stats.evaluates),
        "updates": float(stats.updates),
        "seed": float(config.seed),
        "zipf_alpha": float(config.zipf_alpha),
        "p50_s": stats.latency.p50_s,
        "p99_s": stats.latency.p99_s,
        "p999_s": stats.latency.p999_s,
        "qps": stats.throughput_qps,
        "cache_hit_rate": stats.cache_hit_rate,
        "queue_full_rate": stats.queue_full_rate,
        "deadline_miss_rate": stats.deadline_miss_rate,
        "queue_full_retries": float(stats.queue_full_retries),
        "completed_ok": float(stats.completed_ok),
        "duration_s": stats.duration_s,
    }
    for method in config.methods:
        metrics[f"selects_{method}"] = float(
            result.planned["selects_by_method"].get(method, 0)
        )
    server_rate = result.server_cache_hit_rate()
    if server_rate is not None:
        metrics["server_cache_hit_rate"] = server_rate
    return BenchEntry(
        config=config.label(),
        method=config.mode,
        x=None,
        metrics=metrics,
        elapsed_samples=[stats.duration_s],
    )


def run_loadgen_suite(
    repeats: int = 1,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> BenchRecord:
    """Record one execution of the ``loadgen`` suite.

    One drive already contains a hundred-plus latency samples per mode,
    so ``repeats`` is accepted for runner-protocol compatibility and
    recorded, but each mode is driven once.  ``workers`` sets the
    service's engine worker count (default 2).  Raises on any plan-
    fidelity or protocol-error violation (see module docstring).
    """
    from repro.loadgen.runner import run_loadgen, self_hosted

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    configs = LOADGEN_MODES
    if methods is not None:
        configs = tuple(c.with_methods(methods) for c in configs)

    record = BenchRecord(
        suite="loadgen",
        repeats=repeats,
        environment=environment_fingerprint(dataset_seed=LOADGEN_DATASET.seed),
        metric_policies=loadgen_metric_policies(configs[0].methods),
    )
    dataset = LOADGEN_DATASET
    with self_hosted(
        n_c=dataset.n_c,
        n_f=dataset.n_f,
        n_p=dataset.n_p,
        seed=dataset.seed,
        workers=workers if workers is not None else 2,
    ) as handle:
        for config in configs:
            if progress is not None:
                progress(f"driving {config.label()} ...")
            result = run_loadgen(config, handle.host, handle.port)
            if not result.plan_fidelity:
                raise AssertionError(
                    f"{config.mode}: planned "
                    f"{result.planned['requests'] + result.planned['warmup_requests']}"
                    f" requests but issued {result.issued} — the runner "
                    "dropped or duplicated work"
                )
            if result.stats.protocol_errors:
                raise AssertionError(
                    f"{config.mode}: {result.stats.protocol_errors} protocol "
                    f"error(s) during the drive ({result.stats.errors}) — "
                    "pushback is legitimate, protocol errors are bugs"
                )
            record.entries.append(loadgen_entry(config, result))
    return record
