"""Benchmark recording, regression gating and history (`repro.bench`).

The paper's contribution is a set of comparative cost curves; this
package keeps the reproduction honest about its own curves over time.
It layers on the observability of :mod:`repro.obs` and the experiment
harness of :mod:`repro.experiments`:

* :mod:`repro.bench.record` — the schema-versioned measurement record
  (``BENCH_<suite>.json``): per method/config I/O totals, index vs.
  data page splits, per-phase breakdowns, median-of-k wall times, and
  an environment fingerprint;
* :mod:`repro.bench.suites` — named suites (``smoke``, ``micro``,
  ``kernels``, ``parallel``, ``service``, ``loadgen``,
  ``fig10``/``fig11``/``fig12``) and the recorder that runs them;
* :mod:`repro.bench.compare` — policy-driven comparison (schema v2):
  exact/pinned policies for deterministic quantities (page counts,
  planned request mixes), relative tolerance for wall times and rates,
  structured improved/unchanged/regressed verdicts;
* :mod:`repro.bench.history` — the append-only JSON-lines trajectory
  (``benchmarks/history.jsonl``) and its sparkline/markdown reports.

Recording and gating in three lines::

    from repro.bench import run_suite, compare_records, BenchRecord

    baseline = BenchRecord.read("BENCH_smoke.json")
    report = compare_records(baseline, run_suite("smoke"))
    assert report.ok(), report.format()

The CLI front end is ``mindist bench run|compare|report|suites``.
"""

from __future__ import annotations

from repro.bench.compare import (
    DEFAULT_TIME_TOLERANCE,
    IMPROVED,
    MISSING,
    NEW,
    REGRESSED,
    UNCHANGED,
    ComparisonReport,
    Verdict,
    compare_records,
    resolve_policies,
)
from repro.bench.history import (
    DEFAULT_HISTORY_PATH,
    append_history,
    history_row,
    load_history,
    markdown_summary,
    sparkline,
    trend_report,
)
from repro.bench.loadgen import (
    LOADGEN_CLOSED,
    LOADGEN_DATASET,
    LOADGEN_MODES,
    LOADGEN_OPEN,
    loadgen_metric_policies,
    run_loadgen_suite,
)
from repro.bench.kernels import (
    KERNELS_CONFIGS,
    KERNELS_IO_LATENCY_S,
    TARGET_SPEEDUP,
    run_kernels_suite,
)
from repro.bench.parallel import (
    DEFAULT_WORKER_LADDER,
    PARALLEL_CONFIG,
    PARALLEL_IO_LATENCY_S,
    PARALLEL_TASK_TARGET,
    run_parallel_suite,
)
from repro.bench.scale import (
    SCALE_BACKENDS,
    SCALE_IO_LATENCY_S,
    SCALE_RUNGS,
    SCALE_TARGET_SPEEDUP,
    run_scale_suite,
)
from repro.bench.record import (
    DETERMINISTIC_METRICS,
    POLICIES,
    POLICY_EXACT,
    POLICY_INFO,
    POLICY_PIN,
    POLICY_RATE,
    POLICY_TIME,
    SCHEMA_VERSION,
    TIMING_METRICS,
    BenchEntry,
    BenchRecord,
    default_metric_policies,
    environment_fingerprint,
    git_sha,
)
from repro.bench.service import (
    PIPELINE_ROUNDS,
    SERVICE_BATCH_WINDOW_S,
    SERVICE_CONFIG,
    run_service_suite,
)
from repro.bench.suites import (
    DEFAULT_REPEATS,
    SUITES,
    Suite,
    get_suite,
    run_suite,
    suite_names,
)

__all__ = [
    "BenchEntry",
    "BenchRecord",
    "ComparisonReport",
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_REPEATS",
    "DEFAULT_TIME_TOLERANCE",
    "DEFAULT_WORKER_LADDER",
    "DETERMINISTIC_METRICS",
    "IMPROVED",
    "KERNELS_CONFIGS",
    "KERNELS_IO_LATENCY_S",
    "LOADGEN_CLOSED",
    "LOADGEN_DATASET",
    "LOADGEN_MODES",
    "LOADGEN_OPEN",
    "MISSING",
    "NEW",
    "PARALLEL_CONFIG",
    "PARALLEL_IO_LATENCY_S",
    "PARALLEL_TASK_TARGET",
    "PIPELINE_ROUNDS",
    "POLICIES",
    "POLICY_EXACT",
    "POLICY_INFO",
    "POLICY_PIN",
    "POLICY_RATE",
    "POLICY_TIME",
    "REGRESSED",
    "SCALE_BACKENDS",
    "SCALE_IO_LATENCY_S",
    "SCALE_RUNGS",
    "SCALE_TARGET_SPEEDUP",
    "SCHEMA_VERSION",
    "SERVICE_BATCH_WINDOW_S",
    "SERVICE_CONFIG",
    "SUITES",
    "Suite",
    "TARGET_SPEEDUP",
    "TIMING_METRICS",
    "UNCHANGED",
    "Verdict",
    "append_history",
    "compare_records",
    "default_metric_policies",
    "environment_fingerprint",
    "get_suite",
    "git_sha",
    "history_row",
    "load_history",
    "loadgen_metric_policies",
    "markdown_summary",
    "resolve_policies",
    "run_kernels_suite",
    "run_loadgen_suite",
    "run_parallel_suite",
    "run_scale_suite",
    "run_service_suite",
    "run_suite",
    "sparkline",
    "suite_names",
    "trend_report",
]
