"""The ``scale`` benchmark suite: storage backends at client-count rungs.

A ladder of dataset sizes (the *rungs*: 100K / 500K / 1M clients by
default), every method, three disk backends over the same persisted
workspace:

* ``file`` — v1 (packed-row) page files read through per-page
  ``pread`` syscalls, records decoded on every counted read;
* ``mmap`` — the same v1 files served as zero-copy views from one
  ``mmap`` each (:class:`~repro.storage.diskfile.MappedPageFile`);
* ``mmap+columnar`` — v2 (structure-of-arrays) files, mapped: pages
  *are* the column blocks the batch kernels consume, so a leaf read
  does no decode work at all (:mod:`repro.storage.soa`).

As with the ``kernels`` suite, two things are measured and one is
*enforced*:

* **measured** — wall time per (rung, method, backend), median of
  ``repeats``, with zero simulated page latency (the backends differ in
  CPU work per page, not in page counts; real wall time is the honest
  metric).  The ``mmap+columnar`` rows also record the advisory
  ``speedup`` over the ``file`` backend;
* **enforced** — exactness: for every (rung, method) all three backends
  must return the identical selected location, aggregate ``dr``, full
  ``dr`` vector (bit for bit), ``io_total`` and per-structure read
  split as the in-memory reference workspace — serial *and* under the
  engine with two worker threads.  The recorder raises on any
  deviation, so the zero-copy path can never drift from the reference
  semantics and still produce a plausible-looking record.

The gate pins ``io_total`` / ``index_reads`` / ``data_reads`` /
``index_pages`` of every row to the committed ``BENCH_scale.json``
exactly; ``elapsed_s`` and ``speedup`` stay advisory.  CI runs only the
smallest rung (``--rungs``) and compares in ``--subset`` mode, so the
committed full ladder gates without being re-timed on every push.
"""

from __future__ import annotations

import statistics
import tempfile
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from repro.bench.record import BenchEntry, BenchRecord, environment_fingerprint
from repro.core import Workspace, make_selector
from repro.core.diskmode import DiskWorkspace, persist_indexes
from repro.exec.engine import QueryEngine
from repro.experiments.config import ExperimentConfig
from repro.experiments.smoke import SMOKE_METHODS
from repro.storage.stats import IOStats

#: Client-count rungs of the default ladder (|F| and |P| stay fixed so
#: the rungs vary exactly one dimension, like the paper's Fig. 10).
SCALE_RUNGS: tuple[int, ...] = (100_000, 500_000, 1_000_000)

SCALE_N_F = 2_000
SCALE_N_P = 400

#: The three storage backends, in the order they appear in the record.
SCALE_BACKENDS = ("file", "mmap", "mmap+columnar")

#: Zero simulated latency: backend differences are CPU-per-page, and
#: page counts are enforced identical anyway.
SCALE_IO_LATENCY_S = 0.0

#: The floor asserted by CI on the committed record: at the largest
#: rung, the best per-method ``mmap+columnar`` speedup over ``file``
#: must reach this factor (see tests/bench/test_scale_suite.py).  The
#: index-join methods clear it; SS is scan-kernel-bound by design and
#: records its (near-1x) ratio honestly.
SCALE_TARGET_SPEEDUP = 2.0

#: Engine worker threads for the parallel parity check.
PARITY_WORKERS = 2


def config_for_rung(n_c: int) -> ExperimentConfig:
    """The dataset configuration of one rung."""
    return ExperimentConfig(n_c=n_c, n_f=SCALE_N_F, n_p=SCALE_N_P)


def _run_once(workspace, name: str):
    """One cold select: fresh decode, fresh accounting."""
    workspace.invalidate_leaf_cache()
    selector = make_selector(workspace, name)
    result = selector.select()
    return result, selector.distance_reductions()


def _check_parity(label, name, backend, mode, result, dr, ref, ref_dr):
    mismatches = [
        field
        for field, got, want in (
            ("location", result.location.sid, ref.location.sid),
            ("dr", result.dr, ref.dr),
            ("io_total", result.io_total, ref.io_total),
            ("io_reads", dict(result.io_reads), dict(ref.io_reads)),
            ("index_pages", result.index_pages, ref.index_pages),
        )
        if got != want
    ]
    if dr is not None and not np.array_equal(dr, ref_dr):
        mismatches.append("dr_vector")
    if mismatches:
        raise AssertionError(
            f"{label} {name} [{backend}, {mode}]: disk backend diverges "
            f"from the in-memory reference on {mismatches} — the storage "
            "fast path must be exact"
        )


def run_scale_suite(
    repeats: int = 2,
    methods: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    rungs: Optional[Sequence[int]] = None,
) -> BenchRecord:
    """Record one execution of the ``scale`` suite.

    ``rungs`` overrides the client-count ladder (CI passes the smallest
    rung only).  Raises on any backend/reference divergence.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if workers is not None:
        raise ValueError("suite 'scale' does not take a worker count")
    chosen = tuple(methods) if methods is not None else SMOKE_METHODS
    ladder = tuple(rungs) if rungs is not None else SCALE_RUNGS
    if not ladder or any(n <= 0 for n in ladder):
        raise ValueError(f"invalid rung ladder {ladder!r}")

    record = BenchRecord(
        suite="scale",
        repeats=repeats,
        environment=environment_fingerprint(
            dataset_seed=config_for_rung(ladder[0]).seed
        ),
    )
    for n_c in ladder:
        config = config_for_rung(n_c)
        label = config.label()
        if progress is not None:
            progress(f"building {label} (n_c={n_c:,}) and persisting ...")
        workspace = Workspace(config.instance(), io_latency_s=SCALE_IO_LATENCY_S)
        with tempfile.TemporaryDirectory(prefix="mindist-scale-") as tmp:
            v1 = persist_indexes(workspace, Path(tmp) / "v1", leaf_format="rows")
            v2 = persist_indexes(workspace, Path(tmp) / "v2", leaf_format="columns")
            backends = {
                "file": (v1, False),
                "mmap": (v1, True),
                "mmap+columnar": (v2, True),
            }
            for name in chosen:
                reference, reference_dr = _run_once(workspace, name)
                file_elapsed: Optional[float] = None
                for backend in SCALE_BACKENDS:
                    indexes, mapped = backends[backend]
                    if progress is not None:
                        progress(f"running {label} {name} [{backend}] ...")
                    with DiskWorkspace(
                        indexes,
                        stats=IOStats(),
                        mapped=mapped,
                        io_latency_s=SCALE_IO_LATENCY_S,
                    ) as frozen:
                        samples: list[float] = []
                        result = None
                        for __ in range(repeats):
                            result, dr = _run_once(frozen, name)
                            _check_parity(
                                label, name, backend, "serial",
                                result, dr, reference, reference_dr,
                            )
                            samples.append(result.elapsed_s)
                        assert result is not None
                        # The same answer must come back from the
                        # engine's worker pool (shared mmap / shared
                        # file handle under concurrency).
                        frozen.invalidate_leaf_cache()
                        with QueryEngine(
                            frozen, workers=PARITY_WORKERS, executor="thread"
                        ) as engine:
                            parallel = engine.run(name)
                        _check_parity(
                            label, name, backend, f"workers={PARITY_WORKERS}",
                            parallel, None, reference, reference_dr,
                        )
                    elapsed = statistics.median(samples)
                    if backend == "file":
                        file_elapsed = elapsed
                    index_reads = sum(
                        pages
                        for source, pages in result.io_reads.items()
                        if source.startswith("R_")
                    )
                    metrics = {
                        "io_total": float(result.io_total),
                        "index_reads": float(index_reads),
                        "data_reads": float(result.io_total - index_reads),
                        "index_pages": float(result.index_pages),
                        "elapsed_s": elapsed,
                    }
                    if backend == "mmap+columnar" and file_elapsed:
                        # Informational (not gated): what zero-copy +
                        # zero-decode bought over the v1 file path.
                        metrics["speedup"] = (
                            file_elapsed / elapsed if elapsed > 0 else 0.0
                        )
                    record.entries.append(
                        BenchEntry(
                            config=f"{label}|{backend}",
                            method=name,
                            x=float(n_c),
                            metrics=metrics,
                            io_breakdown=dict(result.io_reads),
                            elapsed_samples=samples,
                        )
                    )
    return record
