"""Noise-aware comparison of two benchmark records.

Four policies, chosen per metric:

* **exact** — fully deterministic quantities (page-read counts, index
  sizes, the load generator's request counts and workload mix), so
  *any* increase is a regression and any decrease an improvement; there
  is no tolerance to hide behind.
* **time** — wall times are noisy even after the recorder's median-of-k
  smoothing, so they compare under a relative tolerance (default ±25 %)
  and, by default, do not gate: a timing verdict outside the tolerance
  is reported as improved/regressed but only fails the comparison when
  the caller opts in (``gate_time``), because CI machines differ from
  the baseline recorder's machine.
* **rate** — like ``time`` but higher is better (throughput, cache hit
  rate): a drop beyond the tolerance is the regression.
* **info** — recorded for history only; the comparator skips it.
* **pin** — directionless deterministic quantities (request counts, a
  workload mix, a seed): *any* difference from the baseline is a gated
  mismatch — there is no "improved" direction to escape through.

Which metric gets which policy comes from the *record* (schema v2's
``metric_policies``, declared by the suite that wrote it), falling back
to the classic defaults for the page-count and wall-time metric names.

The result is a structured verdict per (configuration, method, metric),
an overall pass/fail, and renderers for terminals and CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.record import (
    DETERMINISTIC_METRICS,
    POLICY_EXACT,
    POLICY_INFO,
    POLICY_PIN,
    POLICY_RATE,
    POLICY_TIME,
    TIMING_METRICS,
    BenchRecord,
    default_metric_policies,
)

#: Default relative tolerance for wall-time metrics.
DEFAULT_TIME_TOLERANCE = 0.25

IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"
MISSING = "missing"  # in the baseline, absent from the current run
NEW = "new"  # in the current run, absent from the baseline


@dataclass(frozen=True)
class Verdict:
    """The comparison outcome for one (config, method, metric)."""

    config: str
    method: str
    metric: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    gating: bool = True  # does this verdict participate in pass/fail?
    note: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def relative_delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None or not self.baseline:
            return None
        return (self.current - self.baseline) / self.baseline

    def format(self) -> str:
        if self.baseline is None or self.current is None:
            return (
                f"{self.config} {self.method:>4} {self.metric:<12} "
                f"{self.status.upper()}  {self.note}".rstrip()
            )
        rel = self.relative_delta
        rel_text = f" ({rel:+.1%})" if rel is not None else ""
        return (
            f"{self.config} {self.method:>4} {self.metric:<12} "
            f"{self.baseline:g} -> {self.current:g}{rel_text}  "
            f"{self.status.upper()}"
        )

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "method": self.method,
            "metric": self.metric,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "gating": self.gating,
            "note": self.note,
        }


@dataclass
class ComparisonReport:
    """All verdicts of one baseline-vs-current comparison."""

    suite: str
    baseline_env: dict = field(default_factory=dict)
    current_env: dict = field(default_factory=dict)
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[Verdict]:
        return [
            v
            for v in self.verdicts
            if v.gating and v.status in (REGRESSED, MISSING)
        ]

    @property
    def improvements(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.status == IMPROVED]

    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for verdict in self.verdicts:
            out[verdict.status] = out.get(verdict.status, 0) + 1
        return out

    def format(self, verbose: bool = False) -> str:
        """Human-readable summary; ``verbose`` lists unchanged rows too."""
        lines = [f"suite: {self.suite}"]
        base_sha = self.baseline_env.get("git_sha", "?")
        cur_sha = self.current_env.get("git_sha", "?")
        lines.append(f"baseline {base_sha} vs current {cur_sha}")
        shown = [
            v
            for v in self.verdicts
            if verbose or v.status not in (UNCHANGED,)
        ]
        if shown:
            lines.append("")
            lines.extend(v.format() for v in shown)
        counts = self.counts()
        lines.append("")
        lines.append(
            "verdicts: "
            + ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        )
        if self.ok():
            lines.append("PASS: no gated regressions")
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} gated regression(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "ok": self.ok(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def resolve_policies(baseline: BenchRecord, current: BenchRecord) -> dict[str, str]:
    """The metric -> policy map governing one comparison.

    Classic defaults first, then the current record's declarations, then
    the baseline's — the committed baseline is the contract under test,
    so its view of a metric wins a disagreement.
    """
    policies = default_metric_policies()
    policies.update(current.metric_policies)
    policies.update(baseline.metric_policies)
    return policies


def _metric_order(policies: dict[str, str], base: dict, cur: dict) -> list[str]:
    """Stable comparison order: the classic metrics first (in their
    historical order), then any suite-declared extras alphabetically."""
    classic = [*DETERMINISTIC_METRICS, *TIMING_METRICS]
    present = set(base) | set(cur)
    ordered = [m for m in classic if m in policies and m in present]
    extras = sorted(m for m in present if m in policies and m not in classic)
    return ordered + extras


def _timing_comparable(baseline_env: dict, current_env: dict) -> str:
    """A note when wall times were recorded on observably different
    environments (platform or Python build)."""
    keys = ("platform", "python")
    diffs = [
        k
        for k in keys
        if baseline_env.get(k) != current_env.get(k)
        and baseline_env.get(k) is not None
    ]
    if diffs:
        return "environments differ: " + ", ".join(diffs)
    return ""


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    gate_time: bool = False,
    subset: bool = False,
) -> ComparisonReport:
    """Compare ``current`` against ``baseline``, metric by metric.

    With ``subset``, baseline entries absent from the current run are
    reported but do not gate — for deliberately partial reruns, like CI
    recording only the smallest rung of the ``scale`` ladder against
    the committed full-ladder baseline.  Entries the current run *does*
    cover still gate exactly.

    Raises ``ValueError`` when the records are not comparable at all
    (different suites — the configurations would not line up).
    """
    if baseline.suite != current.suite:
        raise ValueError(
            f"cannot compare suite {current.suite!r} against baseline "
            f"suite {baseline.suite!r}"
        )
    if time_tolerance < 0:
        raise ValueError("time_tolerance must be >= 0")

    report = ComparisonReport(
        suite=baseline.suite,
        baseline_env=dict(baseline.environment),
        current_env=dict(current.environment),
    )
    env_note = _timing_comparable(baseline.environment, current.environment)
    policies = resolve_policies(baseline, current)

    base_entries = baseline.by_key()
    cur_entries = current.by_key()

    for key, base in base_entries.items():
        cur = cur_entries.get(key)
        config, method = key
        if cur is None:
            report.verdicts.append(
                Verdict(
                    config=config,
                    method=method,
                    metric="*",
                    status=MISSING,
                    gating=not subset,
                    note="entry absent from the current run"
                    + (" (subset mode: not gated)" if subset else ""),
                )
            )
            continue
        for metric in _metric_order(policies, base.metrics, cur.metrics):
            policy = policies[metric]
            if policy == POLICY_INFO:
                continue
            b, c = base.metrics.get(metric), cur.metrics.get(metric)
            if b is None or c is None:
                continue
            if policy in (POLICY_EXACT, POLICY_PIN):
                # Deterministic: exact-match policy, gating.  Pinned
                # metrics have no "better" direction, so any difference
                # is a gated mismatch.
                if c == b:
                    status = UNCHANGED
                elif policy == POLICY_PIN:
                    status = REGRESSED
                elif c < b:
                    status = IMPROVED
                else:
                    status = REGRESSED
                report.verdicts.append(
                    Verdict(
                        config=config,
                        method=method,
                        metric=metric,
                        status=status,
                        baseline=b,
                        current=c,
                        note="pinned" if policy == POLICY_PIN and c != b else "",
                    )
                )
                continue
            # time / rate: relative tolerance, advisory unless opted in.
            rel = (c - b) / b if b else 0.0
            if policy == POLICY_RATE:
                rel = -rel  # higher is better: a drop reads as a rise
            if abs(rel) <= time_tolerance:
                status = UNCHANGED
            elif rel < 0:
                status = IMPROVED
            else:
                status = REGRESSED
            report.verdicts.append(
                Verdict(
                    config=config,
                    method=method,
                    metric=metric,
                    status=status,
                    baseline=b,
                    current=c,
                    gating=gate_time,
                    note=env_note,
                )
            )
        # Per-phase page reads: informational (phase names legitimately
        # change when code is restructured; io_total already gates).
        for phase, row in base.phases.items():
            cur_row = cur.phases.get(phase)
            b_reads = float(row.get("page_reads", 0.0))
            if cur_row is None:
                report.verdicts.append(
                    Verdict(
                        config=config,
                        method=method,
                        metric=f"phase[{phase}]",
                        status=MISSING,
                        baseline=b_reads,
                        gating=False,
                        note="phase absent from the current run",
                    )
                )
                continue
            c_reads = float(cur_row.get("page_reads", 0.0))
            if c_reads == b_reads:
                status = UNCHANGED
            elif c_reads < b_reads:
                status = IMPROVED
            else:
                status = REGRESSED
            report.verdicts.append(
                Verdict(
                    config=config,
                    method=method,
                    metric=f"phase[{phase}]",
                    status=status,
                    baseline=b_reads,
                    current=c_reads,
                    gating=False,
                )
            )

    for key, cur in cur_entries.items():
        if key not in base_entries:
            report.verdicts.append(
                Verdict(
                    config=key[0],
                    method=key[1],
                    metric="*",
                    status=NEW,
                    gating=False,
                    note="entry not in the baseline",
                )
            )
    return report
