"""Command-line interface.

Subcommands::

    mindist query    --clients c.csv --facilities f.csv --potentials p.csv
    mindist query    --random 10000 500 500 --method MND
    mindist compare  --random 5000 250 250
    mindist profile  --random 5000 250 250 --method MND
    mindist sweep    fig10 --scale 0.2 --csv out.csv --svg-dir figs/
    mindist plan     --random 5000 100 200 -k 5
    mindist close    --random 5000 100 1
    mindist evaluate --random 5000 100 50 --ids 0,1,2
    mindist simulate city --periods 6
    mindist simulate game --ticks 120
    mindist reproduce --out results/ --scale 0.2
    mindist bench run smoke --out BENCH_smoke.json
    mindist bench compare BENCH_smoke.json
    mindist bench report --last 20
    mindist serve    --random 10000 500 500 --port 7733
    mindist call     select --method MND --port 7733
    mindist call     stats --port 7733
    mindist loadgen  --mode both --report slo.md
    mindist loadgen  --host 127.0.0.1 --port 7733 --mode open --qps 300
    mindist shard    partition --random 10000 500 500 --tiles 4 --out tiles/
    mindist shard    serve tiles/ --shard-id 0 --shards 2 --port 7801
    mindist shard    serve tiles/ --coordinator --peer 127.0.0.1:7801 \
                     --peer 127.0.0.1:7802 --port 7733
    mindist shard    call select --method MND --port 7733

``query`` answers one min-dist location selection query; ``compare``
runs all four methods side by side; ``profile`` runs a query under the
observability tracer and prints the per-phase span tree (wall time,
page reads, counters); ``sweep`` reruns one of the paper's
figure experiments; ``plan`` selects k locations greedily; ``close``
finds the cheapest facility to shut down; ``evaluate`` reports what
specific candidates would achieve; ``simulate`` drives the motivating
application simulators; ``reproduce`` regenerates the *entire*
evaluation (tables, CSVs and SVG figures) in one call; ``bench``
records named benchmark suites, gates against committed baselines and
renders the performance trajectory (see :mod:`repro.bench`); ``serve``
runs the long-lived async query service, ``call`` issues one
request against it (see :mod:`repro.service`), ``loadgen`` drives it
with deterministic skewed traffic and reports SLOs (see
:mod:`repro.loadgen`) and ``shard`` partitions a dataset into tile
workspaces, serves them as a shard fleet and fronts the fleet with a
scatter-gather coordinator whose merged answers are byte-identical to
the unsharded reference (see :mod:`repro.shard`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core import METHODS, Workspace, make_selector
from repro.datasets.generators import SpatialInstance, make_instance
from repro.datasets.io import load_points_csv
from repro.experiments import format_sweep, sweep_to_csv
from repro.experiments.sweeps import (
    client_size_sweep,
    facility_size_sweep,
    gaussian_sweep,
    potential_size_sweep,
    real_dataset_runs,
    zipfian_sweep,
)

_SWEEPS = {
    "fig10": client_size_sweep,
    "fig11": facility_size_sweep,
    "fig12": potential_size_sweep,
    "fig13": gaussian_sweep,
    "fig13b": zipfian_sweep,
    "fig14": real_dataset_runs,
}


def _instance_from_args(args: argparse.Namespace) -> SpatialInstance:
    if args.random is not None:
        n_c, n_f, n_p = args.random
        return make_instance(
            n_c, n_f, n_p, distribution=args.distribution, rng=args.seed
        )
    if not (args.clients and args.facilities and args.potentials):
        raise SystemExit(
            "either --random N_C N_F N_P or all of --clients/--facilities/"
            "--potentials CSV paths are required"
        )
    return SpatialInstance(
        name="cli",
        clients=load_points_csv(args.clients),
        facilities=load_points_csv(args.facilities),
        potentials=load_points_csv(args.potentials),
    )


def _add_worker_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel workers for query execution (results and I/O "
        "accounting are identical at any count)",
    )
    parser.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="worker pool kind when --workers > 1",
    )


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", help="CSV of client points (x,y)")
    parser.add_argument("--facilities", help="CSV of existing facility points")
    parser.add_argument("--potentials", help="CSV of potential locations")
    parser.add_argument(
        "--random",
        nargs=3,
        type=int,
        metavar=("N_C", "N_F", "N_P"),
        help="generate a random instance instead of reading CSVs",
    )
    parser.add_argument(
        "--distribution",
        default="uniform",
        choices=["uniform", "gaussian", "zipfian"],
    )
    parser.add_argument("--seed", type=int, default=7)


def _cmd_query(args: argparse.Namespace) -> int:
    ws = Workspace(_instance_from_args(args))
    if args.workers > 1:
        from repro.exec import run_query

        result = run_query(
            ws, args.method, workers=args.workers, executor=args.executor
        )
    else:
        result = make_selector(ws, args.method).select()
    print(
        f"best location: p{result.location.sid} at "
        f"({result.location.x:.4f}, {result.location.y:.4f})"
    )
    print(f"distance reduction: {result.dr:.4f}")
    print(
        f"method={result.method}  I/Os={result.io_total}  "
        f"time={result.elapsed_s:.4f}s (cpu {result.cpu_s:.4f}s)  "
        f"index={result.index_pages} pages"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        InMemorySink,
        JsonLinesSink,
        Tracer,
        format_span_tree,
        phase_breakdown,
    )

    jsonl_sink = jsonl_stream = None
    if args.jsonl:
        try:
            jsonl_stream = open(args.jsonl, "a", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot open {args.jsonl}: {exc}", file=sys.stderr)
            return 2
        jsonl_sink = JsonLinesSink(jsonl_stream)
    ws = Workspace(_instance_from_args(args))
    methods = list(METHODS) if args.method == "all" else [args.method]
    status = 0
    try:
        for index, name in enumerate(methods):
            selector = make_selector(ws, name)
            selector.prepare()  # keep index construction out of the profile
            sink = InMemorySink()
            tracer = Tracer([sink])
            if jsonl_sink is not None:
                tracer.add_sink(jsonl_sink)
            ws.attach_tracer(tracer)
            try:
                if args.workers > 1:
                    from repro.exec import run_query

                    result = run_query(
                        ws, selector, workers=args.workers, executor=args.executor
                    )
                else:
                    result = selector.select()
            finally:
                ws.detach_tracer()
            root = sink.last
            if index:
                print()
            print(format_span_tree(root, show_counters=not args.no_counters))
            phase_reads = sum(
                row["page_reads"] for row in phase_breakdown(root).values()
            )
            print(
                f"{name}: best p{result.location.sid}  dr={result.dr:.4f}  "
                f"time={result.elapsed_s:.4f}s (cpu {result.cpu_s:.4f}s)"
            )
            print(
                f"{name}: {result.io_total} I/Os total; "
                f"{int(phase_reads)} attributed across phases"
            )
            if int(phase_reads) != result.io_total:
                print(f"{name}: WARNING: phase reads do not sum to the I/O total")
                status = 1
    finally:
        if jsonl_stream is not None:
            jsonl_stream.close()
    if args.jsonl:
        print(f"\nwrote span trees to {args.jsonl}")
    return status


def _cmd_compare(args: argparse.Namespace) -> int:
    ws = Workspace(_instance_from_args(args))
    header = (
        f"{'method':>6}  {'location':>9}  {'dr':>12}  {'I/Os':>8}  "
        f"{'time(s)':>9}  {'cpu(s)':>8}  {'index(p)':>8}"
    )
    print(header)
    print("-" * len(header))
    for name in METHODS:
        result = make_selector(ws, name).select()
        print(
            f"{name:>6}  p{result.location.sid:>8}  {result.dr:>12.4f}  "
            f"{result.io_total:>8}  {result.elapsed_s:>9.4f}  "
            f"{result.cpu_s:>8.4f}  {result.index_pages:>8}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep_fn = _SWEEPS[args.figure]
    methods = args.methods.split(",") if args.methods else ("SS", "QVC", "NFC", "MND")
    sweep = sweep_fn(scale=args.scale, methods=methods)
    print(format_sweep(sweep))
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(sweep_to_csv(sweep))
        print(f"\nwrote {args.csv}")
    if args.svg_dir:
        from repro.experiments.plot import save_sweep_figures

        for path in save_sweep_figures(sweep, args.svg_dir):
            print(f"wrote {path}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import select_sequence
    from repro.core.greedy import coverage_curve

    instance = _instance_from_args(args)
    results = select_sequence(instance, k=args.k, method=args.method)
    for rank, step in enumerate(results, start=1):
        print(
            f"#{rank}: p{step.location.sid} at "
            f"({step.location.x:.4f}, {step.location.y:.4f})  "
            f"dr={step.dr:.4f}  io={step.io_total}"
        )
    curve = coverage_curve(results)
    print("cumulative distance saved: " + " -> ".join(f"{v:.2f}" for v in curve))
    return 0


def _cmd_close(args: argparse.Namespace) -> int:
    from repro.core import select_closure

    instance = _instance_from_args(args)
    site, damage = select_closure(instance.clients, instance.facilities)
    print(
        f"close facility f{site.sid} at ({site.x:.4f}, {site.y:.4f}): "
        f"total distance rises by only {damage:.4f}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.evaluate import compare_locations

    ws = Workspace(_instance_from_args(args))
    ids = (
        [int(v) for v in args.ids.split(",")]
        if args.ids
        else list(range(min(5, ws.n_p)))
    )
    for report in compare_locations(ws, ids):
        print(report.format())
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.world == "city":
        from repro.simulation.city import CityConfig, UrbanGrowthSimulation

        sim = UrbanGrowthSimulation(CityConfig(seed=args.seed, method=args.method))
        for record in sim.run(args.periods):
            built = record.built
            print(
                f"period {record.period}: build at "
                f"({built.location.x:7.2f}, {built.location.y:7.2f})  "
                f"residents={record.residents}  helped={record.residents_helped}  "
                f"avg NFD={record.avg_nfd:.2f}"
            )
        return 0

    from repro.simulation.game import GameConfig, QuestSimulation

    sim = QuestSimulation(GameConfig(seed=args.seed, method=args.method))
    records = sim.run(args.ticks)
    for r in records:
        loc = r.selection.location
        print(
            f"tick {r.tick:3d} (camp {r.camp_index}): rejoin at "
            f"({loc.x:.0f},{loc.y:.0f})  avg mob distance "
            f"{r.avg_mob_distance_before:6.1f} -> {r.avg_mob_distance_after:6.1f}"
        )
    print(
        f"{len(records)} rejoins over {sim.tick} ticks; "
        f"quest {'complete' if sim.quest_complete else 'in progress'}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis.cost_model import CostModel
    from repro.analysis.pruning import profile_mnd_join, profile_nfc_join
    from repro.analysis.selectivity import (
        expected_dnn,
        expected_dr,
        expected_influence_size,
    )

    ws = Workspace(_instance_from_args(args))
    dnn = ws.client_xyd[:, 2]
    model = CostModel()
    print(f"instance: n_c={ws.n_c}  n_f={ws.n_f}  n_p={ws.n_p}")
    print("\nnearest-facility distances (dnn):")
    print(
        f"  mean={dnn.mean():.3f}  median={np.median(dnn):.3f}  "
        f"p95={np.percentile(dnn, 95):.3f}  max={dnn.max():.3f}"
    )
    print(f"  Poisson-model prediction E[dnn] = {expected_dnn(ws.n_f):.3f}")
    print("\nselectivity:")
    print(
        f"  predicted E[|IS(p)|] = n_c/n_f = "
        f"{expected_influence_size(ws.n_c, ws.n_f):.2f}"
    )
    print(f"  predicted E[dr(p)]   = {expected_dr(ws.n_c, ws.n_f):.2f}")
    print(
        "\nindex sizes (pages): "
        f"R_C={ws.r_c.size_pages}  R_F={ws.r_f.size_pages}  "
        f"R_P={ws.r_p.size_pages}  R_C^n={ws.rnn_tree.size_pages}  "
        f"R_C^m={ws.mnd_tree.size_pages}"
    )
    print("\njoin pruning profiles:")
    for profile in (profile_nfc_join(ws), profile_mnd_join(ws)):
        print("  " + profile.format().replace("\n", "\n  "))
    print("\ncost model (Table III):")
    print(f"  predicted IO_s = {model.io_ss(ws.n_c, ws.n_p)}")
    print(f"  join worst case = {model.io_join_worst_case(ws.n_c, ws.n_p):.0f}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.full_run import run_full_evaluation

    figures = args.figures.split(",") if args.figures else None
    run_full_evaluation(args.out, scale=args.scale, figures=figures)
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import append_history, run_suite

    methods = args.methods.split(",") if args.methods else None
    rungs = (
        [int(r) for r in args.rungs.split(",")] if getattr(args, "rungs", None)
        else None
    )
    record = run_suite(
        args.suite,
        repeats=args.repeats,
        methods=methods,
        progress=lambda line: print(line, file=sys.stderr),
        workers=args.workers,
        rungs=rungs,
    )
    out = args.out or f"BENCH_{record.suite}.json"
    record.write(out)
    print(f"wrote {out} ({len(record.entries)} entries)")
    if not args.no_history:
        path = append_history(record, args.history)
        print(f"appended to {path}")
    io_totals = record.totals("io_total")
    if any(io_totals.values()):
        for method, total in sorted(io_totals.items()):
            elapsed = record.totals("elapsed_s").get(method, 0.0)
            print(f"  {method:>4}  io={int(total):>7}  elapsed={elapsed:.3f}s")
    else:  # SLO-style suites (loadgen) have no page reads to sum
        for method, qps in sorted(record.totals("qps").items()):
            p99 = record.totals("p99_s").get(method, 0.0)
            print(f"  {method:>6}  qps={qps:>7.1f}  p99={p99 * 1000:.1f}ms")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.bench import BenchRecord, compare_records, run_suite

    try:
        baseline = BenchRecord.read(args.baseline)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    if args.current:
        try:
            current = BenchRecord.read(args.current)
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"error: cannot read current {args.current}: {exc}", file=sys.stderr
            )
            return 2
    else:
        current = run_suite(
            baseline.suite,
            repeats=args.repeats if args.repeats else baseline.repeats,
            progress=lambda line: print(line, file=sys.stderr),
        )
    report = compare_records(
        baseline,
        current,
        time_tolerance=args.time_tolerance,
        gate_time=args.gate_time,
        subset=args.subset,
    )
    print(report.format(verbose=args.verbose))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            _json.dump(report.to_dict(), stream, indent=2)
            stream.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok() else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import load_history, markdown_summary, trend_report

    rows = load_history(args.history, suite=args.suite)
    if not rows:
        print(
            f"no history rows in {args.history}"
            + (f" for suite {args.suite!r}" if args.suite else "")
        )
        return 1
    metrics = args.metrics.split(",") if args.metrics else ("io_total", "elapsed_s")
    render = markdown_summary if args.markdown else trend_report
    print(render(rows, metrics=metrics, last=args.last))
    return 0


def _cmd_bench_suites(args: argparse.Namespace) -> int:
    from repro.bench import SUITES, suite_names

    for name in suite_names():
        suite = SUITES[name]
        print(
            f"{name:>6}  {len(suite.configs)} config(s), "
            f"methods {','.join(suite.methods)} — {suite.description}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core import DynamicWorkspace
    from repro.service import QueryService, ServiceConfig, TelemetryConfig

    workspace = DynamicWorkspace(_instance_from_args(args))
    telemetry = TelemetryConfig(
        enabled=not args.no_telemetry,
        trace_buffer=args.trace_buffer,
        slow_log=args.slow_log,
        window_s=args.window,
        access_log=args.access_log,
        log_level=args.log_level,
        snapshot_path=args.metrics_snapshots,
        snapshot_interval_s=args.snapshot_interval,
        metrics_port=args.metrics_port,
    )
    config = ServiceConfig(
        max_pending=args.max_pending,
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        workers=args.workers,
        executor=args.executor,
        default_timeout_s=args.timeout if args.timeout > 0 else None,
        cache_entries=args.cache_entries,
        telemetry=telemetry,
    )

    async def _serve() -> None:
        service = QueryService({args.name: workspace}, config)
        host, port = await service.start(args.host, args.port)
        print(
            f"serving workspace {args.name!r} "
            f"(n_c={workspace.n_c}, n_f={workspace.n_f}, n_p={workspace.n_p}) "
            f"on {host}:{port}",
            flush=True,
        )
        print(
            f"  workers={config.workers} batch_window={config.batch_window_s}s "
            f"max_pending={config.max_pending} cache={config.cache_entries}",
            flush=True,
        )
        if service.metrics_address is not None:
            mh, mp = service.metrics_address
            print(f"  metrics on http://{mh}:{mp}/metrics", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining ...", flush=True)
            await service.shutdown(drain=True)
            print("stopped", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import ClientConnectionError, ServiceClient, ServiceError

    try:
        client = ServiceClient(
            args.host,
            args.port,
            connect_retries=getattr(args, "connect_retries", 0),
        )
    except ClientConnectionError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    try:
        with client:
            if args.operation == "select":
                answer = client.select(
                    args.method,
                    workspace=args.workspace,
                    timeout_s=args.timeout if args.timeout > 0 else None,
                    no_cache=args.no_cache,
                )
                result = answer.result
                origin = "cache" if answer.cached else (
                    f"batch of {answer.batch_size}"
                    if answer.batch_size
                    else "engine"
                )
                print(
                    f"best location: p{result.location.sid} at "
                    f"({result.location.x:.4f}, {result.location.y:.4f})"
                )
                print(f"distance reduction: {result.dr:.4f}")
                print(
                    f"method={result.method}  I/Os={result.io_total}  "
                    f"served from {origin}  "
                    f"(workspace version {answer.data_version})"
                )
            elif args.operation == "evaluate":
                ids = [int(v) for v in (args.ids or "0").split(",")]
                for report in client.evaluate(ids, workspace=args.workspace):
                    print(
                        f"candidate p{report['sid']}: "
                        f"influences {report['influence_count']} client(s), "
                        f"dr={report['dr']:.4f}"
                    )
            elif args.operation == "update":
                params: dict = {}
                if args.point:
                    params["point"] = [args.point[0], args.point[1]]
                if args.cid is not None:
                    params["cid"] = args.cid
                if args.sid is not None:
                    params["sid"] = args.sid
                if args.weight is not None:
                    params["weight"] = args.weight
                report = client.update(
                    args.action, workspace=args.workspace, **params
                )
                print(_json.dumps(report, indent=2, sort_keys=True))
            elif args.operation == "metrics":
                sys.stdout.write(client.metrics())
            elif args.operation == "trace":
                traces = client.trace(
                    trace_id=args.trace_id,
                    recent=args.recent,
                    slow=args.slow,
                )
                print(_json.dumps(traces, indent=2, sort_keys=True))
            else:  # stats / health
                payload = (
                    client.stats(prefix=args.prefix)
                    if args.operation == "stats"
                    else client.health()
                )
                print(_json.dumps(payload, indent=2, sort_keys=True))
    except ClientConnectionError as exc:
        # Mid-request transport death (reset, EOF): distinct exit code
        # from a server-reported error, still no raw traceback.
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import (
        ClientConnectionError,
        ServiceClient,
        ServiceError,
        render_top,
    )

    endpoint = f"{args.host}:{args.port}"
    try:
        with ServiceClient(args.host, args.port) as client:
            while True:
                screen = render_top(
                    client.stats(), interval_s=args.interval, endpoint=endpoint
                )
                if args.once:
                    sys.stdout.write(screen)
                    return 0
                # Clear + home, then repaint: a flicker-free poor man's
                # curses that needs nothing beyond ANSI.
                sys.stdout.write("\x1b[2J\x1b[H" + screen)
                sys.stdout.flush()
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0
    except (ClientConnectionError, ServiceError) as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json
    from contextlib import nullcontext

    from repro.bench.loadgen import (
        LOADGEN_CLOSED,
        LOADGEN_DATASET,
        loadgen_entry,
        loadgen_metric_policies,
    )
    from repro.bench.record import BenchRecord, environment_fingerprint
    from repro.loadgen import (
        LoadgenConfig,
        RetryPolicy,
        SLOPolicy,
        parse_mix,
        render_slo_report,
        run_loadgen,
        self_hosted,
    )
    from repro.service import ClientConnectionError, ServiceError

    try:
        select_f, evaluate_f, update_f = parse_mix(args.mix)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shared = dict(
        clients=args.clients,
        requests_per_client=args.requests,
        warmup_requests=args.warmup,
        qps=args.qps,
        measure_s=args.measure,
        warmup_s=args.open_warmup,
        ramp_s=args.ramp,
        max_inflight=args.max_inflight,
        methods=tuple(args.methods.split(","))
        if args.methods
        else LOADGEN_CLOSED.methods,
        select_fraction=select_f,
        evaluate_fraction=evaluate_f,
        update_fraction=update_f,
        zipf_alpha=args.alpha,
        evaluate_keys=args.evaluate_keys,
        timeout_s=args.timeout if args.timeout > 0 else None,
        workspace=args.workspace,
        retry=RetryPolicy(max_retries=args.max_retries),
        seed=args.plan_seed,
    )
    modes = ["closed", "open"] if args.mode == "both" else [args.mode]
    try:
        configs = [LoadgenConfig(mode=mode, **shared) for mode in modes]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    policy = SLOPolicy(
        max_queue_full_rate=args.max_queue_full,
        max_deadline_miss_rate=args.max_deadline_miss,
        p99_target_s=args.p99 if args.p99 > 0 else None,
        min_cache_hit_rate=args.min_cache_hit
        if args.min_cache_hit > 0
        else None,
    )

    if args.host is not None:
        server = nullcontext()
        host, port = args.host, args.port
    else:
        sizes = args.random or (
            LOADGEN_DATASET.n_c,
            LOADGEN_DATASET.n_f,
            LOADGEN_DATASET.n_p,
        )
        server = self_hosted(
            n_c=sizes[0],
            n_f=sizes[1],
            n_p=sizes[2],
            seed=args.seed,
            workspace=args.workspace,
        )

    drives: list[tuple[LoadgenConfig, object]] = []
    try:
        with server as handle:
            if handle is not None:
                host, port = handle.host, handle.port
                print(f"self-hosting on {host}:{port}", file=sys.stderr)
            for config in configs:
                print(f"driving {config.label()} ...", file=sys.stderr)
                drives.append((config, run_loadgen(config, host, port)))
    except ClientConnectionError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except (ServiceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    status = 0
    reports = []
    for config, result in drives:
        stats = result.stats
        checks = policy.evaluate(stats)
        reports.append(
            render_slo_report(
                config,
                stats,
                checks,
                server_cache_hit_rate=result.server_cache_hit_rate(),
                server_deltas=result.server_deltas(),
                title=f"Load-generator SLO report — {config.mode} loop",
            )
        )
        print(
            f"{config.mode}: {stats.requests} measured "
            f"(+{stats.warmup_requests} warmup), "
            f"{stats.throughput_qps:.1f} req/s, "
            f"p50 {stats.latency.p50_s * 1000:.1f}ms, "
            f"p99 {stats.latency.p99_s * 1000:.1f}ms, "
            f"cache hit rate {stats.cache_hit_rate:.2f}, "
            f"queue-full rate {stats.queue_full_rate:.3f}"
        )
        if not result.plan_fidelity:
            print(f"{config.mode}: FAIL plan fidelity "
                  f"(issued {result.issued})", file=sys.stderr)
            status = 1
        for check in checks:
            if not check.ok:
                print(f"{config.mode}: FAIL {check.format()}", file=sys.stderr)
                status = 1

    if args.report:
        with open(args.report, "w", encoding="utf-8") as stream:
            stream.write("\n".join(reports))
        print(f"wrote {args.report}")
    if args.json:
        payload = {config.mode: result.to_dict() for config, result in drives}
        with open(args.json, "w", encoding="utf-8") as stream:
            _json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    if args.bench_out:
        record = BenchRecord(
            suite="loadgen",
            repeats=1,
            environment=environment_fingerprint(dataset_seed=args.seed),
            metric_policies=loadgen_metric_policies(configs[0].methods),
            entries=[
                loadgen_entry(config, result) for config, result in drives
            ],
        )
        record.write(args.bench_out)
        print(f"wrote {args.bench_out} ({len(record.entries)} entries)")
    return status


def _add_loadgen_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "loadgen",
        help="drive a query service with deterministic skewed load and "
        "report SLOs",
    )
    target = p.add_argument_group("target (default: self-host the bench "
                                  "suite's dataset in-process)")
    target.add_argument("--host", help="drive a live service at this address")
    target.add_argument("--port", type=int, default=7733)
    target.add_argument(
        "--random",
        nargs=3,
        type=int,
        metavar=("N_C", "N_F", "N_P"),
        help="self-host a random instance of these sizes",
    )
    target.add_argument(
        "--seed", type=int, default=20120401, help="self-hosted dataset seed"
    )
    shape = p.add_argument_group("load shape (defaults = the loadgen bench "
                                 "suite, so a default run gates exactly)")
    shape.add_argument(
        "--mode", default="both", choices=["closed", "open", "both"]
    )
    shape.add_argument(
        "--clients", type=int, default=4, help="closed loop: client threads"
    )
    shape.add_argument(
        "--requests",
        type=int,
        default=25,
        help="closed loop: measured requests per client",
    )
    shape.add_argument(
        "--warmup",
        type=int,
        default=5,
        help="closed loop: unmeasured leading requests per client",
    )
    shape.add_argument(
        "--qps", type=float, default=150.0, help="open loop: target arrival rate"
    )
    shape.add_argument(
        "--measure",
        type=float,
        default=1.2,
        help="open loop: measured window seconds",
    )
    shape.add_argument(
        "--open-warmup",
        type=float,
        default=0.4,
        help="open loop: full-rate unmeasured seconds before measuring",
    )
    shape.add_argument(
        "--ramp",
        type=float,
        default=0.4,
        help="open loop: linear 0->qps ramp seconds",
    )
    shape.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="open loop: concurrent in-flight bound",
    )
    shape.add_argument("--methods", help="comma-separated select methods, "
                       "hottest first (Zipf rank order)")
    shape.add_argument(
        "--mix",
        default="0.8,0.1,0.1",
        help="select,evaluate,update fractions (sum to 1), or a named "
        "profile: read-heavy, mixed, churn, write-only (churn is the "
        "write-heavy shape whose SLO report shows how much of the "
        "result cache survives mutations)",
    )
    shape.add_argument(
        "--alpha", type=float, default=0.9, help="Zipf skew exponent"
    )
    shape.add_argument(
        "--evaluate-keys",
        type=int,
        default=64,
        help="Zipf keyspace size for evaluate candidate ids",
    )
    shape.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request deadline seconds (0 = server default)",
    )
    shape.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="bounded retries on queue_full pushback",
    )
    shape.add_argument("--workspace", default="default")
    shape.add_argument(
        "--plan-seed",
        type=int,
        default=20120401,
        help="seeds arrivals, mix and key skew (the deterministic plan)",
    )
    slo = p.add_argument_group("SLO policy (protocol errors always gate at 0)")
    slo.add_argument("--max-queue-full", type=float, default=0.05)
    slo.add_argument("--max-deadline-miss", type=float, default=0.05)
    slo.add_argument(
        "--p99", type=float, default=0.0, help="p99 latency target seconds "
        "(0 = unchecked)"
    )
    slo.add_argument(
        "--min-cache-hit", type=float, default=0.0, help="minimum cache hit "
        "rate (0 = unchecked)"
    )
    out = p.add_argument_group("outputs")
    out.add_argument("--report", help="write the markdown SLO report here")
    out.add_argument("--json", help="write the full result dict here")
    out.add_argument(
        "--bench-out",
        help="write a loadgen BenchRecord here (comparable against "
        "BENCH_loadgen.json with `mindist bench compare`)",
    )
    p.set_defaults(func=_cmd_loadgen)


def _add_service_parsers(sub: argparse._SubParsersAction) -> None:
    p_serve = sub.add_parser(
        "serve", help="run the long-lived async query service"
    )
    _add_instance_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=7733, help="bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--name", default="default", help="name of the hosted workspace"
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound: queued+in-flight requests before queue_full",
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds a micro-batch stays open collecting selections",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=16, help="largest micro-batch"
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (0 = none)",
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="result-cache capacity (0 disables caching)",
    )
    p_serve.add_argument(
        "--access-log",
        metavar="PATH",
        help="write one JSON line per request to this file",
    )
    p_serve.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="minimum severity written to the access log",
    )
    p_serve.add_argument(
        "--trace-buffer",
        type=int,
        default=512,
        help="finished request traces kept findable by trace_id",
    )
    p_serve.add_argument(
        "--slow-log",
        type=int,
        default=32,
        help="slowest traces retained regardless of buffer churn",
    )
    p_serve.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="rolling-window span (seconds) of the live metrics",
    )
    p_serve.add_argument(
        "--metrics-snapshots",
        metavar="PATH",
        help="append periodic JSON-lines registry snapshots to this file",
    )
    p_serve.add_argument(
        "--snapshot-interval",
        type=float,
        default=10.0,
        help="seconds between registry snapshots",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        help="serve plain-HTTP GET /metrics on this port (0 = ephemeral)",
    )
    p_serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable request tracing and windowed metrics entirely",
    )
    _add_worker_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_call = sub.add_parser("call", help="issue one request to a running service")
    p_call.add_argument(
        "operation",
        choices=[
            "select",
            "evaluate",
            "update",
            "stats",
            "health",
            "metrics",
            "trace",
        ],
    )
    p_call.add_argument("--host", default="127.0.0.1")
    p_call.add_argument("--port", type=int, default=7733)
    p_call.add_argument("--workspace", default="default")
    p_call.add_argument(
        "--method", default="MND", choices=sorted(METHODS), help="select method"
    )
    p_call.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        help="deadline in seconds (0 = server default)",
    )
    p_call.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    p_call.add_argument("--ids", help="evaluate: comma-separated candidate ids")
    p_call.add_argument(
        "--action",
        default="add_client",
        choices=["add_client", "remove_client", "add_facility", "remove_facility"],
        help="update action",
    )
    p_call.add_argument(
        "--point",
        nargs=2,
        type=float,
        metavar=("X", "Y"),
        help="update: coordinates for add actions",
    )
    p_call.add_argument("--cid", type=int, help="update: client id to remove")
    p_call.add_argument("--sid", type=int, help="update: facility id to remove")
    p_call.add_argument("--weight", type=float, help="update: client weight")
    p_call.add_argument(
        "--prefix",
        help="stats: registry prefix ('' = the whole process registry)",
    )
    p_call.add_argument("--trace-id", help="trace: look up one trace by id")
    p_call.add_argument(
        "--recent", type=int, help="trace: list the N most recent traces"
    )
    p_call.add_argument(
        "--slow", type=int, help="trace: list the N slowest traces"
    )
    p_call.add_argument(
        "--connect-retries",
        type=int,
        default=0,
        help="bounded reconnect attempts before giving up on the service",
    )
    p_call.set_defaults(func=_cmd_call)

    p_top = sub.add_parser(
        "top", help="terminal live view of a running service"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7733)
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between stats polls / repaints",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="print one screen and exit (no clearing, no loop)",
    )
    p_top.set_defaults(func=_cmd_top)


def _cmd_shard_partition(args: argparse.Namespace) -> int:
    from repro.shard import partition_workspace, write_partition

    ws = Workspace(_instance_from_args(args))
    try:
        partition = partition_workspace(ws, args.tiles, scheme=args.scheme)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = write_partition(partition, args.out)
    print(
        f"partitioned n_c={ws.n_c} into {partition.n_tiles} {args.scheme} "
        f"tile(s); facilities (n_f={ws.n_f}) and potentials (n_p={ws.n_p}) "
        "replicated into every tile"
    )
    for tile in partition.plan.tiles:
        x0, y0, x1, y1 = tile.bounds
        print(
            f"  tile {tile.tile_id:4d}: {tile.n_c:6d} clients  "
            f"[{x0:9.2f},{y0:9.2f}] .. [{x1:9.2f},{y1:9.2f}]"
        )
    print(f"wrote {manifest}")
    return 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import QueryService, ServiceConfig
    from repro.shard import ShardTopology, load_partition
    from repro.shard.coordinator import ShardCoordinator, tile_workspace_name
    from repro.shard.executor import assign_tiles

    try:
        partition = load_partition(args.dir)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load partition {args.dir}: {exc}", file=sys.stderr)
        return 2
    config = ServiceConfig(workers=args.workers)

    if args.coordinator:
        if not args.peer:
            print(
                "error: --coordinator needs one --peer HOST:PORT per shard "
                "(in shard-id order)",
                file=sys.stderr,
            )
            return 2
        peers = []
        for peer in args.peer:
            host_part, _, port_part = peer.rpartition(":")
            if not host_part or not port_part.isdigit():
                print(f"error: --peer {peer!r} is not HOST:PORT", file=sys.stderr)
                return 2
            peers.append((host_part, int(port_part)))
        try:
            topology = ShardTopology.from_partition(partition, peers)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        service = ShardCoordinator(
            topology, config, connect_retries=args.connect_retries
        )
        banner = (
            f"coordinating {topology.n_tiles} tile(s) over "
            f"{len(topology.shards)} shard(s): "
            + ", ".join(f"{h}:{p}" for h, p in peers)
        )
    else:
        try:
            groups = assign_tiles(partition.n_tiles, args.shards)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not 0 <= args.shard_id < args.shards:
            print(
                f"error: --shard-id must be in [0, {args.shards})",
                file=sys.stderr,
            )
            return 2
        tile_ids = groups[args.shard_id]
        workspaces = {
            tile_workspace_name(t): partition.load_tile(t, mode=args.mode)
            for t in tile_ids
        }
        service = QueryService(workspaces, config)
        banner = (
            f"shard {args.shard_id}/{args.shards} hosting tile(s) "
            f"{', '.join(str(t) for t in tile_ids)} ({args.mode} mode)"
        )

    async def _serve() -> None:
        host, port = await service.start(args.host, args.port)
        print(f"{banner}", flush=True)
        print(f"listening on {host}:{port}", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining ...", flush=True)
            await service.shutdown(drain=True)
            print("stopped", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_shard_call(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import ClientConnectionError, ServiceClient, ServiceError

    try:
        client = ServiceClient(
            args.host, args.port, connect_retries=args.connect_retries
        )
    except ClientConnectionError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    try:
        with client:
            if args.operation == "select":
                answer = client.select(args.method, no_cache=args.no_cache)
                result = answer.result
                print(
                    f"best location: p{result.location.sid} at "
                    f"({result.location.x:.4f}, {result.location.y:.4f})"
                )
                print(f"distance reduction: {result.dr:.4f}")
                print(
                    f"method={result.method}  I/Os={result.io_total}  "
                    f"served from {'cache' if answer.cached else 'shards'}  "
                    f"(coordinator version {answer.data_version})"
                )
            else:  # stats / health
                payload = (
                    client.stats()
                    if args.operation == "stats"
                    else client.health()
                )
                print(_json.dumps(payload, indent=2, sort_keys=True))
    except ClientConnectionError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    return 0


def _add_shard_parser(sub: argparse._SubParsersAction) -> None:
    p_shard = sub.add_parser(
        "shard",
        help="partition a dataset into tiles, serve a shard fleet, and "
        "front it with an exact scatter-gather coordinator",
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)

    p_part = shard_sub.add_parser(
        "partition", help="split a dataset into persisted tile workspaces"
    )
    _add_instance_args(p_part)
    p_part.add_argument(
        "--tiles", type=int, default=4, help="fixed tile count (the merge "
        "order; independent of how many shards serve them)"
    )
    p_part.add_argument(
        "--scheme",
        default="str",
        choices=["str", "grid"],
        help="spatial partitioning scheme",
    )
    p_part.add_argument(
        "--out", required=True, help="directory for the shard workspaces"
    )
    p_part.set_defaults(func=_cmd_shard_partition)

    p_sserve = shard_sub.add_parser(
        "serve", help="serve a shard's tiles, or coordinate a shard fleet"
    )
    p_sserve.add_argument("dir", help="partition directory (shards.json)")
    p_sserve.add_argument("--host", default="127.0.0.1")
    p_sserve.add_argument(
        "--port", type=int, default=7733, help="bind port (0 = ephemeral)"
    )
    p_sserve.add_argument(
        "--workers", type=int, default=1, help="engine workers per workspace"
    )
    p_sserve.add_argument(
        "--shards", type=int, default=1, help="shard role: fleet size"
    )
    p_sserve.add_argument(
        "--shard-id", type=int, default=0, help="shard role: this shard's id"
    )
    p_sserve.add_argument(
        "--mode",
        default="dynamic",
        choices=["dynamic", "disk"],
        help="shard role: rebuild tiles in memory (accepts updates) or "
        "serve the persisted page files",
    )
    p_sserve.add_argument(
        "--coordinator",
        action="store_true",
        help="coordinator role: scatter-gather over --peer shard servers",
    )
    p_sserve.add_argument(
        "--peer",
        action="append",
        metavar="HOST:PORT",
        help="coordinator role: one per shard, in shard-id order",
    )
    p_sserve.add_argument(
        "--connect-retries",
        type=int,
        default=1,
        help="coordinator role: reconnect attempts per shard call",
    )
    p_sserve.set_defaults(func=_cmd_shard_serve)

    p_scall = shard_sub.add_parser(
        "call", help="issue one request to a shard coordinator"
    )
    p_scall.add_argument("operation", choices=["select", "stats", "health"])
    p_scall.add_argument("--host", default="127.0.0.1")
    p_scall.add_argument("--port", type=int, default=7733)
    p_scall.add_argument(
        "--method", default="MND", choices=sorted(METHODS), help="select method"
    )
    p_scall.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    p_scall.add_argument(
        "--connect-retries",
        type=int,
        default=0,
        help="bounded reconnect attempts before giving up",
    )
    p_scall.set_defaults(func=_cmd_shard_call)


def _cmd_pages_info(args: argparse.Namespace) -> int:
    import struct as _struct

    from repro.storage.diskfile import (
        COLUMNAR_VERSION,
        PageFile,
        PageFileError,
    )

    try:
        with PageFile(args.file).open() as pf:
            meta = bytes(pf.read_page(0))
            # An R-tree meta page is <IIB> (entries, height, mnd flag); a
            # block-file meta page is <QII> (records, per-block, ncols).
            # Both are heuristics for display only — the header is the
            # sole source of truth for paging.
            rtree_meta = _struct.unpack_from("<IIB", meta)
            block_meta = _struct.unpack_from("<QII", meta)
            print(f"file:         {args.file}")
            print(
                f"format:       v{pf.format_version} "
                f"({'columns (SoA)' if pf.format_version == COLUMNAR_VERSION else 'rows (AoS)'})"
            )
            print(f"page size:    {pf.page_size}")
            print(f"pages:        {pf.num_pages}")
            print(f"root page:    {pf.root_page}")
            entries, height, flags = rtree_meta
            print(
                f"as r-tree:    num_entries={entries} height={height} "
                f"mnd={'yes' if flags & 1 else 'no'}"
            )
            records, per_block, ncols = block_meta
            print(
                f"as blockfile: num_records={records} "
                f"records_per_block={per_block} ncols={ncols}"
            )
    except PageFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_pages_convert(args: argparse.Namespace) -> int:
    from repro.rtree.persist import convert_page_file
    from repro.storage.codecs import ClientCodec, SiteCodec
    from repro.storage.diskblocks import convert_block_file
    from repro.storage.diskfile import PageFileError

    try:
        if args.codec == "block":
            pages = convert_block_file(args.src, args.dst, args.to)
        else:
            codec = ClientCodec() if args.codec == "client" else SiteCodec()
            pages = convert_page_file(args.src, args.dst, codec, args.to)
    except (PageFileError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {args.dst} ({pages} pages, leaf format {args.to})")
    return 0


def _add_pages_parser(sub: argparse._SubParsersAction) -> None:
    p_pages = sub.add_parser(
        "pages", help="inspect and convert on-disk page files"
    )
    pages_sub = p_pages.add_subparsers(dest="pages_command", required=True)

    p_info = pages_sub.add_parser(
        "info", help="print a page file's header and metadata page"
    )
    p_info.add_argument("file", help="path to a .pages file")
    p_info.set_defaults(func=_cmd_pages_info)

    p_conv = pages_sub.add_parser(
        "convert", help="rewrite a page file between row (v1) and "
        "columnar (v2) leaf encodings"
    )
    p_conv.add_argument("src", help="source .pages file")
    p_conv.add_argument("dst", help="destination .pages file")
    p_conv.add_argument(
        "--codec",
        required=True,
        choices=("client", "site", "block"),
        help="leaf payload kind: client/site r-tree, or a flat block file",
    )
    p_conv.add_argument(
        "--to",
        required=True,
        choices=("rows", "columns"),
        help="target leaf encoding",
    )
    p_conv.set_defaults(func=_cmd_pages_convert)


def _add_bench_parser(sub: argparse._SubParsersAction) -> None:
    p_bench = sub.add_parser(
        "bench", help="record benchmark suites and gate against baselines"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_run = bench_sub.add_parser("run", help="record one suite execution")
    p_run.add_argument("suite", help="suite name (see `mindist bench suites`)")
    p_run.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-time samples per method (median reported)",
    )
    p_run.add_argument("--methods", help="comma-separated subset, e.g. NFC,MND")
    p_run.add_argument(
        "--out", help="output JSON path (default BENCH_<suite>.json)"
    )
    p_run.add_argument(
        "--history",
        default="benchmarks/history.jsonl",
        help="history JSONL to append to",
    )
    p_run.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the history",
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="stretch the worker ladder (suites with a runner, "
        "e.g. parallel)",
    )
    p_run.add_argument(
        "--rungs",
        help="comma-separated client-count rungs for the scale suite, "
        "e.g. 100000 (default: the full ladder)",
    )
    p_run.set_defaults(func=_cmd_bench_run)

    p_cmp = bench_sub.add_parser(
        "compare", help="compare a fresh (or saved) run against a baseline"
    )
    p_cmp.add_argument("baseline", help="baseline BENCH_<suite>.json")
    p_cmp.add_argument(
        "--current",
        help="compare this saved record instead of re-running the suite",
    )
    p_cmp.add_argument(
        "--repeats",
        type=int,
        default=0,
        help="repeats for the fresh run (default: the baseline's)",
    )
    p_cmp.add_argument(
        "--time-tolerance",
        type=float,
        default=0.25,
        help="relative tolerance for wall-time metrics",
    )
    p_cmp.add_argument(
        "--gate-time",
        action="store_true",
        help="fail on wall-time regressions too (deterministic I/O "
        "metrics always gate)",
    )
    p_cmp.add_argument(
        "--subset",
        action="store_true",
        help="current run may cover only part of the baseline; entries "
        "it does cover still gate exactly (CI's single-rung scale check)",
    )
    p_cmp.add_argument(
        "--verbose", action="store_true", help="list unchanged verdicts too"
    )
    p_cmp.add_argument("--json", help="also write the structured verdicts here")
    p_cmp.set_defaults(func=_cmd_bench_compare)

    p_rep = bench_sub.add_parser("report", help="render the history trend")
    p_rep.add_argument(
        "--history",
        default="benchmarks/history.jsonl",
        help="history JSONL to read",
    )
    p_rep.add_argument("--suite", help="restrict to one suite")
    p_rep.add_argument("--last", type=int, default=20, help="runs to include")
    p_rep.add_argument(
        "--metrics", help="comma-separated metrics (default io_total,elapsed_s)"
    )
    p_rep.add_argument(
        "--markdown", action="store_true", help="markdown instead of ASCII"
    )
    p_rep.set_defaults(func=_cmd_bench_report)

    p_suites = bench_sub.add_parser("suites", help="list the available suites")
    p_suites.set_defaults(func=_cmd_bench_suites)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mindist",
        description="The min-dist location selection query (ICDE 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="answer one query")
    _add_instance_args(p_query)
    p_query.add_argument(
        "--method", default="MND", choices=sorted(METHODS), help="query method"
    )
    _add_worker_args(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_compare = sub.add_parser("compare", help="run all methods side by side")
    _add_instance_args(p_compare)
    p_compare.set_defaults(func=_cmd_compare)

    p_profile = sub.add_parser(
        "profile", help="run a query under the tracer and print the span tree"
    )
    _add_instance_args(p_profile)
    p_profile.add_argument(
        "--method",
        default="MND",
        choices=sorted(METHODS) + ["all"],
        help="query method to profile ('all' profiles every method)",
    )
    p_profile.add_argument(
        "--jsonl", help="also append each span tree to this JSON-lines file"
    )
    p_profile.add_argument(
        "--no-counters",
        action="store_true",
        help="hide custom counters in the span tree",
    )
    _add_worker_args(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_sweep = sub.add_parser("sweep", help="rerun one of the paper's experiments")
    p_sweep.add_argument("figure", choices=sorted(_SWEEPS))
    p_sweep.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="cardinality scale (1.0 = paper scale)",
    )
    p_sweep.add_argument("--methods", help="comma-separated subset, e.g. NFC,MND")
    p_sweep.add_argument("--csv", help="also write all runs to this CSV file")
    p_sweep.add_argument(
        "--svg-dir", help="also render SVG figures (one per metric) here"
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_plan = sub.add_parser("plan", help="greedy multi-facility selection")
    _add_instance_args(p_plan)
    p_plan.add_argument("-k", type=int, default=3, help="locations to select")
    p_plan.add_argument("--method", default="MND", choices=sorted(METHODS))
    p_plan.set_defaults(func=_cmd_plan)

    p_close = sub.add_parser("close", help="min-damage facility closure")
    _add_instance_args(p_close)
    p_close.set_defaults(func=_cmd_close)

    p_eval = sub.add_parser("evaluate", help="report on specific candidates")
    _add_instance_args(p_eval)
    p_eval.add_argument("--ids", help="comma-separated candidate ids")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_sim = sub.add_parser("simulate", help="run a motivating-application simulator")
    p_sim.add_argument("world", choices=["city", "game"])
    p_sim.add_argument("--periods", type=int, default=6, help="city budget periods")
    p_sim.add_argument("--ticks", type=int, default=120, help="game ticks")
    p_sim.add_argument("--method", default="MND", choices=sorted(METHODS))
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.set_defaults(func=_cmd_simulate)

    p_repro = sub.add_parser(
        "reproduce", help="regenerate the paper's whole evaluation"
    )
    p_repro.add_argument("--out", default="reproduction", help="output directory")
    p_repro.add_argument("--scale", type=float, default=0.2)
    p_repro.add_argument("--figures", help="comma-separated subset, e.g. fig11,fig14")
    p_repro.set_defaults(func=_cmd_reproduce)

    p_stats = sub.add_parser(
        "stats", help="workspace diagnostics: dnn stats, selectivity, pruning"
    )
    _add_instance_args(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    _add_pages_parser(sub)
    _add_bench_parser(sub)
    _add_service_parsers(sub)
    _add_loadgen_parser(sub)
    _add_shard_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
