"""Reproduction of "The Min-dist Location Selection Query" (ICDE 2012).

Given clients ``C``, existing facilities ``F`` and candidate locations
``P`` in the plane, select the candidate that minimises the average
distance between a client and its nearest facility.  The package
provides the paper's four query-processing methods (SS, QVC, NFC, MND)
over a simulated disk with exact I/O accounting, plus every substrate
they need: a from-scratch R-tree with RNN-tree and MND-augmented
variants, NN-join precomputation, dataset generators and the full
experiment harness regenerating the paper's figures.

Entry points:

* :func:`repro.core.select_location` — one-call query answering.
* :class:`repro.core.Workspace` + the method classes — full control.
* :mod:`repro.experiments` — the paper's evaluation, figure by figure.
"""

from repro.core import (
    METHODS,
    MaximumNFCDistance,
    NearestFacilityCircle,
    QuasiVoronoiCell,
    SelectionResult,
    SequentialScan,
    Workspace,
    make_selector,
    select_location,
)

__version__ = "1.0.0"

__all__ = [
    "METHODS",
    "MaximumNFCDistance",
    "NearestFacilityCircle",
    "QuasiVoronoiCell",
    "SelectionResult",
    "SequentialScan",
    "Workspace",
    "__version__",
    "make_selector",
    "select_location",
]
