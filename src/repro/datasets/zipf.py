"""Zipfian sampling.

Table IV uses a Zipfian distribution with ``N = 1000`` ranks and skew
``alpha`` in {0.1, 0.3, 0.6, 0.9, 1.2}.  ``ZipfSampler`` draws ranks
``i`` in ``1..N`` with probability proportional to ``1 / i^alpha`` by
inverting the precomputed CDF (O(log N) per draw).
"""

from __future__ import annotations

import bisect
import random


class ZipfSampler:
    """Draws Zipf-distributed ranks in ``1..n`` with exponent ``alpha``."""

    def __init__(self, n: int, alpha: float, rng: random.Random):
        if n < 1:
            raise ValueError("ZipfSampler needs n >= 1")
        if alpha < 0:
            raise ValueError("ZipfSampler needs alpha >= 0")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = [1.0 / (i ** alpha) for i in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        self._cdf: list[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against round-off

    def sample(self) -> int:
        """One rank in ``1..n`` (rank 1 is the most probable)."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1

    def probability(self, rank: int) -> float:
        """P(rank); ranks outside ``1..n`` have probability 0."""
        if rank < 1 or rank > self.n:
            return 0.0
        lo = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - lo
