"""Point-set persistence.

Simple CSV import/export so generated instances can be saved, inspected
or swapped for externally obtained files (e.g. the original DCW extracts
if a user has them) without touching the experiment code.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.geometry.point import Point


def save_points_csv(path: str | Path, points: Iterable[Point]) -> int:
    """Write ``x,y`` rows; returns the number of points written."""
    count = 0
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["x", "y"])
        for p in points:
            writer.writerow([repr(float(p[0])), repr(float(p[1]))])
            count += 1
    return count


def load_points_csv(path: str | Path) -> list[Point]:
    """Read points written by :func:`save_points_csv` (header required)."""
    out: list[Point] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:2]] != ["x", "y"]:
            raise ValueError(f"{path}: expected a CSV with an 'x,y' header")
        for row in reader:
            if not row:
                continue
            out.append(Point(float(row[0]), float(row[1])))
    return out
