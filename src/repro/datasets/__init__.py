"""Dataset generation for the experimental study (Section VIII).

Synthetic data follows Table IV of the paper: a 1000x1000 space domain
with uniform, Gaussian and Zipfian point distributions.  The real DCW
datasets (Digital Chart of the World populated places / cultural
landmarks) are not redistributable and the hosting site is offline, so
:mod:`repro.datasets.real` substitutes calibrated cluster processes with
the paper's exact cardinalities — see DESIGN.md §4.
"""

from repro.datasets.generators import (
    DOMAIN,
    SpatialInstance,
    gaussian_points,
    make_instance,
    uniform_points,
    zipfian_points,
)
from repro.datasets.real import real_instance
from repro.datasets.io import load_points_csv, save_points_csv
from repro.datasets.zipf import ZipfSampler

__all__ = [
    "DOMAIN",
    "SpatialInstance",
    "ZipfSampler",
    "gaussian_points",
    "load_points_csv",
    "make_instance",
    "real_instance",
    "save_points_csv",
    "uniform_points",
    "zipfian_points",
]
