"""Substitutes for the Digital Chart of the World real datasets.

The paper's real-data experiments (Fig. 14) use two dataset groups from
rtreeportal.org's Digital Chart of the World extracts:

* **US**: populated places as clients (15 206) and cultural landmarks
  split randomly in half into facilities (3 008) and potential
  locations (3 009);
* **NA**: the same for North America (24 493 / 4 601 / 4 602).

Those files are no longer distributable offline, so this module builds a
*calibrated substitute*: a two-level Neyman–Scott (Thomas) cluster
process.  Real populated-place data is strongly clustered at two scales
(metro regions, towns within regions) with a thin uniform background —
exactly what a parent/child cluster process produces.  The experiments
only depend on cardinalities and on this clustering (which drives NFC
radii and R-tree overlap), so the substitution preserves the comparative
behaviour the figure reports; see DESIGN.md §4.

Landmarks are generated as one point set and split 50/50 at random into
``F`` and ``P``, mirroring the paper's procedure; landmark parents are
correlated with the client parents because real landmarks concentrate
where people live.
"""

from __future__ import annotations

import random

from repro.datasets.generators import DOMAIN, SpatialInstance, _resolve_rng
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Cardinalities quoted in Section VIII-A of the paper.
REAL_GROUPS: dict[str, tuple[int, int, int]] = {
    "US": (15206, 3008, 3009),
    "NA": (24493, 4601, 4602),
}


def _thomas_process(
    n: int,
    parents: list[Point],
    child_sigma: float,
    background_fraction: float,
    rng: random.Random,
    domain: Rect,
) -> list[Point]:
    """``n`` points: Gaussian offspring around ``parents`` plus a thin
    uniform background, rejected to ``domain``."""
    out: list[Point] = []
    while len(out) < n:
        if rng.random() < background_fraction:
            p = Point(
                rng.uniform(domain.xmin, domain.xmax),
                rng.uniform(domain.ymin, domain.ymax),
            )
        else:
            px, py = rng.choice(parents)
            p = Point(rng.gauss(px, child_sigma), rng.gauss(py, child_sigma))
            if not domain.contains_point(p):
                continue
        out.append(p)
    return out


def real_instance(
    group: str,
    rng: random.Random | int | None = None,
    domain: Rect = DOMAIN,
    scale: float = 1.0,
) -> SpatialInstance:
    """A substitute for the paper's ``US`` or ``NA`` dataset group.

    ``scale`` < 1 shrinks all three cardinalities proportionally (used
    by the fast benchmark suite); ``scale = 1`` reproduces the paper's
    exact sizes.
    """
    if group not in REAL_GROUPS:
        raise ValueError(f"unknown real group {group!r}; expected US or NA")
    n_c, n_f, n_p = (max(1, int(round(v * scale))) for v in REAL_GROUPS[group])
    r = _resolve_rng(rng)

    # Level 1: metro-region parents; level 2: town parents around them.
    n_regions = max(4, n_c // 1500)
    regions = [
        Point(r.uniform(domain.xmin, domain.xmax), r.uniform(domain.ymin, domain.ymax))
        for _ in range(n_regions)
    ]
    towns: list[Point] = []
    region_sigma = min(domain.width, domain.height) * 0.08
    for _ in range(max(8, n_c // 150)):
        rx, ry = r.choice(regions)
        towns.append(Point(r.gauss(rx, region_sigma), r.gauss(ry, region_sigma)))

    town_sigma = min(domain.width, domain.height) * 0.015
    clients = _thomas_process(
        n_c, towns, town_sigma, background_fraction=0.05, rng=r, domain=domain
    )
    # Landmarks cluster around the same towns but more loosely.
    landmarks = _thomas_process(
        n_f + n_p,
        towns,
        town_sigma * 2.0,
        background_fraction=0.10,
        rng=r,
        domain=domain,
    )
    r.shuffle(landmarks)
    facilities = landmarks[:n_f]
    potentials = landmarks[n_f:]
    return SpatialInstance(
        name=f"real-{group}" + (f"@{scale:g}" if scale != 1.0 else ""),
        clients=clients,
        facilities=facilities,
        potentials=potentials,
        domain=domain,
    )
