"""Synthetic point generators (Table IV).

All generators emit points inside the paper's 1000x1000 space domain and
take an explicit ``random.Random`` or seed, so every experiment is
reproducible.

Interpretation notes for under-specified parameters:

* *Gaussian*: the paper lists mu = 0 and sigma^2 in {0.125 .. 2} for a
  1000-wide domain, so the parameters are clearly in normalised units.
  We map a standard-normal draw ``z ~ N(0, sigma^2)`` to
  ``center + z * DOMAIN_SCALE`` with ``DOMAIN_SCALE = 250`` and reject
  draws outside the domain.  Small sigma^2 concentrates points at the
  centre; sigma^2 = 2 approaches a broad spread — matching the paper's
  observation that "increasing sigma^2 leads to less dense data points
  at the center".
* *Zipfian*: ranks from a ``ZipfSampler(N=1000, alpha)`` choose one of
  ``N`` equal-width bins per axis (independently), with uniform jitter
  inside the bin.  Larger alpha skews mass toward the low-coordinate
  corner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.datasets.zipf import ZipfSampler

#: The paper's space domain ("generated with a space domain of 1000x1000").
DOMAIN = Rect(0.0, 0.0, 1000.0, 1000.0)

#: Standard deviation multiplier mapping normalised Gaussian units to
#: domain units (see module docstring).
DOMAIN_SCALE = 250.0


def _resolve_rng(rng: random.Random | int | None) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def uniform_points(
    n: int, rng: random.Random | int | None = None, domain: Rect = DOMAIN
) -> list[Point]:
    """``n`` points uniformly distributed over ``domain``."""
    r = _resolve_rng(rng)
    return [
        Point(r.uniform(domain.xmin, domain.xmax), r.uniform(domain.ymin, domain.ymax))
        for _ in range(n)
    ]


def gaussian_points(
    n: int,
    sigma_sq: float = 1.0,
    rng: random.Random | int | None = None,
    domain: Rect = DOMAIN,
) -> list[Point]:
    """``n`` points from a centred Gaussian with variance ``sigma_sq``
    (normalised units; see module docstring), rejected to ``domain``."""
    if sigma_sq <= 0:
        raise ValueError("sigma_sq must be positive")
    r = _resolve_rng(rng)
    sigma = sigma_sq ** 0.5 * DOMAIN_SCALE
    cx, cy = domain.center
    out: list[Point] = []
    while len(out) < n:
        p = Point(r.gauss(cx, sigma), r.gauss(cy, sigma))
        if domain.contains_point(p):
            out.append(p)
    return out


def zipfian_points(
    n: int,
    alpha: float = 0.9,
    n_ranks: int = 1000,
    rng: random.Random | int | None = None,
    domain: Rect = DOMAIN,
) -> list[Point]:
    """``n`` points with Zipf-distributed per-axis bin choices
    (Table IV: N = 1000 bins, skew ``alpha``)."""
    r = _resolve_rng(rng)
    sampler = ZipfSampler(n_ranks, alpha, r)
    bin_w = domain.width / n_ranks
    bin_h = domain.height / n_ranks
    out: list[Point] = []
    for _ in range(n):
        bx = sampler.sample() - 1
        by = sampler.sample() - 1
        out.append(
            Point(
                domain.xmin + (bx + r.random()) * bin_w,
                domain.ymin + (by + r.random()) * bin_h,
            )
        )
    return out


@dataclass
class SpatialInstance:
    """One query instance: clients, facilities and potential locations.

    ``client_weights`` (optional, aligned with ``clients``) scales each
    client's contribution to the objective; ``None`` means the paper's
    unweighted setting (all 1.0).
    """

    name: str
    clients: list[Point]
    facilities: list[Point]
    potentials: list[Point]
    domain: Rect = field(default=DOMAIN)
    client_weights: list[float] | None = None

    def __post_init__(self) -> None:
        if self.client_weights is not None:
            if len(self.client_weights) != len(self.clients):
                raise ValueError(
                    "client_weights must align with clients "
                    f"({len(self.client_weights)} != {len(self.clients)})"
                )
            if any(w < 0 for w in self.client_weights):
                raise ValueError("client weights must be non-negative")

    @property
    def n_c(self) -> int:
        return len(self.clients)

    @property
    def n_f(self) -> int:
        return len(self.facilities)

    @property
    def n_p(self) -> int:
        return len(self.potentials)

    def __repr__(self) -> str:
        return (
            f"SpatialInstance({self.name!r}, n_c={self.n_c}, n_f={self.n_f}, "
            f"n_p={self.n_p})"
        )


def make_instance(
    n_c: int,
    n_f: int,
    n_p: int,
    distribution: str = "uniform",
    rng: random.Random | int | None = None,
    name: str | None = None,
    **dist_params,
) -> SpatialInstance:
    """Generate a full query instance with one distribution for all sets.

    ``distribution`` is ``"uniform"``, ``"gaussian"`` (accepts
    ``sigma_sq``) or ``"zipfian"`` (accepts ``alpha`` and ``n_ranks``).
    All three datasets are drawn independently from the same
    distribution, following the paper's synthetic setup.
    """
    r = _resolve_rng(rng)
    generators: dict[str, Callable[..., Sequence[Point]]] = {
        "uniform": uniform_points,
        "gaussian": gaussian_points,
        "zipfian": zipfian_points,
    }
    if distribution not in generators:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(generators)}"
        )
    gen = generators[distribution]
    return SpatialInstance(
        name=name or f"{distribution}(n_c={n_c},n_f={n_f},n_p={n_p})",
        clients=list(gen(n_c, rng=r, **dist_params)),
        facilities=list(gen(n_f, rng=r, **dist_params)),
        potentials=list(gen(n_p, rng=r, **dist_params)),
    )
