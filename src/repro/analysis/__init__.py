"""Analytical cost models from Section VII of the paper."""

from repro.analysis.cost_model import CostModel

__all__ = ["CostModel"]
