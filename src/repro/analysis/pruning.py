"""Join pruning profiler.

Section VII's cost analysis hinges on the *pruning power* ``w`` — the
fraction of node pairs the NFC/MND joins never visit.  This module
measures it directly, per tree level, by replaying the join predicates
over the index structures (without touching the I/O counters):

* how many node pairs exist at each level combination,
* how many survive the intersection predicate (NFC) or the MND test,
* the resulting per-level and total pruning powers.

The profile quantifies the paper's "the area covered by the MND region
is very similar to that covered by the MBR of the NFCs": the two
methods' survivor counts track each other closely at every level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.workspace import Workspace
from repro.rtree.mnd_tree import MNDTree
from repro.rtree.node import Node
from repro.rtree.rtree import RTree


@dataclass
class LevelProfile:
    """Pair statistics for one (P-level, C-level) combination."""

    level_p: int
    level_c: int
    considered: int = 0
    survived: int = 0
    #: Page reads the real join performs for the survivors at this level
    #: (2 per branch-branch survivor, 1 when one side is carried down).
    reads: int = 0

    @property
    def pruning_power(self) -> float:
        if self.considered == 0:
            return 0.0
        return 1.0 - self.survived / self.considered


@dataclass
class JoinProfile:
    """A full profile of one join method's traversal."""

    method: str
    levels: dict[tuple[int, int], LevelProfile] = field(default_factory=dict)

    def _level(self, level_p: int, level_c: int) -> LevelProfile:
        key = (level_p, level_c)
        if key not in self.levels:
            self.levels[key] = LevelProfile(level_p, level_c)
        return self.levels[key]

    @property
    def considered(self) -> int:
        return sum(lv.considered for lv in self.levels.values())

    @property
    def survived(self) -> int:
        return sum(lv.survived for lv in self.levels.values())

    @property
    def total_reads(self) -> int:
        """Page reads the real join performs: both roots plus the
        survivor-triggered child reads."""
        return 2 + sum(lv.reads for lv in self.levels.values())

    @property
    def pruning_power(self) -> float:
        if self.considered == 0:
            return 0.0
        return 1.0 - self.survived / self.considered

    def format(self) -> str:
        lines = [
            f"{self.method} join profile: {self.survived}/{self.considered} "
            f"node pairs survive (w = {self.pruning_power:.3f})"
        ]
        for key in sorted(self.levels):
            lv = self.levels[key]
            lines.append(
                f"  P-level {lv.level_p} x C-level {lv.level_c}: "
                f"{lv.survived}/{lv.considered} survive "
                f"(w = {lv.pruning_power:.3f})"
            )
        return "\n".join(lines)


def _profile_join(
    tree_p: RTree,
    tree_c: RTree,
    predicate,
    method: str,
) -> JoinProfile:
    """Replay a synchronized traversal, counting pairs per level.

    ``predicate(entry_or_node_c, mbr_p, mnd_c)`` decides descent; the
    concrete predicates below adapt it for NFC and MND.
    """
    profile = JoinProfile(method)
    if tree_p.num_entries == 0 or tree_c.num_entries == 0:
        return profile

    def recurse(node_p: Node, node_c: Node, mnd_c: float | None) -> None:
        if node_p.is_leaf and node_c.is_leaf:
            return
        if node_p.is_leaf:
            mbr_p = node_p.mbr()
            level = profile._level(node_p.level, node_c.level - 1)
            for e_c in node_c.entries:
                level.considered += 1
                if predicate(e_c.mbr, mbr_p, e_c.mnd):
                    level.survived += 1
                    level.reads += 1
                    recurse(node_p, tree_c.node(e_c.child_id), e_c.mnd)
        elif node_c.is_leaf:
            mbr_c = node_c.mbr()
            level = profile._level(node_p.level - 1, node_c.level)
            for e_p in node_p.entries:
                level.considered += 1
                if predicate(mbr_c, e_p.mbr, mnd_c):
                    level.survived += 1
                    level.reads += 1
                    recurse(tree_p.node(e_p.child_id), node_c, mnd_c)
        else:
            level = profile._level(node_p.level - 1, node_c.level - 1)
            for e_p in node_p.entries:
                for e_c in node_c.entries:
                    level.considered += 1
                    if predicate(e_c.mbr, e_p.mbr, e_c.mnd):
                        level.survived += 1
                        level.reads += 2
                        recurse(
                            tree_p.node(e_p.child_id),
                            tree_c.node(e_c.child_id),
                            e_c.mnd,
                        )

    root_c = tree_c.node(tree_c.root_id)
    root_mnd = tree_c.compute_mnd(root_c) if isinstance(tree_c, MNDTree) else None
    recurse(tree_p.node(tree_p.root_id), root_c, root_mnd)
    return profile


def profile_nfc_join(ws: Workspace) -> JoinProfile:
    """Pruning profile of the NFC join (``R_P`` x ``R_C^n``)."""

    def predicate(mbr_c, mbr_p, __mnd):
        return mbr_c.intersects(mbr_p)

    return _profile_join(ws.r_p, ws.rnn_tree, predicate, "NFC")


def profile_mnd_join(ws: Workspace) -> JoinProfile:
    """Pruning profile of the MND join (``R_P`` x ``R_C^m``)."""

    def predicate(mbr_c, mbr_p, mnd):
        return mbr_c.min_dist_rect(mbr_p) < mnd

    return _profile_join(ws.r_p, ws.mnd_tree, predicate, "MND")
