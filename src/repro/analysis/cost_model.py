"""The I/O cost model of Table III.

Section VII derives per-method I/O costs from page capacities:

=======  ==========================================================
SS       ``n_p * n_c / C_m^2``
QVC      ``n_p/C_m + k * n_p*n_f/(C_e - 1) + n_p*(1 - w_q)*log_Ce(n_c)/C_m``
NFC      ``(1 - w_n) * n_c*n_p / (C_e - 1)^2``
MND      ``(1 - w_m) * n_c*n_p / (C_e - 1)^2``
=======  ==========================================================

with ``C_m`` the block capacity, ``C_e`` the effective R-tree fanout,
``k`` the fraction of ``R_F`` nodes a NN query touches and ``w`` the
pruning power of the joins.  The model exposes:

* forward prediction given assumed ``k`` / ``w`` values,
* inversion of measured I/O counts into empirical pruning powers,
* the paper's crossover condition ``IO_q > IO_s`` iff
  ``C_m^2 * IO_nn > n_c`` (Section VII-B).

The reproduction uses the layouts' real capacities (the client file
holds 28-byte records, points 20-byte ones), so predictions are made
with the per-dataset ``C_m`` rather than the paper's single symbol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.records import (
    CLIENT_RECORD,
    PAGE_SIZE,
    POINT_RECORD,
    RTREE_ENTRY,
)


@dataclass(frozen=True)
class CostModel:
    """Table III's formulas, parameterised by page geometry."""

    page_size: int = PAGE_SIZE
    #: Block capacity of the client file (``C_m`` for C).
    cm_client: int = CLIENT_RECORD.capacity(PAGE_SIZE)
    #: Block capacity of the potential-location file (``C_m`` for P).
    cm_point: int = POINT_RECORD.capacity(PAGE_SIZE)
    #: Effective R-tree fanout ``C_e`` (~70 % of max entries).
    ce: int = RTREE_ENTRY.effective_capacity(PAGE_SIZE)

    # ------------------------------------------------------------------
    # Structure sizes
    # ------------------------------------------------------------------
    def rtree_nodes(self, n: int) -> float:
        """Expected node count ``n / (C_e - 1)`` of an R-tree over ``n``
        entries (Section VII, geometric series approximation)."""
        return n / (self.ce - 1)

    def rtree_height(self, n: int) -> int:
        """Average height ``ceil(log_Ce n)``."""
        if n <= 1:
            return 1
        return max(1, math.ceil(math.log(n, self.ce)))

    # ------------------------------------------------------------------
    # Per-method I/O predictions
    # ------------------------------------------------------------------
    def io_ss(self, n_c: int, n_p: int) -> float:
        """``IO_s``: every client block re-read per potential block."""
        p_blocks = math.ceil(n_p / self.cm_point)
        c_blocks = math.ceil(n_c / self.cm_client)
        return p_blocks * c_blocks + p_blocks

    def io_nn_query(self, n_f: int, k: float) -> float:
        """``IO_nn``: one best-first NN query touching a fraction ``k``
        of the facility tree's nodes."""
        return k * self.rtree_nodes(n_f)

    def io_qvc(self, n_c: int, n_f: int, n_p: int, k: float, w_q: float) -> float:
        """``IO_q = IO_q1 + IO_q2 + IO_q3`` (Section VII-B)."""
        io_q1 = math.ceil(n_p / self.cm_point)
        io_q2 = n_p * self.io_nn_query(n_f, k)
        io_q3 = io_q1 * (1.0 - w_q) * self.rtree_height(n_c)
        return io_q1 + io_q2 + io_q3

    def io_join_worst_case(self, n_c: int, n_p: int) -> float:
        """The un-pruned join bound ``n_c * n_p / (C_e - 1)^2`` shared by
        NFC and MND."""
        return self.rtree_nodes(n_c) * self.rtree_nodes(n_p)

    def io_nfc(self, n_c: int, n_p: int, w_n: float) -> float:
        return (1.0 - w_n) * self.io_join_worst_case(n_c, n_p)

    def io_mnd(self, n_c: int, n_p: int, w_m: float) -> float:
        return (1.0 - w_m) * self.io_join_worst_case(n_c, n_p)

    # ------------------------------------------------------------------
    # Inversion and relations
    # ------------------------------------------------------------------
    def pruning_power(self, measured_io: int, n_c: int, n_p: int) -> float:
        """Empirical ``w`` from a measured NFC/MND join I/O count."""
        bound = self.io_join_worst_case(n_c, n_p)
        if bound <= 0:
            return 0.0
        return 1.0 - measured_io / bound

    def qvc_exceeds_ss(self, n_c: int, io_nn: float) -> bool:
        """The paper's crossover condition: ``IO_q > IO_s`` whenever
        ``C_m^2 * IO_nn > n_c`` (using the client-file ``C_m``)."""
        return self.cm_client ** 2 * io_nn > n_c
