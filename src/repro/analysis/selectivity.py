"""Analytic selectivity estimates under uniform data.

Treating a uniform facility set as a spatial Poisson process with
intensity ``lambda_f = n_f / A`` gives closed forms for the quantities
that drive every method's cost:

* the NFD of a random client: ``P(dnn > r) = exp(-lambda_f * pi * r^2)``,
  hence ``E[dnn] = 1 / (2 sqrt(lambda_f))`` and
  ``E[dnn^k] = Gamma(k/2 + 1) / (lambda_f * pi)^(k/2)``;
* the probability that a random candidate influences a random client is
  ``pi * E[dnn^2] / A = 1 / n_f`` — giving the strikingly simple
  ``E[|IS(p)|] = n_c / n_f``;
* the expected distance reduction of a random candidate,
  ``E[dr(p)] = n_c * pi * E[dnn^3] / (3 A)``.

These estimates explain the Fig. 11 trend quantitatively (pruning
regions shrink like ``1/sqrt(n_f)``) and are validated empirically by
the test-suite (within boundary-effect tolerance).
"""

from __future__ import annotations

import math

from repro.geometry.rect import Rect
from repro.datasets.generators import DOMAIN


def expected_dnn(n_f: int, domain: Rect = DOMAIN) -> float:
    """``E[dnn(c, F)]`` for uniform clients and facilities."""
    if n_f < 1:
        raise ValueError("need at least one facility")
    intensity = n_f / domain.area
    return 1.0 / (2.0 * math.sqrt(intensity))


def expected_dnn_moment(n_f: int, k: int, domain: Rect = DOMAIN) -> float:
    """``E[dnn^k]`` (k-th moment of the Poisson NN distance)."""
    if n_f < 1:
        raise ValueError("need at least one facility")
    if k < 1:
        raise ValueError("moment order must be >= 1")
    intensity = n_f / domain.area
    return math.gamma(k / 2.0 + 1.0) / (intensity * math.pi) ** (k / 2.0)


def expected_influence_size(n_c: int, n_f: int) -> float:
    """``E[|IS(p)|]`` for a random candidate: ``n_c / n_f``.

    Derivation: the candidate influences a client iff it falls in the
    client's NFC, whose expected area is ``pi * E[dnn^2] = A / n_f``;
    under uniformity that event has probability ``1 / n_f`` per client,
    independent of the domain size.
    """
    if n_f < 1:
        raise ValueError("need at least one facility")
    return n_c / n_f


def expected_dr(n_c: int, n_f: int, domain: Rect = DOMAIN) -> float:
    """``E[dr(p)]`` for a random candidate.

    A client at NFC radius ``rho`` contributes
    ``integral_0^rho (rho - r) * 2 pi r dr / A = pi rho^3 / (3A)``
    in expectation over the candidate's position; summing over clients
    and taking the NFD moment gives the closed form.
    """
    return n_c * math.pi * expected_dnn_moment(n_f, 3, domain) / (3.0 * domain.area)


def expected_nfc_area(n_f: int, domain: Rect = DOMAIN) -> float:
    """Expected area of one nearest-facility circle: ``A / n_f``."""
    return math.pi * expected_dnn_moment(n_f, 2, domain)
