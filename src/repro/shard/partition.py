"""Deterministic spatial partitioning of clients into shard tiles.

The unit of decomposition is the **tile**, never the shard count: a
partition fixes ``n_tiles`` spatial tiles of clients in one global tile
order, and a deployment assigns contiguous tile ranges to however many
shards it runs (:func:`repro.shard.executor.assign_tiles`).  Changing
the shard count only changes *placement* — every per-tile partial and
the fixed-order merge are untouched — which is what makes the sharded
answer byte-identical to the serial tile-order reference at any K (the
execution engine's worker-independent task decomposition, one level up).

Partitioning rules:

* every tile holds a non-empty subset of the clients, with their global
  ``cid`` and precomputed ``dnn`` carried over unchanged (the tile
  workspace is handed the parent's ``dnn`` slice, so no per-tile join
  can ever reproduce a different float);
* facilities and potential locations are **replicated** into every tile
  — ``dr`` sums are additive over any client partition, so each tile
  scores the full candidate table independently and partials merge by
  plain vector addition;
* the routing regions cover the whole plane (``str``: slab/row cut
  lines extended to infinity; ``grid``: out-of-bounds points clamp,
  empty cells route to the nearest non-empty cell), so any future point
  — a client arriving via ``update`` — maps to exactly one owning tile;
* fresh client ids are minted with tile stride
  (:meth:`TileWorkspace._take_client_id`), so ids stay globally unique
  across tiles without any coordination.

Two schemes:

* ``str`` (default) — a Sort-Tile-Recursive split: clients sorted by
  ``(x, y, cid)`` into near-equal-count vertical slabs, each slab sorted
  by ``(y, x, cid)`` into rows.  Always produces exactly ``n_tiles``
  non-empty tiles (ties on the cut coordinate are pushed across the
  boundary so coordinate routing reproduces the assignment).
* ``grid`` — a ``g x g`` uniform grid over the client bounding box with
  ``g = ceil(sqrt(n_tiles))``; the non-empty cells become the tiles in
  row-major order, so the realised tile count may differ from the
  target.

:func:`write_partition` persists each tile through the existing
:func:`~repro.core.diskmode.persist_indexes` manifests plus a top-level
``shards.json`` recording tile bounds, counts, routing and the
replicated site tables; :func:`load_partition` reopens it without the
source workspace.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.diskmode import DiskWorkspace, load_persisted, persist_indexes
from repro.core.dynamic import DynamicWorkspace
from repro.core.types import Site
from repro.core.workspace import Workspace
from repro.datasets.generators import SpatialInstance
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: The top-level partition manifest, next to the per-tile directories.
SHARDS_MANIFEST = "shards.json"

#: The per-tile sidecar holding what the page files cannot: global cids
#: and the exact client rows for dynamic reconstruction.
TILE_MANIFEST = "tile.json"

SCHEMES = ("str", "grid")


# ----------------------------------------------------------------------
# Tile plan: fixed tile order + total-coverage routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileSpec:
    """One tile: its id (= global merge position) and client extent."""

    tile_id: int
    n_c: int
    #: MBR of the tile's clients ``(xmin, ymin, xmax, ymax)`` —
    #: informational; routing uses the scheme's cut lines, not this box.
    bounds: tuple[float, float, float, float]


@dataclass(frozen=True)
class TilePlan:
    """The fixed tile decomposition and its point-routing function.

    ``routing`` is the scheme-specific JSON-safe payload:

    * ``str`` — ``slab_cuts`` (interior x boundaries), ``row_cuts``
      (per-slab interior y boundaries) and ``slab_offsets`` (first tile
      id of each slab);
    * ``grid`` — ``bounds`` of the cell lattice, ``nx``/``ny`` and
      ``cell_tiles`` (row-major cell -> owning tile id, empty cells
      pre-routed to the nearest non-empty cell center, ties to the
      smaller tile id).
    """

    scheme: str
    tiles: tuple[TileSpec, ...]
    routing: dict

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    def route(self, x: float, y: float) -> int:
        """The owning tile of any point in the plane."""
        if self.scheme == "str":
            slab = bisect_right(self.routing["slab_cuts"], x)
            row = bisect_right(self.routing["row_cuts"][slab], y)
            return self.routing["slab_offsets"][slab] + row
        xmin, ymin, xmax, ymax = self.routing["bounds"]
        nx, ny = self.routing["nx"], self.routing["ny"]
        ix = 0 if xmax <= xmin else min(nx - 1, int((x - xmin) / (xmax - xmin) * nx))
        iy = 0 if ymax <= ymin else min(ny - 1, int((y - ymin) / (ymax - ymin) * ny))
        ix, iy = max(0, ix), max(0, iy)
        return self.routing["cell_tiles"][iy * nx + ix]

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "tiles": [
                {"tile_id": t.tile_id, "n_c": t.n_c, "bounds": list(t.bounds)}
                for t in self.tiles
            ],
            "routing": self.routing,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TilePlan":
        return cls(
            scheme=data["scheme"],
            tiles=tuple(
                TileSpec(t["tile_id"], t["n_c"], tuple(t["bounds"]))
                for t in data["tiles"]
            ),
            routing=data["routing"],
        )


def _mbr(points: Sequence[tuple[float, float]]) -> tuple[float, float, float, float]:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (min(xs), min(ys), max(xs), max(ys))


def _split_sizes(n: int, parts: int) -> list[int]:
    """``n`` items into ``parts`` near-equal chunks, earlier chunks larger."""
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _cut_points(order: list[int], sizes: list[int], coord) -> list[int]:
    """Split positions along ``order``, pushed past ties on ``coord``.

    Routing later separates chunks by comparing the cut coordinate, so a
    run of equal coordinates must never straddle a boundary: the split
    advances until the coordinate strictly increases.
    """
    cuts: list[int] = []
    pos = 0
    for size in sizes[:-1]:
        pos = max(pos + size, cuts[-1] + 1 if cuts else 1)
        while pos < len(order) and coord(order[pos - 1]) == coord(order[pos]):
            pos += 1
        if pos >= len(order):
            raise ValueError(
                "cannot split clients here: a run of equal coordinates "
                "swallows a whole tile — use fewer tiles"
            )
        cuts.append(pos)
    return cuts


def _chunks(order: list[int], cuts: list[int]) -> list[list[int]]:
    bounds = [0, *cuts, len(order)]
    return [order[a:b] for a, b in zip(bounds, bounds[1:])]


def _str_plan(
    points: Sequence[tuple[float, float]], n_tiles: int
) -> tuple[TilePlan, list[list[int]]]:
    n = len(points)
    slabs = math.ceil(math.sqrt(n_tiles))
    rows_per_slab = _split_sizes(n_tiles, slabs)
    order = sorted(range(n), key=lambda i: (points[i][0], points[i][1], i))
    # Point budget per slab is proportional to its row count, so the
    # final tiles are near-equal no matter how n_tiles factors.
    tile_sizes = _split_sizes(n, n_tiles)
    slab_sizes = []
    at = 0
    for rows in rows_per_slab:
        slab_sizes.append(sum(tile_sizes[at : at + rows]))
        at += rows
    slab_cuts = _cut_points(order, slab_sizes, lambda i: points[i][0])
    slab_members = _chunks(order, slab_cuts)

    members: list[list[int]] = []
    row_cuts: list[list[float]] = []
    slab_offsets: list[int] = []
    for slab, rows in zip(slab_members, rows_per_slab):
        slab_offsets.append(len(members))
        by_y = sorted(slab, key=lambda i: (points[i][1], points[i][0], i))
        cuts = _cut_points(by_y, _split_sizes(len(by_y), rows), lambda i: points[i][1])
        row_cuts.append([points[by_y[c]][1] for c in cuts])
        members.extend(_chunks(by_y, cuts))

    tiles = tuple(
        TileSpec(t, len(m), _mbr([points[i] for i in m]))
        for t, m in enumerate(members)
    )
    plan = TilePlan(
        scheme="str",
        tiles=tiles,
        routing={
            "slab_cuts": [points[order[c]][0] for c in slab_cuts],
            "row_cuts": row_cuts,
            "slab_offsets": slab_offsets,
        },
    )
    # Within a tile, clients keep global-cid order.
    return plan, [sorted(m) for m in members]


def _grid_plan(
    points: Sequence[tuple[float, float]], n_tiles: int
) -> tuple[TilePlan, list[list[int]]]:
    g = math.ceil(math.sqrt(n_tiles))
    xmin, ymin, xmax, ymax = _mbr(points)
    bounds = (xmin, ymin, xmax, ymax)

    def cell_of(x: float, y: float) -> tuple[int, int]:
        ix = 0 if xmax <= xmin else min(g - 1, int((x - xmin) / (xmax - xmin) * g))
        iy = 0 if ymax <= ymin else min(g - 1, int((y - ymin) / (ymax - ymin) * g))
        return ix, iy

    by_cell: dict[int, list[int]] = {}
    for i, (x, y) in enumerate(points):
        ix, iy = cell_of(x, y)
        by_cell.setdefault(iy * g + ix, []).append(i)

    occupied = sorted(by_cell)  # row-major = the fixed global tile order
    tile_of_cell = {cell: t for t, cell in enumerate(occupied)}
    cell_w = (xmax - xmin) / g if xmax > xmin else 0.0
    cell_h = (ymax - ymin) / g if ymax > ymin else 0.0

    def center(cell: int) -> tuple[float, float]:
        iy, ix = divmod(cell, g)
        return (xmin + (ix + 0.5) * cell_w, ymin + (iy + 0.5) * cell_h)

    cell_tiles: list[int] = []
    for cell in range(g * g):
        if cell in tile_of_cell:
            cell_tiles.append(tile_of_cell[cell])
            continue
        # Empty cell: route to the nearest occupied cell center, ties
        # resolving to the smaller tile id (occupied is id-ordered).
        cx, cy = center(cell)
        best, best_d = 0, math.inf
        for t, occ in enumerate(occupied):
            ox, oy = center(occ)
            d = (ox - cx) ** 2 + (oy - cy) ** 2
            if d < best_d:
                best, best_d = t, d
        cell_tiles.append(best)

    members = [sorted(by_cell[cell]) for cell in occupied]
    tiles = tuple(
        TileSpec(t, len(m), _mbr([points[i] for i in m]))
        for t, m in enumerate(members)
    )
    plan = TilePlan(
        scheme="grid",
        tiles=tiles,
        routing={
            "bounds": list(bounds),
            "nx": g,
            "ny": g,
            "cell_tiles": cell_tiles,
        },
    )
    return plan, members


# ----------------------------------------------------------------------
# Tile workspaces
# ----------------------------------------------------------------------
class TileWorkspace(DynamicWorkspace):
    """One tile's workspace: global cids, stride-minted fresh ids.

    Clients carry their **global** ids (reassigned right after
    construction, before any index is built), so a coordinator can route
    ``remove_client`` by id across tiles without a directory.  Fresh ids
    minted by ``add_client`` are ``cid_stride_base + tile_id + k *
    n_tiles`` — congruent to the tile id modulo the tile count — so
    concurrent tiles can never collide.
    """

    def __init__(
        self,
        instance: SpatialInstance,
        tile_id: int,
        n_tiles: int,
        cids: Sequence[int],
        cid_stride_base: int,
        **kwargs,
    ):
        super().__init__(instance, **kwargs)
        if len(cids) != len(self.clients):
            raise ValueError(
                f"tile {tile_id}: {len(cids)} cids for {len(self.clients)} clients"
            )
        for client, cid in zip(self.clients, cids):
            client.cid = int(cid)
        self.tile_id = tile_id
        self.n_tiles = n_tiles
        self.cid_stride_base = cid_stride_base

    def _take_client_id(self) -> int:
        nxt = self.__dict__.get("_tile_cid_next")
        if nxt is None:
            minted = [
                c.cid
                for c in self.clients
                if c.cid >= self.cid_stride_base
                and (c.cid - self.cid_stride_base) % self.n_tiles == self.tile_id
            ]
            nxt = (
                max(minted) + self.n_tiles
                if minted
                else self.cid_stride_base + self.tile_id
            )
        self.__dict__["_tile_cid_next"] = nxt + self.n_tiles
        return nxt


@dataclass
class ShardPartition:
    """An in-memory partition: the plan plus one workspace per tile."""

    plan: TilePlan
    tiles: tuple[TileWorkspace, ...]
    #: The replicated candidate table (identical in every tile).
    potentials: list[Site]
    cid_stride_base: int

    @property
    def n_tiles(self) -> int:
        return self.plan.n_tiles

    @property
    def n_p(self) -> int:
        return len(self.potentials)


def partition_workspace(
    ws: Workspace, n_tiles: int, scheme: str = "str"
) -> ShardPartition:
    """Split ``ws``'s clients into tile workspaces (sites replicated).

    Each tile receives the parent's ``dnn`` slice as ``precomputed_dnn``
    — byte-identical floats, and no per-tile join — plus the full
    facility and candidate tables.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if n_tiles < 1:
        raise ValueError("n_tiles must be >= 1")
    if n_tiles > ws.n_c:
        raise ValueError(
            f"cannot cut {ws.n_c} clients into {n_tiles} non-empty tiles"
        )
    points = [(c.x, c.y) for c in ws.clients]
    build = _str_plan if scheme == "str" else _grid_plan
    plan, members = build(points, n_tiles)
    cid_stride_base = max(c.cid for c in ws.clients) + 1
    tiles = []
    for spec, member in zip(plan.tiles, members):
        clients = [ws.clients[i] for i in member]
        instance = SpatialInstance(
            name=f"{ws.instance.name}/tile{spec.tile_id:04d}",
            clients=[Point(c.x, c.y) for c in clients],
            facilities=list(ws.instance.facilities),
            potentials=list(ws.instance.potentials),
            domain=ws.instance.domain,
            client_weights=[c.weight for c in clients],
        )
        tiles.append(
            TileWorkspace(
                instance,
                tile_id=spec.tile_id,
                n_tiles=plan.n_tiles,
                cids=[c.cid for c in clients],
                cid_stride_base=cid_stride_base,
                page_size=ws.page_size,
                io_latency_s=ws.io_latency_s,
                precomputed_dnn=[c.dnn for c in clients],
            )
        )
    return ShardPartition(
        plan=plan,
        tiles=tuple(tiles),
        potentials=list(ws.potentials),
        cid_stride_base=cid_stride_base,
    )


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def _tile_dirname(tile_id: int) -> str:
    return f"tile-{tile_id:04d}"


def write_partition(
    partition: ShardPartition, directory: str | Path, leaf_format: str = "rows"
) -> Path:
    """Persist a partition: ``shards.json`` + one directory per tile.

    Every tile is frozen through the existing
    :func:`~repro.core.diskmode.persist_indexes` manifests (so
    :class:`~repro.core.diskmode.DiskWorkspace` reopens it unchanged),
    plus a ``tile.json`` sidecar with the global cids and exact client
    rows the page files cannot carry — what dynamic reconstruction needs
    to reproduce the tile workspace float for float.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sample = partition.tiles[0]
    for tile in partition.tiles:
        tile_dir = directory / _tile_dirname(tile.tile_id)
        persist_indexes(tile, tile_dir, leaf_format=leaf_format, full=True)
        (tile_dir / TILE_MANIFEST).write_text(
            json.dumps(
                {
                    "tile_id": tile.tile_id,
                    "cids": [c.cid for c in tile.clients],
                    "clients": [
                        [c.x, c.y, c.dnn, c.weight] for c in tile.clients
                    ],
                },
                indent=2,
            )
            + "\n"
        )
    domain = sample.instance.domain
    payload = {
        "schema_version": 1,
        "n_c": sum(t.n_c for t in partition.tiles),
        "n_f": sample.n_f,
        "n_p": partition.n_p,
        "cid_stride_base": partition.cid_stride_base,
        "io_latency_s": sample.io_latency_s,
        "page_size": sample.page_size,
        "domain": [domain.xmin, domain.ymin, domain.xmax, domain.ymax],
        "facilities": [[s.x, s.y] for s in sample.facilities],
        "potentials": [[s.x, s.y] for s in partition.potentials],
        "plan": partition.plan.to_dict(),
        "tiles": [
            {
                "tile_id": t.tile_id,
                "dir": _tile_dirname(t.tile_id),
                "n_c": t.n_c,
                "bounds": list(partition.plan.tiles[t.tile_id].bounds),
            }
            for t in partition.tiles
        ],
    }
    (directory / SHARDS_MANIFEST).write_text(json.dumps(payload, indent=2) + "\n")
    return directory


@dataclass
class PersistedPartition:
    """A partition directory reopened from its ``shards.json``."""

    directory: Path
    plan: TilePlan
    facilities: list[tuple[float, float]]
    potentials: list[tuple[float, float]]
    domain: Rect
    cid_stride_base: int
    io_latency_s: float
    page_size: int

    @property
    def n_tiles(self) -> int:
        return self.plan.n_tiles

    def potential_sites(self) -> list[Site]:
        return [Site(i, x, y) for i, (x, y) in enumerate(self.potentials)]

    def tile_dir(self, tile_id: int) -> Path:
        return self.directory / _tile_dirname(tile_id)

    def load_tile(self, tile_id: int, mode: str = "dynamic"):
        """Reopen one tile workspace.

        ``mode="dynamic"`` (the serving default) reconstructs a live
        :class:`TileWorkspace` — byte-identical clients, dnn, weights
        and site tables — that accepts updates; ``mode="disk"`` opens
        the persisted page files read-only through
        :class:`~repro.core.diskmode.DiskWorkspace`.
        """
        if mode == "disk":
            return DiskWorkspace(
                load_persisted(self.tile_dir(tile_id)),
                io_latency_s=self.io_latency_s,
            )
        if mode != "dynamic":
            raise ValueError(f"unknown tile mode {mode!r}")
        sidecar = json.loads((self.tile_dir(tile_id) / TILE_MANIFEST).read_text())
        rows = sidecar["clients"]
        instance = SpatialInstance(
            name=f"{self.directory.name}/tile{tile_id:04d}",
            clients=[Point(r[0], r[1]) for r in rows],
            facilities=[Point(x, y) for x, y in self.facilities],
            potentials=[Point(x, y) for x, y in self.potentials],
            domain=self.domain,
            client_weights=[r[3] for r in rows],
        )
        return TileWorkspace(
            instance,
            tile_id=tile_id,
            n_tiles=self.n_tiles,
            cids=sidecar["cids"],
            cid_stride_base=self.cid_stride_base,
            page_size=self.page_size,
            io_latency_s=self.io_latency_s,
            precomputed_dnn=[r[2] for r in rows],
        )

    def load_tiles(
        self, tile_ids: Optional[Sequence[int]] = None, mode: str = "dynamic"
    ) -> dict[int, Workspace]:
        ids = list(tile_ids) if tile_ids is not None else list(range(self.n_tiles))
        return {tile_id: self.load_tile(tile_id, mode=mode) for tile_id in ids}


def load_partition(directory: str | Path) -> PersistedPartition:
    """Reopen a partition directory from its ``shards.json``."""
    directory = Path(directory)
    manifest = directory / SHARDS_MANIFEST
    if not manifest.exists():
        raise FileNotFoundError(
            f"{manifest}: no partition manifest — was this directory written "
            "by write_partition()?"
        )
    payload = json.loads(manifest.read_text())
    return PersistedPartition(
        directory=directory,
        plan=TilePlan.from_dict(payload["plan"]),
        facilities=[tuple(p) for p in payload["facilities"]],
        potentials=[tuple(p) for p in payload["potentials"]],
        domain=Rect(*payload["domain"]),
        cid_stride_base=int(payload["cid_stride_base"]),
        io_latency_s=float(payload["io_latency_s"]),
        page_size=int(payload["page_size"]),
    )
