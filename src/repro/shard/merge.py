"""The exact deterministic merge of per-tile partial results.

A tile's partial is its **full** ``dr`` vector over the replicated
candidate table plus its I/O snapshot.  The merge folds partials in
fixed global tile order:

* ``dr_total`` starts at zeros and accumulates one tile vector at a
  time — the *same* float addition sequence no matter how many shards
  computed the partials, so the merged vector is byte-identical to the
  serial tile-order reference at any shard count;
* per-structure read counters are integers and fold exactly, with the
  structure-key order fixed by first appearance in tile order;
* p* is the ``argmax`` of the merged vector (ties resolve to the
  smallest candidate id, matching
  :meth:`~repro.core.base.LocationSelector.select`).

The wire converters round-trip every float exactly (JSON ``repr``
formatting — see :mod:`repro.service.protocol`), so a partial fetched
from a shard server over TCP merges bit-for-bit like an in-process one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.types import SelectionResult, Site


@dataclass(frozen=True)
class TilePartial:
    """One tile's contribution to one method's answer."""

    tile_id: int
    method: str
    #: Full distance-reduction vector over the replicated candidates.
    dr: np.ndarray
    io_total: int
    io_reads: dict[str, int]
    index_pages: int
    elapsed_s: float
    cpu_s: float

    @property
    def n_p(self) -> int:
        return len(self.dr)


def partial_to_wire(partial: TilePartial) -> dict:
    """A :class:`TilePartial` as a JSON-safe dict (exact floats)."""
    return {
        "tile_id": partial.tile_id,
        "method": partial.method,
        "n_p": partial.n_p,
        "dr": [float(v) for v in partial.dr],
        "io_total": partial.io_total,
        "io_reads": dict(partial.io_reads),
        "index_pages": partial.index_pages,
        "elapsed_s": partial.elapsed_s,
        "cpu_s": partial.cpu_s,
    }


def partial_from_wire(data: dict, tile_id: int | None = None) -> TilePartial:
    """The inverse of :func:`partial_to_wire` (exact round-trip).

    ``tile_id`` overrides the payload's (shard servers answer the
    ``partials`` op without knowing their workspace's tile id; the
    coordinator knows it from the routing table).
    """
    dr = np.array([float(v) for v in data["dr"]], dtype=np.float64)
    if len(dr) != int(data["n_p"]):
        raise ValueError(
            f"partial carries {len(dr)} dr values but promises {data['n_p']}"
        )
    return TilePartial(
        tile_id=int(data["tile_id"]) if tile_id is None else tile_id,
        method=str(data["method"]),
        dr=dr,
        io_total=int(data["io_total"]),
        io_reads={str(k): int(v) for k, v in data["io_reads"].items()},
        index_pages=int(data["index_pages"]),
        elapsed_s=float(data["elapsed_s"]),
        cpu_s=float(data["cpu_s"]),
    )


def merge_partials(
    partials: Sequence[TilePartial], potentials: Sequence[Site]
) -> SelectionResult:
    """Fold tile partials, in tile order, into one selection result.

    Expects exactly one partial per tile of one method; the caller
    passes them in any order and the fold re-sorts by ``tile_id`` — the
    merge sequence is a property of the *partition*, never of which
    shard delivered which partial first.

    ``elapsed_s`` / ``cpu_s`` are summed in tile order: the serial-
    equivalent cost, which keeps the merged numbers comparable to the
    unsharded reference (wall-clock overlap is a deployment property,
    reported by the bench suite, not by the merged result).
    """
    if not partials:
        raise ValueError("nothing to merge: no tile partials")
    ordered = sorted(partials, key=lambda p: p.tile_id)
    seen = [p.tile_id for p in ordered]
    if len(set(seen)) != len(seen):
        raise ValueError(f"duplicate tile partials: {seen}")
    methods = {p.method for p in ordered}
    if len(methods) != 1:
        raise ValueError(f"cannot merge partials of different methods: {methods}")
    n_p = ordered[0].n_p
    if any(p.n_p != n_p for p in ordered):
        raise ValueError("tile partials disagree on the candidate count")
    if n_p != len(potentials):
        raise ValueError(
            f"partials score {n_p} candidates, the table holds {len(potentials)}"
        )

    dr_total = np.zeros(n_p, dtype=np.float64)
    io_reads: dict[str, int] = {}
    io_total = 0
    index_pages = 0
    elapsed_s = 0.0
    cpu_s = 0.0
    for partial in ordered:
        dr_total += partial.dr
        io_total += partial.io_total
        index_pages += partial.index_pages
        elapsed_s += partial.elapsed_s
        cpu_s += partial.cpu_s
        for source, pages in partial.io_reads.items():
            io_reads[source] = io_reads.get(source, 0) + pages
    best = int(np.argmax(dr_total))  # ties resolve to the smallest id
    return SelectionResult(
        method=ordered[0].method,
        location=potentials[best],
        dr=float(dr_total[best]),
        elapsed_s=elapsed_s,
        cpu_s=cpu_s,
        io_total=io_total,
        io_reads=io_reads,
        index_pages=index_pages,
    )


def merged_distance_reductions(partials: Sequence[TilePartial]) -> np.ndarray:
    """The merged ``dr`` vector alone (same fold as the full merge)."""
    ordered = sorted(partials, key=lambda p: p.tile_id)
    dr_total = np.zeros(ordered[0].n_p, dtype=np.float64)
    for partial in ordered:
        dr_total += partial.dr
    return dr_total


def merge_evaluate_reports(
    per_tile: Sequence[Sequence[dict]],
) -> list[dict]:
    """Fold per-tile ``evaluate`` reports into whole-dataset reports.

    Each inner sequence is one tile's report list (same candidates, same
    order), carrying the additive fields the service emits alongside the
    averages: ``n_c``, ``nfd_sum_before``, ``nfd_sum_after``.  Sums fold
    in tile order; averages are recomputed from the folded sums, so the
    merged report is identical at any shard count (averages regroup the
    division, so they match the *tile-order* fold, the same reference
    the select path uses).
    """
    if not per_tile:
        raise ValueError("nothing to merge: no tile reports")
    ordered = list(per_tile)
    width = len(ordered[0])
    if any(len(reports) != width for reports in ordered):
        raise ValueError("tiles disagree on the evaluated candidate list")
    merged: list[dict] = []
    for slot in range(width):
        rows = [reports[slot] for reports in ordered]
        first = rows[0]
        n_c = sum(int(r["n_c"]) for r in rows)
        dr = 0.0
        before = 0.0
        after = 0.0
        for r in rows:  # fixed tile order: deterministic float fold
            dr += float(r["dr"])
            before += float(r["nfd_sum_before"])
            after += float(r["nfd_sum_after"])
        merged.append(
            {
                "sid": first["sid"],
                "x": first["x"],
                "y": first["y"],
                "influence_count": sum(int(r["influence_count"]) for r in rows),
                "dr": dr,
                "n_c": n_c,
                "nfd_sum_before": before,
                "nfd_sum_after": after,
                "avg_nfd_before": before / n_c if n_c else 0.0,
                "avg_nfd_after": after / n_c if n_c else 0.0,
                "max_client_gain": max(float(r["max_client_gain"]) for r in rows),
            }
        )
    return merged
