"""Shard smoke check (run in CI as ``python -m repro.shard.smoke``).

Partitions one dataset into tiles, then drives the whole sharded stack:

1. **executor parity** — for every method, the scatter-gather answer at
   1, 2 and 4 shards (location, the full ``dr`` vector, ``io_total``,
   per-structure reads, ``index_pages``) is byte-identical to the
   serial tile-order reference;
2. **persistence** — partials recomputed from a written-then-reloaded
   partition merge to the same bytes;
3. **coordinator parity** — the same answers through real shard servers
   and a real coordinator over TCP, repeats served from the
   coordinator's cache, and the fan-out grafted under one trace;
4. **update routing** — an ``add_client`` routes to the owning tile,
   bumps the logical ``data_version`` and invalidates the cache; its
   ``remove_client`` restores the original answers exactly;
5. **failure** — killing a shard turns requests into typed
   ``shard_unavailable`` errors (no hang, no partial answer), and a
   restart on the same port rejoins with no coordinator restart.

Exits non-zero on the first violated invariant.
"""

from __future__ import annotations

import sys
import tempfile

from repro.core import METHODS, Workspace
from repro.experiments.config import ExperimentConfig
from repro.service import ServiceClient, ServiceConfig, serve_in_thread
from repro.service.protocol import ShardUnavailableError
from repro.shard.coordinator import (
    ShardTopology,
    serve_coordinator_in_thread,
    tile_workspace_name,
)
from repro.shard.executor import (
    ScatterGatherExecutor,
    assign_tiles,
    serial_reference,
)
from repro.shard.partition import (
    load_partition,
    partition_workspace,
    write_partition,
)

SMOKE_CONFIG = ExperimentConfig(n_c=600, n_f=40, n_p=50)
SMOKE_TILES = 4
SMOKE_SHARDS = 2


def _fingerprint(result) -> tuple:
    return (
        result.location.sid,
        result.location.x,
        result.location.y,
        result.dr,
        result.io_total,
        dict(result.io_reads),
        result.index_pages,
    )


def check_executor_parity(partition, expected: dict) -> list[str]:
    failures = []
    for method in sorted(METHODS):
        for n_shards in (1, 2, 4):
            result = ScatterGatherExecutor(partition, n_shards=n_shards).run(
                method
            )
            if _fingerprint(result) != expected[method]:
                failures.append(
                    f"{method}@k{n_shards}: merged answer differs from the "
                    "serial reference"
                )
    return failures


def check_persistence(partition, directory, expected: dict) -> list[str]:
    from repro.shard.executor import compute_partial
    from repro.shard.merge import merge_partials

    failures = []
    write_partition(partition, directory)
    persisted = load_partition(directory)
    tiles = persisted.load_tiles(mode="dynamic")
    for method in sorted(METHODS):
        partials = [
            compute_partial(tiles[t], t, method) for t in sorted(tiles)
        ]
        merged = merge_partials(partials, persisted.potential_sites())
        if _fingerprint(merged) != expected[method]:
            failures.append(
                f"{method}: reloaded partition does not reproduce the "
                "reference bytes"
            )
    return failures


def _start_shards(persisted, groups):
    handles = []
    for group in groups:
        workspaces = {
            tile_workspace_name(t): persisted.load_tile(t, mode="dynamic")
            for t in group
        }
        handles.append(serve_in_thread(workspaces, ServiceConfig(workers=1)))
    return handles


def check_coordinator(persisted, groups, handles, expected: dict) -> list[str]:
    failures: list[str] = []
    topology = ShardTopology.from_partition(
        persisted, [(h.host, h.port) for h in handles]
    )
    coordinator = serve_coordinator_in_thread(topology)
    try:
        with ServiceClient(coordinator.host, coordinator.port) as client:
            # Parity + cache through the real TCP fan-out.
            for method in sorted(METHODS):
                cold = client.select(method)
                if _fingerprint(cold.result) != expected[method]:
                    failures.append(
                        f"{method}: coordinator answer differs from reference"
                    )
                if cold.cached:
                    failures.append(f"{method}: first request claimed a hit")
                warm = client.select(method)
                if not warm.cached:
                    failures.append(f"{method}: repeat missed the cache")
                if _fingerprint(warm.result) != expected[method]:
                    failures.append(f"{method}: cached answer differs")

            # One trace id spans the coordinator and every shard hop.
            client.select(method="MND", no_cache=True, trace_id="smoke-graft")
            traces = client.trace(trace_id="smoke-graft")
            if not traces or "shards" not in traces[0]:
                failures.append("fan-out did not graft shard traces")

            # Update routing: add bumps the version, remove restores it.
            # Whether the select cache survives is the shard's region
            # clock's call: a mutation whose NFC region covers no
            # potential legitimately keeps serving the cached answer.
            before_version = client.select("MND").data_version
            added = client.update("add_client", point=[250.0, 250.0])
            if added["data_version"] <= before_version:
                failures.append("add_client did not bump data_version")
            stale = client.select("MND")
            if added.get("select_changed", True) and stale.cached:
                failures.append("post-update select served stale cache")
            if not added.get("select_changed", True) and not stale.cached:
                failures.append("disjoint add_client dropped the warm cache")
            client.update("remove_client", cid=added["cid"])
            restored = client.select("MND")
            if _fingerprint(restored.result) != expected["MND"]:
                failures.append("remove_client did not restore the answer")

            # Kill one shard: typed failure, no partial answer, no hang.
            port0 = handles[0].port
            handles[0].stop()
            try:
                client.select("SS", no_cache=True, timeout_s=10.0)
                failures.append("lost shard did not fail the request")
            except ShardUnavailableError:
                pass
            health = client.health()
            if health["status"] != "degraded":
                failures.append(
                    f"health with a lost shard is {health['status']!r}, "
                    "expected 'degraded'"
                )

            # Restart on the same port: the fleet rejoins by itself.
            workspaces = {
                tile_workspace_name(t): persisted.load_tile(t, mode="dynamic")
                for t in groups[0]
            }
            handles[0] = serve_in_thread(
                workspaces, ServiceConfig(workers=1), port=port0
            )
            rejoined = client.select("SS", no_cache=True)
            if _fingerprint(rejoined.result) != expected["SS"]:
                failures.append("rejoined shard serves different bytes")
    finally:
        coordinator.stop()
    return failures


def main() -> int:
    workspace = Workspace(SMOKE_CONFIG.instance())
    partition = partition_workspace(workspace, SMOKE_TILES)
    expected = {
        m: _fingerprint(serial_reference(partition, m)) for m in METHODS
    }
    print(
        f"shard smoke: {SMOKE_TILES} tiles "
        f"({[t.n_c for t in partition.tiles]} clients), "
        f"{len(METHODS)} methods"
    )

    failures: list[str] = []
    failures += check_executor_parity(partition, expected)
    print("shard smoke: executor parity at k=1/2/4 checked")
    with tempfile.TemporaryDirectory() as directory:
        failures += check_persistence(partition, directory, expected)
        print("shard smoke: persisted round-trip checked")
        persisted = load_partition(directory)
        groups = assign_tiles(SMOKE_TILES, SMOKE_SHARDS)
        handles = _start_shards(persisted, groups)
        try:
            failures += check_coordinator(persisted, groups, handles, expected)
        finally:
            for handle in handles:
                try:
                    handle.stop()
                except RuntimeError:
                    pass
    print("shard smoke: coordinator fan-out / failure paths checked")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "shard smoke: OK (parity at every shard count, persistence, "
        "coordinator, updates, failure + rejoin all verified)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
