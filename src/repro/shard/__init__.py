"""Sharded scatter-gather workspaces with an exact deterministic merge.

One logical dataset, many shard workspaces, one byte-identical answer —
the PR-3 determinism contract lifted one level up:

* the **partitioner** (:mod:`repro.shard.partition`) splits the clients
  into a fixed number of spatial *tiles* — the unit of decomposition is
  the tile, never the shard count, exactly as the execution engine's
  task decomposition is independent of its worker count;
* the **scatter-gather executor** (:mod:`repro.shard.executor`) computes
  one full ``dr`` vector per tile through
  :class:`~repro.exec.engine.QueryEngine` and folds tiles in fixed
  global tile order (:mod:`repro.shard.merge`), so p*, the merged ``dr``
  vector, ``io_total`` and the per-structure read splits are
  byte-identical at any shard count;
* the **coordinator** (:mod:`repro.shard.coordinator`) fronts a fleet of
  shard servers over the existing TCP protocol, fanning every request
  out with :class:`~repro.service.client.ServiceClient` and degrading
  with a typed ``shard_unavailable`` error when a shard is down.
"""

from repro.shard.coordinator import (
    CoordinatorHandle,
    ShardCoordinator,
    ShardLink,
    ShardTopology,
    serve_coordinator_in_thread,
)
from repro.shard.executor import (
    ScatterGatherExecutor,
    assign_tiles,
    compute_partial,
    serial_reference,
)
from repro.shard.merge import (
    TilePartial,
    merge_evaluate_reports,
    merge_partials,
    partial_from_wire,
    partial_to_wire,
)
from repro.shard.partition import (
    SHARDS_MANIFEST,
    PersistedPartition,
    ShardPartition,
    TilePlan,
    TileSpec,
    TileWorkspace,
    load_partition,
    partition_workspace,
    write_partition,
)

__all__ = [
    "CoordinatorHandle",
    "PersistedPartition",
    "SHARDS_MANIFEST",
    "ScatterGatherExecutor",
    "ShardCoordinator",
    "ShardLink",
    "ShardPartition",
    "ShardTopology",
    "TilePartial",
    "TilePlan",
    "TileSpec",
    "TileWorkspace",
    "assign_tiles",
    "compute_partial",
    "load_partition",
    "merge_evaluate_reports",
    "merge_partials",
    "partial_from_wire",
    "partial_to_wire",
    "partition_workspace",
    "serial_reference",
    "serve_coordinator_in_thread",
    "write_partition",
]
