"""The in-process scatter-gather executor over a tile partition.

``serial_reference`` is *the* reference every sharded deployment must
match: one thread, tiles visited in global tile order, partials folded
as they complete.  :class:`ScatterGatherExecutor` runs the same tiles
grouped onto K simulated shards (one thread per shard, each walking its
contiguous tile range in order) and merges the collected partials in
the same global tile order — identical inputs, identical fold, so the
answer is byte-identical at any K by construction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core import make_selector
from repro.core.types import SelectionResult, Site
from repro.exec import QueryEngine
from repro.shard.merge import TilePartial, merge_partials
from repro.shard.partition import ShardPartition


def assign_tiles(n_tiles: int, n_shards: int) -> tuple[tuple[int, ...], ...]:
    """Contiguous, balanced tile ranges for ``n_shards`` shards.

    Earlier shards take the larger ranges; concatenating the groups in
    shard order reproduces the global tile order exactly.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards > n_tiles:
        raise ValueError(
            f"cannot place {n_tiles} tiles on {n_shards} shards without "
            "leaving a shard empty"
        )
    base, extra = divmod(n_tiles, n_shards)
    groups = []
    at = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        groups.append(tuple(range(at, at + size)))
        at += size
    return tuple(groups)


def compute_partial(
    workspace, tile_id: int, method: str, workers: int = 1
) -> TilePartial:
    """One tile's full partial for one method, via the query engine.

    The engine's own determinism contract makes the partial independent
    of ``workers``, so shard-internal parallelism never perturbs the
    merged answer.
    """
    selector = make_selector(workspace, method)
    with QueryEngine(workspace, workers=workers) as engine:
        result = engine.run(selector)
    return TilePartial(
        tile_id=tile_id,
        method=result.method,
        dr=selector.distance_reductions(),
        io_total=result.io_total,
        io_reads=dict(result.io_reads),
        index_pages=result.index_pages,
        elapsed_s=result.elapsed_s,
        cpu_s=result.cpu_s,
    )


def serial_reference(
    partition: ShardPartition, method: str, workers: int = 1
) -> SelectionResult:
    """The unsharded reference: every tile in order, one after another."""
    partials = [
        compute_partial(tile, tile.tile_id, method, workers=workers)
        for tile in partition.tiles
    ]
    return merge_partials(partials, partition.potentials)


class ScatterGatherExecutor:
    """Scatter a query across K simulated shards, gather exactly.

    Each shard is one thread walking its contiguous tile range in tile
    order; the gathered partials merge in global tile order.  Tiles are
    plain workspaces, so K=1 with one worker degenerates to
    :func:`serial_reference` — the tests and the bench recorder hold
    every K to that reference byte for byte.
    """

    def __init__(
        self,
        partition: ShardPartition,
        n_shards: int = 1,
        workers_per_shard: int = 1,
    ):
        self.partition = partition
        self.groups = assign_tiles(partition.n_tiles, n_shards)
        self.workers_per_shard = workers_per_shard

    @property
    def n_shards(self) -> int:
        return len(self.groups)

    def scatter(self, method: str) -> list[TilePartial]:
        """All tile partials for one method, one thread per shard."""

        def _shard(tile_ids: Sequence[int]) -> list[TilePartial]:
            return [
                compute_partial(
                    self.partition.tiles[tile_id],
                    tile_id,
                    method,
                    workers=self.workers_per_shard,
                )
                for tile_id in tile_ids
            ]

        if self.n_shards == 1:
            per_shard = [_shard(self.groups[0])]
        else:
            with ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="repro-shard"
            ) as pool:
                per_shard = list(pool.map(_shard, self.groups))
        return [partial for shard in per_shard for partial in shard]

    def run(self, method: str) -> SelectionResult:
        """One merged selection (byte-identical at any shard count)."""
        return merge_partials(self.scatter(method), self.partition.potentials)

    def run_with_potentials(
        self, method: str, potentials: Sequence[Site]
    ) -> SelectionResult:
        return merge_partials(self.scatter(method), potentials)
