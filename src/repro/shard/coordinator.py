"""The shard coordinator: one logical workspace over a shard fleet.

:class:`ShardCoordinator` is a :class:`~repro.service.server.QueryService`
that hosts **no** workspaces of its own: every data-bearing request fans
out over the existing TCP protocol to K shard servers (each a plain
``QueryService`` hosting its assigned tile workspaces under
``tile-NNNN`` names) and the replies merge through
:mod:`repro.shard.merge` in fixed global tile order — so the coordinator
serves the same bytes as the serial tile-order reference at any shard
count.

* ``select`` — one ``partials`` call per tile to its owning shard
  (concurrently; calls to the same shard pipeline on one connection),
  merged into a full :class:`~repro.core.types.SelectionResult`;
* ``evaluate`` — fanned to every tile, additive report fields folded in
  tile order;
* ``update`` — ``add_client`` routes by point to the owning tile,
  ``remove_client`` routes by cid through the partition plan's
  directory (original cids) or the tile-stride congruence (minted
  cids), falling back to a tile-order probe only when the topology
  carries no directory; facility changes broadcast to every tile
  sequentially in tile order (facilities are replicated, so sids stay
  aligned across tiles).  Every successful update bumps the
  coordinator's *logical* ``data_version``; the shards' region clocks
  report back ``select_changed``/``evaluate_changed`` flags, which
  advance the coordinator's own per-operation epochs — the result
  cache keys on those, so a spatially disjoint mutation on one tile
  leaves the fleet-wide cached answers warm;
* any transport failure to a shard surfaces as a typed
  ``shard_unavailable`` error — the coordinator never serves a partial
  answer — and the failed link reconnects lazily on the next request,
  so a restarted shard rejoins with no coordinator restart;
* the coordinator reuses the client-assigned ``trace_id`` on every
  fan-out call and the ``trace`` op grafts the shards' finished traces
  under the coordinator's own, so a sharded request reads as one tree.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core import METHODS
from repro.core.types import Site
from repro.obs.openmetrics import CONTENT_TYPE
from repro.obs.registry import REGISTRY
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.protocol import (
    OPERATIONS,
    BadRequestError,
    ClientConnectionError,
    ServiceError,
    ShardUnavailableError,
    UnknownMethodError,
    UnknownWorkspaceError,
    ok_response,
    selection_to_wire,
)
from repro.service.server import QueryService, ServiceConfig, ServiceHandle
from repro.service.telemetry import ServiceTelemetry
from repro.shard.executor import assign_tiles
from repro.shard.merge import (
    merge_evaluate_reports,
    merge_partials,
    partial_from_wire,
)
from repro.shard.partition import TILE_MANIFEST, PersistedPartition, TilePlan


def tile_workspace_name(tile_id: int) -> str:
    """The workspace name a shard server hosts tile ``tile_id`` under."""
    return f"tile-{tile_id:04d}"


@dataclass(frozen=True)
class ShardSpec:
    """One shard server: its name, address and contiguous tile range."""

    name: str
    host: str
    port: int
    tile_ids: tuple[int, ...]


@dataclass(frozen=True)
class ShardTopology:
    """The fleet layout: the tile plan plus who serves which tiles."""

    plan: TilePlan
    potentials: tuple[Site, ...]
    shards: tuple[ShardSpec, ...]
    #: The single logical workspace name the coordinator serves.
    workspace: str = "default"
    #: Original cid -> owning tile, from the partition plan.  Fresh cids
    #: minted after partitioning are ``>= cid_stride_base`` and congruent
    #: to their tile id modulo the tile count, so together these two
    #: fields route any existing cid without probing.  ``None`` (a
    #: hand-built topology) falls back to the tile-order probe.
    cid_tiles: Optional[dict] = None
    cid_stride_base: Optional[int] = None

    @classmethod
    def from_partition(
        cls,
        partition: PersistedPartition,
        addresses: Sequence[tuple[str, int]],
        workspace: str = "default",
    ) -> "ShardTopology":
        """Addresses in shard-id order; tiles assigned contiguously.

        Accepts a :class:`~repro.shard.partition.PersistedPartition` or
        an in-memory :class:`~repro.shard.partition.ShardPartition`.
        """
        groups = assign_tiles(partition.n_tiles, len(addresses))
        shards = tuple(
            ShardSpec(f"shard-{i}", host, port, group)
            for i, ((host, port), group) in enumerate(zip(addresses, groups))
        )
        if hasattr(partition, "potential_sites"):
            potentials = tuple(partition.potential_sites())
        else:
            potentials = tuple(partition.potentials)
        cid_tiles: dict[int, int] = {}
        if hasattr(partition, "tiles") and hasattr(partition, "cid_stride_base"):
            # In-memory ShardPartition: the tile workspaces are here.
            for tile in partition.tiles:
                for client in tile.clients:
                    cid_tiles[int(client.cid)] = tile.tile_id
        elif hasattr(partition, "tile_dir"):
            # PersistedPartition: each tile's sidecar lists its cids.
            for tile_id in range(partition.n_tiles):
                sidecar = json.loads(
                    (partition.tile_dir(tile_id) / TILE_MANIFEST).read_text()
                )
                for cid in sidecar["cids"]:
                    cid_tiles[int(cid)] = tile_id
        return cls(
            plan=partition.plan,
            potentials=potentials,
            shards=shards,
            workspace=workspace,
            cid_tiles=cid_tiles or None,
            cid_stride_base=getattr(partition, "cid_stride_base", None),
        )

    @property
    def n_tiles(self) -> int:
        return self.plan.n_tiles

    def owner_of(self, tile_id: int) -> ShardSpec:
        for shard in self.shards:
            if tile_id in shard.tile_ids:
                return shard
        raise ValueError(f"no shard owns tile {tile_id}")


class ShardLink:
    """A lazily (re)connecting client to one shard server.

    Transport failures close the connection and raise the typed
    ``shard_unavailable`` error; the *next* call reconnects — which is
    exactly how a restarted shard rejoins the fleet.  A lock serialises
    calls, so concurrent tile fetches to one shard pipeline safely on
    the single connection.
    """

    def __init__(
        self,
        spec: ShardSpec,
        connect_timeout_s: float = 5.0,
        connect_retries: int = 1,
        retry_delay_s: float = 0.2,
        io_timeout_s: Optional[float] = 60.0,
    ):
        self.spec = spec
        self.connect_timeout_s = connect_timeout_s
        self.connect_retries = connect_retries
        self.retry_delay_s = retry_delay_s
        self.io_timeout_s = io_timeout_s
        self._client: Optional[ServiceClient] = None
        self._lock = threading.Lock()

    @property
    def connected(self) -> bool:
        return self._client is not None

    def _drop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def call(self, op: str, **params: Any) -> dict:
        spec = self.spec
        with self._lock:
            if self._client is None:
                try:
                    self._client = ServiceClient(
                        spec.host,
                        spec.port,
                        connect_timeout_s=self.connect_timeout_s,
                        io_timeout_s=self.io_timeout_s,
                        connect_retries=self.connect_retries,
                        retry_delay_s=self.retry_delay_s,
                    )
                except ClientConnectionError as exc:
                    raise ShardUnavailableError(
                        f"shard {spec.name!r} at {spec.host}:{spec.port} "
                        f"is unreachable: {exc}"
                    ) from exc
            try:
                return self._client.call(op, **params)
            except ClientConnectionError as exc:
                self._drop()
                raise ShardUnavailableError(
                    f"shard {spec.name!r} at {spec.host}:{spec.port} "
                    f"failed mid-request: {exc}"
                ) from exc

    def close(self) -> None:
        with self._lock:
            self._drop()


class ShardCoordinator(QueryService):
    """A ``QueryService`` front end that scatters to shard servers.

    Deliberately does **not** call ``QueryService.__init__``: a
    coordinator has no hosted workspaces, no admission queues and no
    batchers — ``self.hosts`` stays empty, so the inherited lifecycle
    (``start``/``serve_forever``/``shutdown``), connection plumbing and
    telemetry wrapper run unchanged over an empty host table while
    ``_dispatch`` is replaced wholesale with the scatter-gather paths.
    """

    def __init__(
        self,
        topology: ShardTopology,
        config: Optional[ServiceConfig] = None,
        connect_timeout_s: float = 5.0,
        connect_retries: int = 1,
    ):
        self.topology = topology
        self.config = config or ServiceConfig()
        # Telemetry first (registry upgrade ordering), then the cache —
        # the same construction order QueryService.__init__ documents.
        self.telemetry = ServiceTelemetry(self.config.telemetry)
        self.cache = ResultCache(self.config.cache_entries)
        self.hosts: dict = {}
        self._server = None
        self.metrics_address = None
        self._draining = False
        self._started_at = time.monotonic()
        self._requests = {
            op: REGISTRY.counter(f"service.requests.{op}") for op in OPERATIONS
        }
        self._connections = REGISTRY.gauge("service.connections")
        #: The logical dataset version: bumped on every successful
        #: update, so version-keyed cache entries die by construction.
        self.data_version = 0
        #: Per-operation logical epochs, advanced by the shard-reported
        #: ``select_changed``/``evaluate_changed`` flags: a mutation
        #: that provably changed no answer of a class leaves that
        #: class's cached fleet-wide results live.
        self.select_epoch = 0
        self.evaluate_epoch = 0
        self._cache_dropped = 0
        self._cache_survived = 0
        self.links = {
            shard.name: ShardLink(
                shard,
                connect_timeout_s=connect_timeout_s,
                connect_retries=connect_retries,
            )
            for shard in topology.shards
        }
        self._link_of_tile = {
            tile_id: self.links[shard.name]
            for shard in topology.shards
            for tile_id in shard.tile_ids
        }
        self._scatters = REGISTRY.counter("service.shard.scatters")
        self._shard_errors = REGISTRY.counter("service.shard.errors")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def shutdown(self, drain: bool = True) -> None:
        await super().shutdown(drain=drain)
        for link in self.links.values():
            link.close()

    # ------------------------------------------------------------------
    # Scatter plumbing
    # ------------------------------------------------------------------
    def _require_workspace(self, message: dict) -> None:
        name = message.get("workspace", "default")
        if name != self.topology.workspace:
            raise UnknownWorkspaceError(
                f"unknown workspace {name!r}; this coordinator serves "
                f"{self.topology.workspace!r}"
            )

    def _fetch_partial(self, tile_id: int, method: str, trace_id):
        link = self._link_of_tile[tile_id]
        response = link.call(
            "partials",
            workspace=tile_workspace_name(tile_id),
            method=method,
            **({} if trace_id is None else {"trace_id": trace_id}),
        )
        return partial_from_wire(response["result"], tile_id=tile_id)

    async def _scatter(self, fn, tile_ids: Sequence[int]) -> list:
        """Run ``fn(tile_id)`` for every tile concurrently.

        Any shard failure fails the whole scatter — a coordinator never
        serves a partial answer.
        """
        self._scatters.inc()
        try:
            return await asyncio.gather(
                *(asyncio.to_thread(fn, tile_id) for tile_id in tile_ids)
            )
        except ShardUnavailableError:
            self._shard_errors.inc()
            raise

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, message: dict, trace) -> dict:
        request_id = message.get("id")
        op = message.get("op")
        if op not in OPERATIONS:
            raise BadRequestError(
                f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}"
            )
        self._requests[op].inc()
        if op == "health":
            return ok_response(request_id, await self._coord_health())
        if op == "stats":
            return ok_response(request_id, self._stats(message))
        if op == "metrics":
            return ok_response(
                request_id,
                {
                    "content_type": CONTENT_TYPE,
                    "body": self.telemetry.render_metrics(),
                },
            )
        if op == "trace":
            payload = await asyncio.to_thread(self._grafted_traces, message)
            return ok_response(request_id, payload)
        if op == "partials":
            raise BadRequestError(
                "the coordinator merges partials; ask a shard server for them"
            )
        self._require_workspace(message)
        if op == "select":
            return await self._coord_select(request_id, message, trace)
        if op == "evaluate":
            return await self._coord_evaluate(request_id, message, trace)
        return await self._coord_update(request_id, message, trace)

    # ------------------------------------------------------------------
    # select / evaluate
    # ------------------------------------------------------------------
    async def _coord_select(self, request_id, message: dict, trace) -> dict:
        method = message.get("method", "MND")
        if not isinstance(method, str) or method.upper() not in METHODS:
            raise UnknownMethodError(
                f"unknown method {method!r}; expected one of "
                f"{', '.join(sorted(METHODS))}"
            )
        method = method.upper()
        if trace is not None:
            trace.method = method
        no_cache = bool(message.get("no_cache", False))
        key = self.cache.key(
            self.topology.workspace, self.select_epoch, "select", {"method": method}
        )
        if not no_cache:
            started = time.perf_counter()
            cached = self.cache.get(key)
            if trace is not None:
                trace.add_span(
                    "cache", time.perf_counter() - started, hit=cached is not None
                )
            if cached is not None:
                if trace is not None:
                    trace.cached = True
                return ok_response(
                    request_id, cached, cached=True, data_version=self.data_version
                )
        version = self.data_version
        trace_id = trace.trace_id if trace is not None else None
        started = time.perf_counter()
        partials = await self._scatter(
            lambda tile_id: self._fetch_partial(tile_id, method, trace_id),
            range(self.topology.n_tiles),
        )
        scatter_s = time.perf_counter() - started
        started = time.perf_counter()
        result = merge_partials(partials, self.topology.potentials)
        wire = selection_to_wire(result)
        if trace is not None:
            trace.add_span(
                "scatter",
                scatter_s,
                tiles=self.topology.n_tiles,
                shards=len(self.topology.shards),
            )
            trace.add_span("merge", time.perf_counter() - started)
        if not no_cache:
            self.cache.put(key, wire)
        return ok_response(
            request_id,
            wire,
            cached=False,
            data_version=version,
            shards=len(self.topology.shards),
            tiles=self.topology.n_tiles,
        )

    async def _coord_evaluate(self, request_id, message: dict, trace) -> dict:
        ids = message.get("ids")
        if not isinstance(ids, list) or not all(isinstance(i, int) for i in ids):
            raise BadRequestError("evaluate needs 'ids': a list of candidate ids")
        version = self.data_version
        key = self.cache.key(
            self.topology.workspace, self.evaluate_epoch, "evaluate", {"ids": ids}
        )
        cached = self.cache.get(key)
        if cached is not None:
            if trace is not None:
                trace.cached = True
            return ok_response(
                request_id, cached, cached=True, data_version=version
            )
        trace_id = trace.trace_id if trace is not None else None

        def _tile_reports(tile_id: int) -> list[dict]:
            link = self._link_of_tile[tile_id]
            response = link.call(
                "evaluate",
                workspace=tile_workspace_name(tile_id),
                ids=ids,
                **({} if trace_id is None else {"trace_id": trace_id}),
            )
            return response["result"]

        per_tile = await self._scatter(_tile_reports, range(self.topology.n_tiles))
        merged = merge_evaluate_reports(per_tile)
        self.cache.put(key, merged)
        return ok_response(request_id, merged, cached=False, data_version=version)

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------
    async def _coord_update(self, request_id, message: dict, trace) -> dict:
        action = message.get("action")
        trace_id = trace.trace_id if trace is not None else None
        extra = {} if trace_id is None else {"trace_id": trace_id}

        def _tile_update(tile_id: int, **params: Any) -> dict:
            link = self._link_of_tile[tile_id]
            response = link.call(
                "update",
                workspace=tile_workspace_name(tile_id),
                action=action,
                **params,
                **extra,
            )
            return response["result"]

        # A shard that predates region clocks reports no flags; assume
        # the conservative "everything changed".
        select_changed = True
        evaluate_changed = True
        if action == "add_client":
            point = message.get("point")
            if (
                not isinstance(point, (list, tuple))
                or len(point) != 2
                or not all(isinstance(v, (int, float)) for v in point)
            ):
                raise BadRequestError("update needs 'point': [x, y]")
            tile_id = self.topology.plan.route(float(point[0]), float(point[1]))
            params: dict[str, Any] = {"point": list(point)}
            if "weight" in message:
                params["weight"] = message["weight"]
            detail = await asyncio.to_thread(_tile_update, tile_id, **params)
            detail["tile_id"] = tile_id
            select_changed = bool(detail.get("select_changed", True))
            evaluate_changed = bool(detail.get("evaluate_changed", True))
        elif action == "remove_client":
            cid = message.get("cid")
            tile_id = self._route_cid(cid) if isinstance(cid, int) else None
            if tile_id is not None:
                # Routed through the partition plan: the owning tile is
                # known, and cids are never reused, so a miss there is
                # terminal — no other tile can hold this client.
                try:
                    detail = await asyncio.to_thread(_tile_update, tile_id, cid=cid)
                except BadRequestError:
                    raise BadRequestError(
                        f"no client with cid {cid!r} on any tile"
                    ) from None
                detail["tile_id"] = tile_id
            else:
                # No cid directory (hand-built topology): probe in fixed
                # tile order — cids are globally unique, so at most one
                # tile answers.
                detail = None
                for tile_id in range(self.topology.n_tiles):
                    try:
                        detail = await asyncio.to_thread(
                            _tile_update, tile_id, cid=cid
                        )
                        detail["tile_id"] = tile_id
                        break
                    except BadRequestError:
                        continue
                if detail is None:
                    raise BadRequestError(
                        f"no client with cid {cid!r} on any tile"
                    )
            select_changed = bool(detail.get("select_changed", True))
            evaluate_changed = bool(detail.get("evaluate_changed", True))
        elif action in ("add_facility", "remove_facility"):
            # Facilities are replicated: broadcast sequentially in tile
            # order so every tile applies the same mutation in the same
            # sequence and sids stay aligned fleet-wide.  The flags OR
            # across tiles: one affected tile ages the fleet answer.
            params = {
                k: v
                for k, v in message.items()
                if k not in ("id", "op", "workspace", "action", "trace_id")
            }
            detail = None
            select_changed = False
            evaluate_changed = False
            for tile_id in range(self.topology.n_tiles):
                detail = await asyncio.to_thread(_tile_update, tile_id, **params)
                select_changed |= bool(detail.get("select_changed", True))
                evaluate_changed |= bool(detail.get("evaluate_changed", True))
            assert detail is not None
            detail["broadcast_tiles"] = self.topology.n_tiles
        else:
            raise BadRequestError(
                f"unknown update action {action!r}; expected add_client, "
                "remove_client, add_facility or remove_facility"
            )
        self.data_version += 1
        if select_changed:
            self.select_epoch += 1
        if evaluate_changed:
            self.evaluate_epoch += 1
        dropped, survived = self.cache.invalidate(
            self.topology.workspace,
            live_version=self.data_version,
            live_versions={
                "select": self.select_epoch,
                "evaluate": self.evaluate_epoch,
            },
        )
        self._cache_dropped += dropped
        self._cache_survived += survived
        detail["data_version"] = self.data_version
        detail["select_changed"] = select_changed
        detail["evaluate_changed"] = evaluate_changed
        return ok_response(request_id, detail, data_version=self.data_version)

    def _route_cid(self, cid: int) -> Optional[int]:
        """The owning tile of ``cid`` per the partition plan, or None
        when this topology carries no cid directory."""
        topo = self.topology
        base = topo.cid_stride_base
        if base is not None and cid >= base:
            # Minted ids are congruent to their tile id mod n_tiles.
            return (cid - base) % topo.n_tiles
        if topo.cid_tiles:
            tile = topo.cid_tiles.get(cid)
            if tile is None and base is not None:
                # The directory plus the stride cover every cid ever
                # issued: this one never existed.
                raise BadRequestError(f"no client with cid {cid!r} on any tile")
            return tile
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def _coord_health(self) -> dict:
        def _probe(shard: ShardSpec) -> dict:
            info: dict[str, Any] = {
                "address": [shard.host, shard.port],
                "tiles": list(shard.tile_ids),
            }
            try:
                health = self.links[shard.name].call("health")["result"]
                info["status"] = health.get("status", "unknown")
            except ServiceError as exc:
                info["status"] = "down"
                info["error"] = exc.code
            return info

        probes = await asyncio.gather(
            *(asyncio.to_thread(_probe, shard) for shard in self.topology.shards)
        )
        shards = {
            shard.name: probe
            for shard, probe in zip(self.topology.shards, probes)
        }
        degraded = any(p["status"] != "serving" for p in shards.values())
        base = self._health()
        base["workspaces"] = [self.topology.workspace]
        base["role"] = "coordinator"
        base["status"] = (
            "draining"
            if self._draining
            else ("degraded" if degraded else "serving")
        )
        base["data_version"] = self.data_version
        base["shards"] = shards
        return base

    def _stats(self, message: Optional[dict] = None) -> dict:
        payload = super()._stats(message)
        payload["role"] = "coordinator"
        payload["data_version"] = self.data_version
        payload["select_epoch"] = self.select_epoch
        payload["evaluate_epoch"] = self.evaluate_epoch
        retained = self._cache_dropped + self._cache_survived
        payload["cache_survival"] = (
            self._cache_survived / retained if retained else None
        )
        payload["shards"] = {
            shard.name: {
                "address": [shard.host, shard.port],
                "tiles": list(shard.tile_ids),
                "connected": self.links[shard.name].connected,
            }
            for shard in self.topology.shards
        }
        return payload

    def _grafted_traces(self, message: dict) -> dict:
        """The coordinator's traces with each shard's grafted under it.

        Shard lookups are best-effort: an unreachable shard simply
        contributes nothing (the trace op is an investigation tool, not
        an answer path).
        """
        payload = self.telemetry.trace_payload(message)
        for trace in payload.get("traces", []):
            trace_id = trace.get("trace_id")
            if trace_id is None:
                continue
            shards: dict[str, list] = {}
            for shard in self.topology.shards:
                try:
                    found = self.links[shard.name].call(
                        "trace", trace_id=trace_id
                    )["result"]["traces"]
                except ServiceError:
                    continue
                if found:
                    shards[shard.name] = found
            if shards:
                trace["shards"] = shards
        return payload


# ----------------------------------------------------------------------
# Threaded embedding (tests, benchmarks, smoke)
# ----------------------------------------------------------------------
CoordinatorHandle = ServiceHandle


def serve_coordinator_in_thread(
    topology: ShardTopology,
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    connect_retries: int = 1,
) -> ServiceHandle:
    """Run a :class:`ShardCoordinator` on a daemon thread (mirrors
    :func:`~repro.service.server.serve_in_thread`)."""
    started = threading.Event()
    box: dict = {}

    def _run() -> None:
        async def _main() -> None:
            service = ShardCoordinator(
                topology, config, connect_retries=connect_retries
            )
            try:
                box["host"], box["port"] = await service.start(host, port)
            except Exception as exc:  # noqa: BLE001 — reported to caller
                box["error"] = exc
                return
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            box["stopped"] = asyncio.Event()
            started.set()
            await box["stopped"].wait()
            await service.shutdown(drain=box.get("drain", True))

        try:
            asyncio.run(_main())
        except Exception as exc:  # noqa: BLE001 — reported to caller
            box.setdefault("error", exc)
        finally:
            started.set()

    thread = threading.Thread(target=_run, name="repro-coordinator", daemon=True)
    thread.start()
    if not started.wait(30.0):
        raise RuntimeError("coordinator did not start within 30s")
    if "error" in box:
        raise box["error"]
    return ServiceHandle(thread, box)
