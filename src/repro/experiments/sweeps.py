"""The paper's experiments, figure by figure (Section VIII).

Each function reproduces one figure's sweep and returns a
:class:`~repro.experiments.metrics.SweepResult` holding, per method,
the three reported metrics: running time, number of I/Os, index size.
Scale 1.0 reruns the paper's exact cardinalities; the benchmark suite
uses :data:`~repro.experiments.config.BENCH_SCALE`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.config import (
    BENCH_SCALE,
    PAPER_SWEEPS,
    ExperimentConfig,
)
from repro.experiments.metrics import SweepResult
from repro.experiments.runner import DEFAULT_METHODS, run_config


def _cardinality_sweep(
    name: str,
    parameter: str,
    scale: float,
    methods: Sequence[str],
    base: Optional[ExperimentConfig] = None,
) -> SweepResult:
    base = base if base is not None else ExperimentConfig()
    values = (
        PAPER_SWEEPS[parameter]
        if scale == 1.0
        else [max(2, int(v * scale)) for v in PAPER_SWEEPS[parameter]]
    )
    sweep = SweepResult(
        name=name, parameter=parameter, x_values=[float(v) for v in values]
    )
    for value in values:
        config = replace(base.scaled(scale), **{parameter: value})
        sweep.runs.extend(run_config(config, methods, x=value))
    return sweep


def client_size_sweep(
    scale: float = BENCH_SCALE, methods: Sequence[str] = DEFAULT_METHODS
) -> SweepResult:
    """Fig. 10: vary |C| with |F|, |P| at their defaults (uniform data)."""
    return _cardinality_sweep("fig10-client-size", "n_c", scale, methods)


def facility_size_sweep(
    scale: float = BENCH_SCALE, methods: Sequence[str] = DEFAULT_METHODS
) -> SweepResult:
    """Fig. 11: vary |F| (uniform data)."""
    return _cardinality_sweep("fig11-facility-size", "n_f", scale, methods)


def potential_size_sweep(
    scale: float = BENCH_SCALE, methods: Sequence[str] = DEFAULT_METHODS
) -> SweepResult:
    """Fig. 12: vary |P| (uniform data)."""
    return _cardinality_sweep("fig12-potential-size", "n_p", scale, methods)


def gaussian_sweep(
    scale: float = BENCH_SCALE, methods: Sequence[str] = DEFAULT_METHODS
) -> SweepResult:
    """Fig. 13: Gaussian datasets, vary sigma^2 (Table IV values)."""
    base = ExperimentConfig(distribution="gaussian")
    sweep = SweepResult(
        name="fig13-gaussian",
        parameter="sigma_sq",
        x_values=[float(v) for v in PAPER_SWEEPS["sigma_sq"]],
    )
    for sigma_sq in PAPER_SWEEPS["sigma_sq"]:
        config = replace(base.scaled(scale), sigma_sq=sigma_sq)
        sweep.runs.extend(run_config(config, methods, x=sigma_sq))
    return sweep


def zipfian_sweep(
    scale: float = BENCH_SCALE, methods: Sequence[str] = DEFAULT_METHODS
) -> SweepResult:
    """Section VIII-C's Zipfian experiment ("similar behavior ...
    omitted" in the paper), vary the skew alpha."""
    base = ExperimentConfig(distribution="zipfian")
    sweep = SweepResult(
        name="fig13b-zipfian",
        parameter="alpha",
        x_values=[float(v) for v in PAPER_SWEEPS["alpha"]],
    )
    for alpha in PAPER_SWEEPS["alpha"]:
        config = replace(base.scaled(scale), alpha=alpha)
        sweep.runs.extend(run_config(config, methods, x=alpha))
    return sweep


def real_dataset_runs(
    scale: float = 1.0, methods: Sequence[str] = DEFAULT_METHODS
) -> SweepResult:
    """Fig. 14: the US and NA real dataset groups (substitute data, see
    DESIGN.md §4); the x axis indexes the group (0 = US, 1 = NA)."""
    sweep = SweepResult(name="fig14-real", parameter="group", x_values=[0.0, 1.0])
    for x, group in enumerate(("US", "NA")):
        config = ExperimentConfig(real_group=group, scale=scale)
        sweep.runs.extend(run_config(config, methods, x=float(x)))
    return sweep
