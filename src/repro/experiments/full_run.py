"""One-call regeneration of the paper's whole evaluation.

``run_full_evaluation`` executes every figure sweep at a chosen scale
and writes, per figure: the paper-style text table, the raw CSV, and
one SVG per metric.  A summary index lands in ``SUMMARY.md``.  This is
what ``mindist reproduce`` runs.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments.metrics import SweepResult
from repro.experiments.plot import save_sweep_figures
from repro.experiments.report import format_sweep, sweep_to_csv
from repro.experiments.sweeps import (
    client_size_sweep,
    facility_size_sweep,
    gaussian_sweep,
    potential_size_sweep,
    real_dataset_runs,
    zipfian_sweep,
)

#: figure id -> (title, sweep callable).
FIGURES: dict[str, tuple[str, Callable[..., SweepResult]]] = {
    "fig10": ("Fig. 10 — effect of client set size", client_size_sweep),
    "fig11": ("Fig. 11 — effect of existing facility set size", facility_size_sweep),
    "fig12": (
        "Fig. 12 — effect of potential location set size",
        potential_size_sweep,
    ),
    "fig13": ("Fig. 13 — Gaussian datasets, varying sigma^2", gaussian_sweep),
    "fig13b": ("Sec. VIII-C — Zipfian datasets, varying alpha", zipfian_sweep),
    "fig14": ("Fig. 14 — real dataset groups (US/NA substitutes)", real_dataset_runs),
}


def run_full_evaluation(
    out_dir: str | Path,
    scale: float = 0.2,
    figures: Optional[Sequence[str]] = None,
    methods: Sequence[str] = ("SS", "QVC", "NFC", "MND"),
    echo: Callable[[str], None] = print,
) -> dict[str, SweepResult]:
    """Run the selected figures; returns their sweeps.

    ``out_dir`` receives ``<figure>.txt`` / ``.csv`` / ``.<metric>.svg``
    files plus a ``SUMMARY.md`` index.  Figure 14 always runs at the
    paper's real-dataset cardinalities scaled by ``scale``.
    """
    wanted = list(figures) if figures else list(FIGURES)
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures: {unknown}; have {sorted(FIGURES)}")

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    results: dict[str, SweepResult] = {}
    summary = [
        "# Reproduced evaluation",
        "",
        f"scale = {scale:g} (1.0 = the paper's cardinalities)",
        "",
    ]
    for fig in wanted:
        title, sweep_fn = FIGURES[fig]
        echo(f"running {fig}: {title} ...")
        started = time.perf_counter()
        sweep = sweep_fn(scale=scale, methods=methods)
        elapsed = time.perf_counter() - started
        results[fig] = sweep

        text = format_sweep(sweep)
        (out_dir / f"{fig}.txt").write_text(text + "\n")
        (out_dir / f"{fig}.csv").write_text(sweep_to_csv(sweep))
        svg_paths = save_sweep_figures(sweep, out_dir)
        echo(
            f"  done in {elapsed:.1f}s -> {fig}.txt, {fig}.csv, "
            f"{len(svg_paths)} SVGs"
        )

        summary.append(f"## {title}")
        summary.append("")
        summary.append("```")
        summary.append(text)
        summary.append("```")
        summary.append("")
    (out_dir / "SUMMARY.md").write_text("\n".join(summary))
    echo(f"summary written to {out_dir / 'SUMMARY.md'}")
    return results
