"""Running methods over configurations.

``run_config`` materialises one dataset, builds the shared workspace,
prepares each requested method's indexes *outside* the measured window,
runs the queries, and cross-checks that every method returned the same
answer (they answer the same well-defined query; disagreement would be
a bug, and the harness refuses to report numbers for wrong answers).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core import METHODS, Workspace, make_selector
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MeasuredRun
from repro.obs import InMemorySink, Tracer, phase_breakdown

DEFAULT_METHODS: tuple[str, ...] = ("SS", "QVC", "NFC", "MND")


def run_config(
    config: ExperimentConfig,
    methods: Sequence[str] = DEFAULT_METHODS,
    x: Optional[float] = None,
    workspace: Optional[Workspace] = None,
    profile: bool = True,
) -> list[MeasuredRun]:
    """Run ``methods`` on one configuration; returns their measurements.

    ``x`` tags the runs with the swept parameter value (for sweeps);
    ``workspace`` lets callers reuse an already-built workspace.  With
    ``profile`` (the default) each run executes under a tracer and its
    row carries the per-phase time/IO breakdown; pass False to measure
    with instrumentation fully in no-op mode.
    """
    unknown = [m for m in methods if m.upper() not in METHODS]
    if unknown:
        raise ValueError(f"unknown methods: {unknown}")
    ws = workspace if workspace is not None else Workspace(config.instance())

    results = []
    phases_by_method: dict[str, dict[str, dict[str, float]]] = {}
    for name in methods:
        selector = make_selector(ws, name)
        selector.prepare()
        if profile:
            sink = InMemorySink()
            ws.attach_tracer(Tracer([sink]))
            try:
                results.append((name, selector.select()))
            finally:
                ws.detach_tracer()
            if sink.last is not None:
                phases_by_method[name] = phase_breakdown(sink.last)
        else:
            results.append((name, selector.select()))

    # Consistency gate: all methods must report the same optimum value.
    drs = [r.dr for __, r in results]
    if drs and (max(drs) - min(drs)) > 1e-6 * max(1.0, max(drs)):
        raise AssertionError(
            f"methods disagree on {config.label()}: "
            + ", ".join(f"{n}={r.dr:.6f}" for n, r in results)
        )

    label = config.label()
    return [
        MeasuredRun(
            config_label=label,
            method=name,
            x=float(x) if x is not None else math.nan,
            elapsed_s=r.elapsed_s,
            io_total=r.io_total,
            index_pages=r.index_pages,
            dr=r.dr,
            location_id=r.location.sid,
            io_breakdown=dict(r.io_reads),
            phases=phases_by_method.get(name, {}),
        )
        for name, r in results
    ]
