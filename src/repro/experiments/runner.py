"""Running methods over configurations.

``run_config`` materialises one dataset, builds the shared workspace,
prepares each requested method's indexes *outside* the measured window,
runs the queries, and cross-checks that every method returned the same
answer (they answer the same well-defined query; disagreement would be
a bug, and the harness refuses to report numbers for wrong answers).

With ``repeats > 1`` each method's query is executed several times on
the same prepared workspace: the reported wall time is the median of
the repeats (noise smoothing for the benchmark recorder) while the
page-read counts — which are fully deterministic given a dataset — are
required to be identical across repeats.  A mismatch means some state
leaked between runs (buffer pool not cold-started, index mutated) and
raises instead of reporting an unreproducible number.
"""

from __future__ import annotations

import math
import statistics
from typing import Optional, Sequence

from repro.core import METHODS, Workspace, make_selector
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MeasuredRun
from repro.obs import InMemorySink, Tracer, phase_breakdown

DEFAULT_METHODS: tuple[str, ...] = ("SS", "QVC", "NFC", "MND")


def run_config(
    config: ExperimentConfig,
    methods: Sequence[str] = DEFAULT_METHODS,
    x: Optional[float] = None,
    workspace: Optional[Workspace] = None,
    profile: bool = True,
    repeats: int = 1,
) -> list[MeasuredRun]:
    """Run ``methods`` on one configuration; returns their measurements.

    ``x`` tags the runs with the swept parameter value (for sweeps);
    ``workspace`` lets callers reuse an already-built workspace.  With
    ``profile`` (the default) each run executes under a tracer and its
    row carries the per-phase time/IO breakdown; pass False to measure
    with instrumentation fully in no-op mode.  ``repeats`` re-runs each
    method's query and reports the median wall time (see module
    docstring for the determinism contract on page reads).
    """
    unknown = [m for m in methods if m.upper() not in METHODS]
    if unknown:
        raise ValueError(f"unknown methods: {unknown}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    ws = workspace if workspace is not None else Workspace(config.instance())

    results = []
    samples_by_method: dict[str, list[float]] = {}
    phases_by_method: dict[str, dict[str, dict[str, float]]] = {}
    for name in methods:
        selector = make_selector(ws, name)
        selector.prepare()
        result = None
        samples: list[float] = []
        for _ in range(repeats):
            if profile:
                sink = InMemorySink()
                ws.attach_tracer(Tracer([sink]))
                try:
                    r = selector.select()
                finally:
                    ws.detach_tracer()
                if sink.last is not None:
                    phases_by_method[name] = phase_breakdown(sink.last)
            else:
                r = selector.select()
            if result is not None and r.io_total != result.io_total:
                raise AssertionError(
                    f"{name}: page reads differ across repeats on "
                    f"{config.label()}: {result.io_total} vs {r.io_total} "
                    "(I/O must be deterministic)"
                )
            result = r
            samples.append(r.elapsed_s)
        results.append((name, result))
        samples_by_method[name] = samples

    # Consistency gate: all methods must report the same optimum value.
    drs = [r.dr for __, r in results]
    if drs and (max(drs) - min(drs)) > 1e-6 * max(1.0, max(drs)):
        raise AssertionError(
            f"methods disagree on {config.label()}: "
            + ", ".join(f"{n}={r.dr:.6f}" for n, r in results)
        )

    label = config.label()
    return [
        MeasuredRun(
            config_label=label,
            method=name,
            x=float(x) if x is not None else math.nan,
            elapsed_s=statistics.median(samples_by_method[name]),
            io_total=r.io_total,
            index_pages=r.index_pages,
            dr=r.dr,
            location_id=r.location.sid,
            io_breakdown=dict(r.io_reads),
            phases=phases_by_method.get(name, {}),
            elapsed_samples=list(samples_by_method[name]),
        )
        for name, r in results
    ]
