"""Experiment configuration (Table IV).

``ExperimentConfig`` describes one dataset configuration; the module
also encodes Table IV's parameter grid at two scales:

* **paper scale** — the exact cardinalities of Table IV (defaults in
  bold there: |C| = 100K, |F| = 5K, |P| = 5K);
* **bench scale** — the same grid shrunk by ``BENCH_SCALE`` so the whole
  pytest-benchmark suite runs in minutes under pure Python while
  preserving every cardinality *ratio* (and hence the comparative
  shapes the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.datasets.generators import SpatialInstance, make_instance
from repro.datasets.real import real_instance

#: Linear shrink factor applied to Table IV cardinalities for the fast
#: benchmark suite (1/5th of paper scale — large enough for the trees to
#: be deep enough that the paper's pruning/crossover shapes appear).
BENCH_SCALE = 0.2

#: Table IV sweeps (paper scale).  Values in **bold** in the paper are
#: the defaults used while other parameters vary.
PAPER_SWEEPS = {
    "n_c": [10_000, 50_000, 100_000, 500_000, 1_000_000],
    "n_f": [100, 500, 1_000, 5_000, 10_000],
    "n_p": [1_000, 5_000, 10_000, 50_000, 100_000],
    "sigma_sq": [0.125, 0.25, 0.5, 1.0, 2.0],
    "alpha": [0.1, 0.3, 0.6, 0.9, 1.2],
}

PAPER_DEFAULTS = {"n_c": 100_000, "n_f": 5_000, "n_p": 5_000}


@dataclass(frozen=True)
class ExperimentConfig:
    """One dataset configuration for the harness."""

    distribution: str = "uniform"
    n_c: int = PAPER_DEFAULTS["n_c"]
    n_f: int = PAPER_DEFAULTS["n_f"]
    n_p: int = PAPER_DEFAULTS["n_p"]
    sigma_sq: float = 1.0
    alpha: float = 0.9
    seed: int = 20120401  # ICDE 2012 vintage
    real_group: Optional[str] = None  # "US" / "NA" overrides the above
    scale: float = 1.0

    def scaled(self, scale: float) -> "ExperimentConfig":
        """The same configuration shrunk linearly by ``scale``."""
        return replace(
            self,
            n_c=max(10, int(self.n_c * scale)),
            n_f=max(2, int(self.n_f * scale)),
            n_p=max(2, int(self.n_p * scale)),
            scale=self.scale * scale,
        )

    def instance(self) -> SpatialInstance:
        """Materialise the dataset this configuration describes."""
        if self.real_group is not None:
            return real_instance(self.real_group, rng=self.seed, scale=self.scale)
        params = {}
        if self.distribution == "gaussian":
            params["sigma_sq"] = self.sigma_sq
        elif self.distribution == "zipfian":
            params["alpha"] = self.alpha
        return make_instance(
            self.n_c,
            self.n_f,
            self.n_p,
            distribution=self.distribution,
            rng=self.seed,
            **params,
        )

    def label(self) -> str:
        if self.real_group is not None:
            return f"real-{self.real_group}"
        extra = ""
        if self.distribution == "gaussian":
            extra = f",s2={self.sigma_sq:g}"
        elif self.distribution == "zipfian":
            extra = f",a={self.alpha:g}"
        return (
            f"{self.distribution}(nc={self.n_c},nf={self.n_f},np={self.n_p}{extra})"
        )


def bench_default() -> ExperimentConfig:
    """The Table IV default configuration at bench scale."""
    return ExperimentConfig().scaled(BENCH_SCALE)


def bench_sweep_values(parameter: str) -> list:
    """Table IV sweep values, shrunk for cardinality parameters."""
    values = PAPER_SWEEPS[parameter]
    if parameter in ("n_c", "n_f", "n_p"):
        return [max(2, int(v * BENCH_SCALE)) for v in values]
    return list(values)
