"""Plain-text and CSV reporting of sweep results.

The paper presents its evaluation as line plots; in a terminal the same
series read best as aligned tables with one row per swept value and one
column per method — that is what ``format_sweep`` emits, one table per
metric (running time, #I/Os, index size).
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.experiments.metrics import SweepResult

#: metric key -> (table title, value formatter)
METRICS: dict[str, tuple[str, str]] = {
    "elapsed_s": ("running time (s)", "{:.4f}"),
    "io_total": ("number of I/Os", "{:d}"),
    "index_pages": ("index size (pages)", "{:d}"),
}


def format_sweep(
    sweep: SweepResult,
    metrics: Sequence[str] = ("elapsed_s", "io_total", "index_pages"),
) -> str:
    """Aligned tables for the requested metrics, paper-figure style."""
    methods = sweep.methods()
    blocks: list[str] = []
    for metric in metrics:
        title, fmt = METRICS[metric]
        header = [sweep.parameter] + methods
        rows: list[list[str]] = []
        for i, x in enumerate(sweep.x_values):
            row = [f"{x:g}"]
            for m in methods:
                value = sweep.series(m, metric)[i]
                row.append(fmt.format(int(value) if metric != "elapsed_s" else value))
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        lines = [f"{sweep.name} — {title}"]
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def sweep_to_csv(sweep: SweepResult) -> str:
    """All runs of a sweep as CSV (one row per run)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "sweep",
            "parameter",
            "x",
            "method",
            "elapsed_s",
            "io_total",
            "index_pages",
            "dr",
            "location_id",
        ]
    )
    for run in sweep.runs:
        writer.writerow(
            [
                sweep.name,
                sweep.parameter,
                run.x,
                run.method,
                f"{run.elapsed_s:.6f}",
                run.io_total,
                run.index_pages,
                f"{run.dr:.6f}",
                run.location_id,
            ]
        )
    return buf.getvalue()
