"""Measurement records produced by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MeasuredRun:
    """One (configuration, method) measurement.

    ``phases`` is the per-phase observability breakdown (span name ->
    ``{elapsed_s, self_s, page_reads, calls}``) captured by the runner's
    tracer; empty when the run was executed without profiling.

    ``elapsed_s`` is the median over ``elapsed_samples`` when the runner
    executed the query more than once (``repeats > 1``); the raw samples
    are kept so the benchmark recorder can serialise them.
    """

    config_label: str
    method: str
    x: float  # the swept parameter value this run belongs to
    elapsed_s: float
    io_total: int
    index_pages: int
    dr: float
    location_id: int
    io_breakdown: dict[str, int] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    elapsed_samples: list[float] = field(default_factory=list)

    def phase_reads(self) -> int:
        """Total page reads across phases (equals ``io_total`` when the
        run was profiled — the smoke benchmark's invariant)."""
        return int(sum(row["page_reads"] for row in self.phases.values()))

    def index_reads(self) -> int:
        """Page reads served by index structures (``R_*`` sources)."""
        return sum(
            pages
            for source, pages in self.io_breakdown.items()
            if source.startswith("R_")
        )

    def data_reads(self) -> int:
        """Page reads served by plain data files (non-index sources)."""
        return self.io_total - self.index_reads()


@dataclass
class SweepResult:
    """All measurements of one parameter sweep (one paper figure)."""

    name: str
    parameter: str
    x_values: list[float]
    runs: list[MeasuredRun] = field(default_factory=list)

    def series(self, method: str, metric: str) -> list[float]:
        """The per-x series of ``metric`` for ``method``, in x order.

        ``metric`` is one of ``elapsed_s``, ``io_total``, ``index_pages``.
        """
        by_x = {run.x: run for run in self.runs if run.method == method}
        return [getattr(by_x[x], metric) for x in self.x_values]

    def methods(self) -> list[str]:
        seen: list[str] = []
        for run in self.runs:
            if run.method not in seen:
                seen.append(run.method)
        return seen
