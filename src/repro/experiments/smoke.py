"""CI smoke benchmark: a tiny Fig.-10-style run with hard assertions.

Runs one small client-size configuration (the shape of the paper's
Fig. 10) through the profiled experiment runner and asserts the
invariants CI must keep honest:

1. **paper ordering** — MND performs fewer page reads than the SS
   baseline (the paper's headline comparison; at very small scales the
   ordering genuinely inverts, so the configuration below is the
   smallest one where the paper's regime holds);
2. **instrumentation consistency** — every method's per-phase page-read
   attribution sums exactly to its ``IOStats`` total, so a silent
   tracing regression cannot creep in;
3. **agreement** — all methods return the same optimum (enforced inside
   :func:`~repro.experiments.runner.run_config`).

Run it directly::

    PYTHONPATH=src python -m repro.experiments.smoke
"""

from __future__ import annotations

import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MeasuredRun
from repro.experiments.runner import run_config

#: Small enough for a CI minute, large enough for MND's pruning to beat
#: the sequential scan (cf. Fig. 10: the gap widens with |C| and |P|).
SMOKE_CONFIG = ExperimentConfig(n_c=20_000, n_f=1_000, n_p=1_000)

SMOKE_METHODS = ("SS", "QVC", "NFC", "MND")


def check_phase_attribution(runs: list[MeasuredRun]) -> None:
    """Assert every profiled run's per-phase reads sum to its I/O total.

    Shared by the smoke benchmark and the :mod:`repro.bench` recorder:
    a benchmark whose instrumentation silently under-attributes I/O is
    worse than no benchmark, so both refuse to report such numbers.
    """
    for run in runs:
        if not run.phases:
            raise AssertionError(f"{run.method}: no phase breakdown captured")
        if run.phase_reads() != run.io_total:
            raise AssertionError(
                f"{run.method}: phase reads {run.phase_reads()} != "
                f"I/O total {run.io_total}"
            )


def check_paper_ordering(runs: list[MeasuredRun]) -> None:
    """Assert the paper's headline Fig. 10 ordering: MND I/O < SS I/O."""
    by_method = {run.method: run for run in runs}
    mnd, ss = by_method["MND"], by_method["SS"]
    if mnd.io_total >= ss.io_total:
        raise AssertionError(
            f"MND I/O ({mnd.io_total}) is not below SS I/O ({ss.io_total}); "
            "the paper's Fig. 10 ordering regressed"
        )


def run_smoke(config: ExperimentConfig = SMOKE_CONFIG) -> list[MeasuredRun]:
    """Run the smoke configuration profiled; raises on any violation."""
    runs = run_config(config, methods=SMOKE_METHODS, profile=True)
    check_phase_attribution(runs)
    check_paper_ordering(runs)
    return runs


def main() -> int:
    runs = run_smoke()
    width = max(len(run.method) for run in runs)
    print(f"smoke config: {SMOKE_CONFIG.label()}")
    for run in runs:
        phases = ", ".join(
            f"{name}={int(row['page_reads'])}"
            for name, row in sorted(run.phases.items())
            if row["page_reads"]
        )
        print(
            f"{run.method:>{width}}  io={run.io_total:>5}  "
            f"elapsed={run.elapsed_s:.3f}s  [{phases}]"
        )
    print("smoke ok: MND < SS on I/O and all phase breakdowns are consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
