"""Figure rendering: pure-Python SVG line charts.

The paper's evaluation is presented as log-scale line plots with one
series per method; this module renders a
:class:`~repro.experiments.metrics.SweepResult` into the same kind of
figure as a standalone SVG file, with no plotting dependency.  Axis
ticks, legend and per-method markers follow the paper's layout closely
enough that a reproduced figure reads side-by-side with the original.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.metrics import SweepResult

#: Method -> (stroke colour, marker shape). Colour-blind-safe palette.
_SERIES_STYLE = {
    "SS": ("#888888", "square"),
    "QVC": ("#d62728", "triangle"),
    "NFC": ("#1f77b4", "circle"),
    "MND": ("#2ca02c", "diamond"),
}
_DEFAULT_STYLE = ("#9467bd", "circle")

_WIDTH, _HEIGHT = 480, 360
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 28, 48

_METRIC_LABEL = {
    "elapsed_s": "running time (s)",
    "io_total": "number of I/Os",
    "index_pages": "index size (pages)",
}


def _nice_log_ticks(lo: float, hi: float) -> list[float]:
    """Powers of ten covering [lo, hi]."""
    first = math.floor(math.log10(lo)) if lo > 0 else 0
    last = math.ceil(math.log10(hi)) if hi > 0 else 1
    return [10.0 ** e for e in range(first, last + 1)]


def _nice_linear_ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / count
    magnitude = 10 ** math.floor(math.log10(raw))
    step = min(
        (m * magnitude for m in (1, 2, 5, 10) if m * magnitude >= raw),
        default=magnitude,
    )
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step / 2:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _marker(shape: str, x: float, y: float, color: str) -> str:
    if shape == "square":
        return (
            f'<rect x="{x - 3.5:.1f}" y="{y - 3.5:.1f}" width="7" height="7" '
            f'fill="{color}"/>'
        )
    if shape == "triangle":
        return (
            f'<polygon points="{x:.1f},{y - 4:.1f} {x - 4:.1f},{y + 3.5:.1f} '
            f'{x + 4:.1f},{y + 3.5:.1f}" fill="{color}"/>'
        )
    if shape == "diamond":
        return (
            f'<polygon points="{x:.1f},{y - 4.5:.1f} {x + 4.5:.1f},{y:.1f} '
            f'{x:.1f},{y + 4.5:.1f} {x - 4.5:.1f},{y:.1f}" fill="{color}"/>'
        )
    return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>'


def render_sweep_svg(
    sweep: SweepResult,
    metric: str = "io_total",
    log_x: bool = True,
    log_y: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render one metric of a sweep as an SVG document (a string)."""
    if metric not in _METRIC_LABEL:
        raise ValueError(f"unknown metric {metric!r}")
    methods = sweep.methods()
    if not methods or not sweep.x_values:
        raise ValueError("cannot render an empty sweep")

    xs = list(sweep.x_values)
    series = {m: sweep.series(m, metric) for m in methods}
    all_y = [v for values in series.values() for v in values]

    # Zero values break a log axis; fall back to linear when present.
    if log_y and min(all_y) <= 0:
        log_y = False
    if log_x and min(xs) <= 0:
        log_x = False

    def x_pos(x: float) -> float:
        lo, hi = min(xs), max(xs)
        if hi == lo:
            frac = 0.5
        elif log_x:
            frac = (math.log10(x) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
        else:
            frac = (x - lo) / (hi - lo)
        return _MARGIN_L + frac * (_WIDTH - _MARGIN_L - _MARGIN_R)

    y_lo, y_hi = min(all_y), max(all_y)
    if log_y:
        ticks_y = _nice_log_ticks(y_lo, y_hi)
        y_lo, y_hi = ticks_y[0], ticks_y[-1]
    else:
        ticks_y = _nice_linear_ticks(0.0 if y_lo > 0 else y_lo, y_hi)
        y_lo, y_hi = ticks_y[0], ticks_y[-1]

    def y_pos(y: float) -> float:
        if y_hi == y_lo:
            frac = 0.5
        elif log_y:
            frac = (math.log10(max(y, 1e-12)) - math.log10(y_lo)) / (
                math.log10(y_hi) - math.log10(y_lo)
            )
        else:
            frac = (y - y_lo) / (y_hi - y_lo)
        return _HEIGHT - _MARGIN_B - frac * (_HEIGHT - _MARGIN_T - _MARGIN_B)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="13">{title or sweep.name}</text>',
    ]

    # Axes frame.
    x0, x1 = _MARGIN_L, _WIDTH - _MARGIN_R
    y0, y1 = _HEIGHT - _MARGIN_B, _MARGIN_T
    parts.append(
        f'<rect x="{x0}" y="{y1}" width="{x1 - x0}" height="{y0 - y1}" '
        f'fill="none" stroke="#333"/>'
    )

    # Y ticks and grid lines.
    for tick in ticks_y:
        y = y_pos(tick)
        if not (y1 - 1 <= y <= y0 + 1):
            continue
        label = f"{tick:g}"
        parts.append(
            f'<line x1="{x0}" y1="{y:.1f}" x2="{x1}" y2="{y:.1f}" '
            f'stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{x0 - 6}" y="{y + 3.5:.1f}" text-anchor="end">{label}</text>'
        )

    # X ticks: the swept values themselves (paper style).
    for x in xs:
        px = x_pos(x)
        parts.append(
            f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" y2="{y0 + 4}" '
            f'stroke="#333"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{y0 + 16}" text-anchor="middle">{x:g}</text>'
        )
    parts.append(
        f'<text x="{(x0 + x1) / 2:.0f}" y="{_HEIGHT - 10}" '
        f'text-anchor="middle">{sweep.parameter}</text>'
    )
    parts.append(
        f'<text x="14" y="{(y0 + y1) / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(y0 + y1) / 2:.0f})">'
        f"{_METRIC_LABEL[metric]}</text>"
    )

    # Series.
    for m in methods:
        color, shape = _SERIES_STYLE.get(m, _DEFAULT_STYLE)
        pts = [(x_pos(x), y_pos(v)) for x, v in zip(xs, series[m])]
        path = " ".join(f"{px:.1f},{py:.1f}" for px, py in pts)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for px, py in pts:
            parts.append(_marker(shape, px, py, color))

    # Legend (top-left inside the frame).
    for i, m in enumerate(methods):
        color, shape = _SERIES_STYLE.get(m, _DEFAULT_STYLE)
        ly = y1 + 14 + i * 15
        parts.append(_marker(shape, x0 + 12, ly - 3, color))
        parts.append(f'<text x="{x0 + 22}" y="{ly}">{m}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_sweep_figures(
    sweep: SweepResult,
    directory: str | Path,
    metrics: Sequence[str] = ("elapsed_s", "io_total", "index_pages"),
) -> list[Path]:
    """Write one SVG per metric into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for metric in metrics:
        path = directory / f"{sweep.name}.{metric}.svg"
        path.write_text(render_sweep_svg(sweep, metric))
        written.append(path)
    return written
