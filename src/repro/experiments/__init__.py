"""The experimental study of Section VIII, figure by figure.

Usage::

    from repro.experiments import client_size_sweep, format_sweep
    sweep = client_size_sweep(scale=0.05)   # Fig. 10 at 1/20 scale
    print(format_sweep(sweep))

Every sweep runs all four methods on freshly generated datasets,
verifies they agree on the answer, and reports the three paper metrics.
"""

from repro.experiments.config import (
    BENCH_SCALE,
    PAPER_DEFAULTS,
    PAPER_SWEEPS,
    ExperimentConfig,
    bench_default,
    bench_sweep_values,
)
from repro.experiments.full_run import FIGURES, run_full_evaluation
from repro.experiments.metrics import MeasuredRun, SweepResult
from repro.experiments.plot import render_sweep_svg, save_sweep_figures
from repro.experiments.report import format_sweep, sweep_to_csv
from repro.experiments.runner import DEFAULT_METHODS, run_config
from repro.experiments.sweeps import (
    client_size_sweep,
    facility_size_sweep,
    gaussian_sweep,
    potential_size_sweep,
    real_dataset_runs,
    zipfian_sweep,
)

__all__ = [
    "BENCH_SCALE",
    "DEFAULT_METHODS",
    "ExperimentConfig",
    "FIGURES",
    "run_full_evaluation",
    "MeasuredRun",
    "PAPER_DEFAULTS",
    "PAPER_SWEEPS",
    "SweepResult",
    "bench_default",
    "bench_sweep_values",
    "client_size_sweep",
    "facility_size_sweep",
    "format_sweep",
    "gaussian_sweep",
    "potential_size_sweep",
    "real_dataset_runs",
    "render_sweep_svg",
    "save_sweep_figures",
    "run_config",
    "sweep_to_csv",
    "zipfian_sweep",
]
