"""Columnar views of R-tree nodes, cached in the workspace leaf cache.

The join and window traversals of :mod:`repro.core` used to decode each
leaf into ad-hoc array tuples inside the selectors.  This module is the
single decode point for all of them: given a tree and a node, it
returns the structure-of-arrays buffers of
:mod:`repro.kernels.columnar`, memoized in a
:class:`~repro.storage.leafcache.DecodedLeafCache` under the node's
``(tree_name, node_id)`` key (leaf and branch nodes share one id space
per tree, so the key space cannot collide).

Decoding takes the fastest route available:

* column-encoded disk trees (v2 page files, see
  :mod:`repro.storage.soa`) expose ``leaf_columns`` — the page *is*
  the columns, so "decoding" is zero-copy view construction;
* row-encoded disk trees (:class:`~repro.rtree.persist.DiskRTree` over
  v1 files) expose ``node_page_bytes``, so a whole page of packed
  records bulk-decodes straight from bytes via :mod:`repro.kernels` —
  under the vector backend that is one ``np.frombuffer`` instead of
  ``n`` unpacks;
* in-memory trees decode from the node's entry objects.

Both routes produce identical column values for the same logical
records.  Crucially, **nothing here touches I/O accounting**: callers
hand over nodes they already obtained through a charged ``read_node``
(or an explicitly uncharged ``node``/``peek``), and ``node_page_bytes``
peeks the page without charging — caching columns never changes
``io_total``, which is what keeps the vector/scalar backends and any
worker count byte-identical in the benches.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import kernels
from repro.kernels.columnar import (
    BranchColumns,
    ClientColumns,
    RectColumns,
    SiteColumns,
)


def _page_bytes(tree: Any, node_id: int):
    """``(level, count, offset, data)`` for byte-backed trees, else None."""
    reader = getattr(tree, "node_page_bytes", None)
    if reader is None:
        return None
    return reader(node_id)


def _column_leaf(tree: Any, node: Any):
    """Zero-copy payload columns for v2 leaves, else None.

    A :class:`~repro.rtree.persist.ColumnLeafNode` carries the column
    views it was decoded from, so the common case costs one attribute
    read.  ``leaf_columns`` (on ``DiskRTree``) answers None for
    row-encoded files, so this is also the guard that keeps v2 pages
    out of the packed-row bulk decoders below.
    """
    cols = getattr(node, "columns", None)
    if cols is not None:
        return cols
    reader = getattr(tree, "leaf_columns", None)
    if reader is None:
        return None
    return reader(node.node_id)


def leaf_site_columns(tree: Any, node: Any, cache: Any) -> SiteColumns:
    """Columns of the site records in one leaf of a potential-location tree."""

    def decode() -> SiteColumns:
        cols = _column_leaf(tree, node)
        if cols is not None:
            return cols
        page = _page_bytes(tree, node.node_id)
        if page is not None:
            __, count, offset, data = page
            return kernels.decode_site_columns(data, count, offset=offset)
        return SiteColumns.from_sites([e.payload for e in node.entries])

    return cache.get(tree.name, tree.version, node.node_id, decode)


def leaf_client_columns(tree: Any, node: Any, cache: Any) -> ClientColumns:
    """Columns of the client records in one leaf of ``R_C`` / ``R_C^m``.

    Byte-backed pages carry no weight field and decode with unit
    weights, exactly like their object decode through ``ClientCodec``.
    """

    def decode() -> ClientColumns:
        cols = _column_leaf(tree, node)
        if cols is not None:
            return cols
        page = _page_bytes(tree, node.node_id)
        if page is not None:
            __, count, offset, data = page
            return kernels.decode_client_columns(data, count, offset=offset)
        return ClientColumns.from_clients([e.payload for e in node.entries])

    return cache.get(tree.name, tree.version, node.node_id, decode)


def nfc_leaf_columns(tree: Any, node: Any, cache: Any) -> ClientColumns:
    """NFC circles of one RNN-tree leaf: centers, radii (as ``dnn``), weights.

    Reconstructed from the entries' square MBRs — lines 12–13 of the
    paper's Algorithm 4 — not from the client records, so the float
    values match the geometric reconstruction the join has always used.
    The columnar fast path builds those same square rects from the
    ``xs``/``ys``/``dnn`` columns before the circle reconstruction, so
    its floats are bit-identical to the entry-object route.
    """

    def decode() -> ClientColumns:
        cols = _column_leaf(tree, node)
        if cols is not None:
            rects = RectColumns(
                xmin=cols.xs - cols.dnn,
                ymin=cols.ys - cols.dnn,
                xmax=cols.xs + cols.dnn,
                ymax=cols.ys + cols.dnn,
            )
            return kernels.circle_columns_from_rects(rects, cols.ids, cols.weights)
        entries = node.entries
        n = len(entries)
        rects = RectColumns.from_rects(e.mbr for e in entries)
        ids = np.fromiter((e.payload.cid for e in entries), np.uint32, n)
        weights = np.fromiter((e.payload.weight for e in entries), np.float64, n)
        return kernels.circle_columns_from_rects(rects, ids, weights)

    return cache.get(tree.name, tree.version, node.node_id, decode)


def branch_columns(tree: Any, node: Any, cache: Any) -> BranchColumns:
    """Columns of one internal node: MBRs, child ids, MNDs when present."""

    def decode() -> BranchColumns:
        page = _page_bytes(tree, node.node_id)
        if page is not None:
            __, count, offset, data = page
            return kernels.decode_branch_columns(
                data, count, with_mnd=bool(getattr(tree, "has_mnd", False)),
                offset=offset,
            )
        return BranchColumns.from_entries(node.entries)

    return cache.get(tree.name, tree.version, node.node_id, decode)
