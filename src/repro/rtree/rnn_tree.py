"""The RNN-tree ``R_C^n`` (Korn & Muthukrishnan, SIGMOD 2000).

The *extra* index required by the NFC method: a plain R-tree whose data
entries are the square MBRs of the clients' nearest-facility circles.
A potential location ``p`` influences client ``c`` iff ``p`` falls
strictly inside ``NFC(c)``; the tree retrieves candidate circles by MBR,
and the exact circle test runs on the stored client record.

Because the NFC of ``c`` is centred at ``c`` with radius ``dnn(c, F)``,
the square MBR encodes both: the centre is the client position and half
the edge length is the NFD — the reconstruction Algorithm 4 performs at
the leaves.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load
from repro.rtree.rtree import RTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.records import PAGE_SIZE, RNN_ENTRY
from repro.storage.stats import IOStats


def build_rnn_tree(
    name: str,
    stats: IOStats,
    clients: Iterable[Any],
    point_of: Callable[[Any], Point],
    dnn_of: Callable[[Any], float],
    buffer_pool: Optional[LRUBufferPool] = None,
    page_size: int = PAGE_SIZE,
    use_bulk_load: bool = True,
) -> RTree:
    """Build the RNN-tree over the clients' nearest-facility circles.

    ``point_of`` / ``dnn_of`` extract position and precomputed NFD from a
    client record.  With ``use_bulk_load`` (default) the tree is packed
    via STR; otherwise it is built by repeated insertion, exercising the
    dynamic maintenance path.
    """
    tree = RTree(
        name,
        stats,
        leaf_layout=RNN_ENTRY,
        branch_layout=RNN_ENTRY,
        buffer_pool=buffer_pool,
        page_size=page_size,
    )
    items = [(Circle(Point(*point_of(c)), dnn_of(c)).mbr(), c) for c in clients]
    if use_bulk_load:
        bulk_load(tree, items)
    else:
        for mbr, client in items:
            tree.insert(mbr, client)
    return tree
