"""R-tree spatial join (Brinkhoff, Kriegel & Seeger, SIGMOD 1993).

A synchronized depth-first traversal of two R-trees that reports all
pairs of data entries with intersecting MBRs.  The NFC method
(Algorithm 4) is exactly this join between ``R_P`` and the RNN-tree; the
MND method replaces the intersection predicate with its MND-based test.
This module provides the general intersection join for the public API;
the method-specific joins in :mod:`repro.core` reuse the same traversal
shape with their own predicates and accumulation.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.rtree.node import Node
from repro.rtree.rtree import RTree


def intersection_join(tree_a: RTree, tree_b: RTree) -> Iterator[tuple[Any, Any]]:
    """Yield ``(payload_a, payload_b)`` for all intersecting entry pairs."""
    if tree_a.num_entries == 0 or tree_b.num_entries == 0:
        return
    root_a = tree_a.read_node(tree_a.root_id)
    root_b = tree_b.read_node(tree_b.root_id)
    yield from _join(tree_a, root_a, tree_b, root_b)


def _join(
    tree_a: RTree, node_a: Node, tree_b: RTree, node_b: Node
) -> Iterator[tuple[Any, Any]]:
    if node_a.is_leaf and node_b.is_leaf:
        tracer = tree_a.stats.tracer
        for ea in node_a.entries:
            for eb in node_b.entries:
                if ea.mbr.intersects(eb.mbr):
                    tracer.count("join.result_pairs")
                    yield ea.payload, eb.payload
    elif node_a.is_leaf:
        # Descend the taller tree until levels align.
        for eb in node_b.entries:
            if eb.mbr.intersects(node_a.mbr()):
                yield from _join(tree_a, node_a, tree_b, tree_b.read_node(eb.child_id))
    elif node_b.is_leaf:
        for ea in node_a.entries:
            if ea.mbr.intersects(node_b.mbr()):
                yield from _join(tree_a, tree_a.read_node(ea.child_id), tree_b, node_b)
    else:
        for ea in node_a.entries:
            for eb in node_b.entries:
                if ea.mbr.intersects(eb.mbr):
                    yield from _join(
                        tree_a,
                        tree_a.read_node(ea.child_id),
                        tree_b,
                        tree_b.read_node(eb.child_id),
                    )
