"""The R*-tree (Beckmann, Kriegel, Schneider & Seeger, SIGMOD 1990).

The paper uses a Guttman R-tree but notes that "any hierarchical spatial
index could be used"; this variant substantiates that claim for the
ablation study.  It differs from the base tree in three classic ways:

* **ChooseSubtree** — at the level above the leaves, the child is picked
  by least *overlap* enlargement (restricted to the 32 least-area-
  enlargement candidates, the standard heuristic); higher levels keep
  the least-area-enlargement rule.
* **Split** — axis chosen by minimum total margin over all valid
  distributions; the distribution on that axis chosen by minimum
  overlap, then minimum total area.
* **Forced reinsertion** — on the first overflow of each level per
  insertion, the 30 % of entries farthest from the node centre are
  removed and reinserted instead of splitting, which tightens the tree
  over time.

Deletion and bulk loading are inherited unchanged (STR packing makes the
insertion policy irrelevant for bulk-loaded trees).
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.rect import Rect
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.rtree import RTree

#: Fraction of entries evicted by forced reinsertion.
REINSERT_FRACTION = 0.3
#: ChooseSubtree considers at most this many least-enlargement children.
CHOOSE_SUBTREE_CANDIDATES = 32


class RStarTree(RTree):
    """An R-tree with R* insertion heuristics."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._reinserted_levels: set[int] = set()
        self._pending: list[tuple[LeafEntry | BranchEntry, int]] = []
        self._op_active = False

    # ------------------------------------------------------------------
    # Insertion protocol with deferred reinsertions
    # ------------------------------------------------------------------
    def _insert_at_level(self, entry: LeafEntry | BranchEntry, level: int) -> None:
        """Wrap every top-level placement (fresh inserts *and* the
        orphan reinsertions performed by delete's condense step) in one
        forced-reinsertion episode, draining the pending queue before
        returning."""
        if self._op_active:
            super()._insert_at_level(entry, level)
            return
        self._op_active = True
        self._reinserted_levels = set()
        self._pending = []
        try:
            super()._insert_at_level(entry, level)
            while self._pending:
                deferred, deferred_level = self._pending.pop()
                super()._insert_at_level(deferred, deferred_level)
        finally:
            self._op_active = False

    def _handle_overflow(self, node: Node) -> Optional[BranchEntry]:
        # Forced reinsertion: once per level per insertion, never on the
        # root (the root has no parent entry to shrink).
        if node.level not in self._reinserted_levels and node.node_id != self.root_id:
            self._reinserted_levels.add(node.level)
            self._force_reinsert(node)
            return None
        return self._split_node(node)

    def _force_reinsert(self, node: Node) -> None:
        count = max(1, int(len(node.entries) * REINSERT_FRACTION))
        center = node.mbr().center
        # Evict the entries whose centres are farthest from the node
        # centre (the R* "far reinsert" policy).
        node.entries.sort(
            key=lambda e: e.mbr.center.distance_sq_to(center), reverse=True
        )
        evicted = node.entries[:count]
        node.entries = node.entries[count:]
        self._pending.extend((entry, node.level) for entry in evicted)

    # ------------------------------------------------------------------
    # ChooseSubtree
    # ------------------------------------------------------------------
    def _choose_subtree(self, node: Node, mbr: Rect) -> BranchEntry:
        if node.level != 1:
            return super()._choose_subtree(node, mbr)
        # Children are leaves: minimise overlap enlargement among the
        # least-area-enlargement candidates.
        ranked = sorted(node.entries, key=lambda e: e.mbr.enlargement(mbr))
        candidates = ranked[:CHOOSE_SUBTREE_CANDIDATES]
        best = candidates[0]
        best_key = (float("inf"), float("inf"), float("inf"))
        for entry in candidates:
            grown = entry.mbr.union(mbr)
            overlap_delta = 0.0
            for other in node.entries:
                if other is entry:
                    continue
                before = entry.mbr.intersection(other.mbr)
                after = grown.intersection(other.mbr)
                overlap_delta += (after.area if after else 0.0) - (
                    before.area if before else 0.0
                )
            key = (overlap_delta, entry.mbr.enlargement(mbr), entry.mbr.area)
            if key < best_key:
                best_key = key
                best = entry
        return best

    # ------------------------------------------------------------------
    # R* split
    # ------------------------------------------------------------------
    def _split_node(self, node: Node) -> BranchEntry:
        group1, group2 = _rstar_split(node.entries, self._min_entries(node))
        node.entries = group1
        sibling = self._alloc_node(node.level)
        sibling.entries = group2
        return self._entry_for_child(sibling)


def _distributions(entries: list, m: int):
    """All R* distributions of a sorted entry list: the first ``k``
    entries versus the rest, for k in m .. len-m."""
    for k in range(m, len(entries) - m + 1):
        yield entries[:k], entries[k:]


def _rstar_split(entries: list, min_entries: int) -> tuple[list, list]:
    """Axis by minimum margin sum, distribution by minimum overlap then
    minimum combined area."""
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"cannot split {len(entries)} entries with min fill {min_entries}"
        )
    best_axis_sorts = None
    best_margin_sum = float("inf")
    for axis in (0, 1):  # x, y
        lower = sorted(entries, key=lambda e: (e.mbr[axis], e.mbr[axis + 2]))
        upper = sorted(entries, key=lambda e: (e.mbr[axis + 2], e.mbr[axis]))
        margin_sum = 0.0
        for ordering in (lower, upper):
            for g1, g2 in _distributions(ordering, min_entries):
                bb1 = Rect.union_all(e.mbr for e in g1)
                bb2 = Rect.union_all(e.mbr for e in g2)
                margin_sum += bb1.margin + bb2.margin
        if margin_sum < best_margin_sum:
            best_margin_sum = margin_sum
            best_axis_sorts = (lower, upper)

    assert best_axis_sorts is not None
    best_split = None
    best_key = (float("inf"), float("inf"))
    for ordering in best_axis_sorts:
        for g1, g2 in _distributions(ordering, min_entries):
            bb1 = Rect.union_all(e.mbr for e in g1)
            bb2 = Rect.union_all(e.mbr for e in g2)
            overlap = bb1.intersection(bb2)
            key = (overlap.area if overlap else 0.0, bb1.area + bb2.area)
            if key < best_key:
                best_key = key
                best_split = (list(g1), list(g2))
    assert best_split is not None
    return best_split
