"""R-tree nodes.

A node is one simulated disk page holding a list of entries.  ``level``
counts from 0 at the leaves; ``level >= 1`` nodes hold
:class:`~repro.rtree.entry.BranchEntry` children.
"""

from __future__ import annotations

from typing import Union

from repro.geometry.rect import Rect
from repro.rtree.entry import BranchEntry, LeafEntry

Entry = Union[LeafEntry, BranchEntry]


class Node:
    """One R-tree node (== one disk page)."""

    __slots__ = ("node_id", "level", "entries")

    def __init__(self, node_id: int, level: int, entries: list[Entry] | None = None):
        self.node_id = node_id
        self.level = level
        self.entries: list[Entry] = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """The tight MBR of all entries; raises for an empty node."""
        if not self.entries:
            raise ValueError(f"node {self.node_id} has no entries")
        return Rect.union_all(e.mbr for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"branch(level={self.level})"
        return f"Node(id={self.node_id}, {kind}, entries={len(self.entries)})"
