"""R-tree entries.

Two entry kinds exist:

* :class:`LeafEntry` — an MBR plus the data payload it bounds.  For point
  trees the MBR is degenerate; for the RNN-tree it is the square MBR of a
  nearest-facility circle.
* :class:`BranchEntry` — an MBR plus the page id of a child node.  The
  optional ``mnd`` field carries the maximum-NFC-distance augmentation of
  Section VI; it stays ``None`` in plain R-trees.

Entries are mutable (their MBRs are adjusted during inserts) but simple;
all tree logic lives in :mod:`repro.rtree.rtree`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.geometry.rect import Rect


class LeafEntry:
    """A data entry: ``mbr`` bounds ``payload``."""

    __slots__ = ("mbr", "payload")

    def __init__(self, mbr: Rect, payload: Any):
        self.mbr = mbr
        self.payload = payload

    def __repr__(self) -> str:
        return f"LeafEntry({self.mbr}, {self.payload!r})"


class BranchEntry:
    """A directory entry: ``mbr`` bounds the subtree under ``child_id``."""

    __slots__ = ("mbr", "child_id", "mnd")

    def __init__(self, mbr: Rect, child_id: int, mnd: Optional[float] = None):
        self.mbr = mbr
        self.child_id = child_id
        self.mnd = mnd

    def __repr__(self) -> str:
        suffix = f", mnd={self.mnd:.4f}" if self.mnd is not None else ""
        return f"BranchEntry({self.mbr}, child={self.child_id}{suffix})"
