"""R-tree persistence: byte-accurate page files on real disk.

``save_rtree`` serialises any tree built by this package (plain,
RNN-tree or MND-augmented) into a :class:`~repro.storage.diskfile.PageFile`
whose pages hold exactly the entry layouts of
:mod:`repro.storage.records`; ``DiskRTree`` reopens such a file as a
*read-only* index that answers the same window / NN / join queries with
identical results and I/O accounting — node pages are decoded on every
counted read, exactly like a database reading from disk.

Page 0 is a metadata page; tree nodes occupy pages 1..n.

Leaf entries store *only* the payload record; the entry MBR is derived
from it at decode time via the tree's ``leaf_mbr`` function (a point
record's MBR is the degenerate point rectangle; an RNN-tree entry's MBR
is the square around its NFC).  This mirrors real systems — and keeps
every full node within one 4 KiB page, since the in-memory capacities
are derived from 36/44-byte entry layouts while a self-contained
"MBR + record" encoding would be wider.

Two leaf encodings share the node-page header (``level: u16`` +
``count: u16``):

* **rows** (format version 1) — ``count`` packed records, codec layout;
* **columns** (format version 2) — the records transposed into the
  structure-of-arrays blocks of :mod:`repro.storage.soa`.  A v2 leaf
  decodes as zero-copy numpy views (no per-record work at all), and the
  returned node materialises its entry objects lazily — the join and
  window hot paths only ever touch the columns and the node MBR, so a
  v2 leaf read does *no* decode work.

Branch pages keep the packed v1 entry layout in both versions (they are
small, and traversal needs their entry objects anyway).
``convert_page_file`` rewrites a file between the two leaf encodings,
byte-exactly in both directions.

File layout per node page::

    level:  u16     (0 = leaf)
    count:  u16
    then the leaf payload block (rows or columns), or `count` branch
    entries: mbr (4 doubles) + child page (u32) [+ mnd (double)]
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from repro import kernels
from repro.geometry.maxmindist import max_min_dist_region_rect
from repro.geometry.rect import Rect
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.mnd_tree import MNDTree
from repro.obs.registry import REGISTRY
from repro.rtree.node import Node
from repro.rtree.rtree import RTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.codecs import PayloadCodec, encode_branch
from repro.storage.diskfile import (
    COLUMNAR_VERSION,
    FORMAT_VERSION,
    DiskPager,
    PageFile,
    PageFileError,
    open_page_file,
)
from repro.storage.stats import IOStats

_NODE_HEADER = struct.Struct("<HH")

#: Leaf encodings, keyed by the page-file format version they imply.
LEAF_FORMATS = ("rows", "columns")
_FORMAT_VERSION_OF = {"rows": FORMAT_VERSION, "columns": COLUMNAR_VERSION}


def _point_mbr(payload: Any) -> Rect:
    """Default leaf MBR: the payload is a point record."""
    try:
        x, y = payload.x, payload.y
    except AttributeError:
        x, y = payload[0], payload[1]
    return Rect(x, y, x, y)

_META = struct.Struct("<IIB")  # num_entries, height, flags
_FLAG_MND = 1


class ReadOnlyTreeError(RuntimeError):
    """Raised when mutating a disk-backed tree."""


def _check_leaf_format(leaf_format: str) -> None:
    if leaf_format not in LEAF_FORMATS:
        raise ValueError(
            f"unknown leaf format {leaf_format!r}; expected one of {LEAF_FORMATS}"
        )


def _encode_leaf_payloads(
    codec: PayloadCodec, payloads: list, leaf_format: str
) -> bytes:
    """The payload block of one leaf page in the chosen encoding."""
    if leaf_format == "rows":
        return b"".join(codec.encode(payload) for payload in payloads)
    if not hasattr(codec, "encode_soa"):
        raise ValueError(
            f"codec {type(codec).__name__} has no columnar encoding; "
            "use leaf_format='rows'"
        )
    # columns: transpose through the codec's column constructors; the
    # float values are the identical IEEE-754 doubles either way.
    n = len(payloads)
    rows = b"".join(codec.encode(payload) for payload in payloads)
    return codec.encode_soa(codec.decode_columns(rows, n))


def save_rtree(
    tree: RTree,
    path: str | Path,
    codec: PayloadCodec,
    leaf_format: str = "rows",
) -> int:
    """Serialise ``tree`` to ``path``; returns the number of pages written
    (including the metadata page).

    ``leaf_format="columns"`` writes the v2 structure-of-arrays leaf
    encoding (same bytes per record, transposed)."""
    _check_leaf_format(leaf_format)
    has_mnd = isinstance(tree, MNDTree)
    # Assign page ids in DFS order; page 0 is metadata, root gets page 1.
    order: list[Node] = list(tree.iter_nodes())
    page_of: dict[int, int] = {node.node_id: i + 1 for i, node in enumerate(order)}

    page_file = PageFile(path, page_size=tree._pager.page_size)
    pages = [_META.pack(tree.num_entries, tree.height, _FLAG_MND if has_mnd else 0)]
    for node in order:
        parts = [_NODE_HEADER.pack(node.level, len(node.entries))]
        if node.is_leaf:
            parts.append(
                _encode_leaf_payloads(
                    codec, [entry.payload for entry in node.entries], leaf_format
                )
            )
        else:
            for entry in node.entries:
                parts.append(
                    encode_branch(
                        entry.mbr,
                        page_of[entry.child_id],
                        entry.mnd if has_mnd else None,
                    )
                )
        image = b"".join(parts)
        if len(image) > page_file.page_size:
            raise PageFileError(
                f"node {node.node_id} serialises to {len(image)} bytes "
                f"> page size {page_file.page_size}"
            )
        pages.append(image)

    root_page = page_of[tree.root_id] if order else 0
    page_file.create(pages, root_page, _FORMAT_VERSION_OF[leaf_format])
    return len(pages)


def convert_page_file(
    src: str | Path,
    dst: str | Path,
    codec: PayloadCodec,
    leaf_format: str,
) -> int:
    """Rewrite an R-tree page file between the two leaf encodings.

    Branch pages and the metadata page copy through unchanged; leaf
    pages transpose between packed rows and column blocks.  Converting
    v1 -> v2 -> v1 reproduces the original file byte for byte (the
    record values are the same doubles either way).  Returns the number
    of pages written."""
    _check_leaf_format(leaf_format)
    with PageFile(src).open() as source:
        pages = [bytes(source.read_page(0)).rstrip(b"\x00")]
        src_columns = source.format_version == COLUMNAR_VERSION
        for page_id in range(1, source.num_pages):
            data = source.read_page(page_id)
            level, count = _NODE_HEADER.unpack_from(data)
            if level != 0:
                # Branch pages are format-independent; copy the image.
                # rstrip may eat real zero tail bytes of the last entry,
                # but create() re-pads every page with zeros to page_size,
                # so the written bytes come out identical either way.
                pages.append(bytes(data).rstrip(b"\x00"))
                continue
            offset = _NODE_HEADER.size
            if src_columns:
                cols = codec.decode_soa(data, count, offset=offset)
            else:
                cols = codec.decode_columns(data, count, offset=offset)
            if leaf_format == "columns":
                payload = codec.encode_soa(cols)
            else:
                payload = cols.to_bytes()
            pages.append(_NODE_HEADER.pack(level, count) + payload)
        out = PageFile(dst, page_size=source.page_size)
        out.create(pages, source.root_page, _FORMAT_VERSION_OF[leaf_format])
    return len(pages)


class _LazyEntries:
    """A leaf entry list materialised on first element access.

    ``len()`` (the hot-path counters) and truthiness never materialise;
    iterating or indexing builds the entry objects once per node object.
    """

    __slots__ = ("_count", "_load", "_items")

    def __init__(self, count: int, load: Callable[[], list]):
        self._count = count
        self._load = load
        self._items: Optional[list] = None

    def _force(self) -> list:
        if self._items is None:
            self._items = self._load()
        return self._items

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __getitem__(self, index):
        return self._force()[index]

    def __iter__(self):
        return iter(self._force())

    def __repr__(self) -> str:
        state = "materialised" if self._items is not None else "lazy"
        return f"_LazyEntries(n={self._count}, {state})"


class ColumnLeafNode(Node):
    """A leaf served from column views; entries materialise lazily.

    The join/window hot paths consume leaves through
    :mod:`repro.rtree.columns`, ``len(node.entries)`` and ``node.mbr()``
    — none of which need per-entry Python objects.  The MBR comes
    vectorised from the columns (running ``min``/``max`` over floats is
    exact, so it is bit-identical to the entry-by-entry union).

    ``columns`` carries the decoded payload column views so consumers
    that already hold the node never re-peek and re-slice the page."""

    __slots__ = ("_mbr_fn", "columns")

    def __init__(self, node_id: int, entries: _LazyEntries, mbr_fn, columns=None):
        super().__init__(node_id, 0, entries)
        self._mbr_fn = mbr_fn
        self.columns = columns

    def mbr(self) -> Rect:
        if not self.entries:
            raise ValueError(f"node {self.node_id} has no entries")
        return self._mbr_fn()


class DiskRTree:
    """A read-only R-tree served from a page file.

    Duck-type compatible with :class:`~repro.rtree.rtree.RTree` for all
    query paths (``read_node`` / ``node`` / ``root_id`` /
    ``num_entries``), so :func:`~repro.rtree.window.window_query`,
    :func:`~repro.rtree.nn.nearest_neighbor`,
    :func:`~repro.rtree.join.intersection_join` and the method joins of
    :mod:`repro.core` all work unchanged on disk-backed indexes.
    """

    def __init__(
        self,
        name: str,
        path: str | Path,
        codec: PayloadCodec,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
        radius_of: Optional[Callable[[Any], float]] = None,
        leaf_mbr: Optional[Callable[[Any], Rect]] = None,
        mapped: bool = False,
        leaf_shape: str = "point",
    ):
        """``leaf_mbr`` reconstructs a data entry's MBR from its decoded
        payload; by default the payload is treated as a point record
        with ``x``/``y`` attributes (or a bare ``(x, y)`` tuple).  Pass
        an explicit function for non-point entries, e.g.
        ``lambda c: Circle(Point(c.x, c.y), c.dnn).mbr()`` to reopen an
        RNN-tree.

        ``mapped`` serves pages as zero-copy views from one ``mmap``
        (:class:`~repro.storage.diskfile.MappedPageFile`) instead of
        per-read file I/O; accounting is identical either way.

        ``leaf_shape`` is the columnar twin of ``leaf_mbr`` — how a v2
        leaf derives entry MBRs straight from its columns: ``"point"``
        (degenerate point rectangles) or ``"circle"`` (the square of
        radius ``dnn`` around each point, i.e. an RNN-tree)."""
        if leaf_shape not in ("point", "circle"):
            raise ValueError(f"unknown leaf shape {leaf_shape!r}")
        self._file = open_page_file(path, mapped=mapped)
        self._pager = DiskPager(name, self._file, stats, buffer_pool)
        self.name = name
        self.mapped = mapped
        self.leaf_format = (
            "columns" if self._file.format_version == COLUMNAR_VERSION else "rows"
        )
        self._reg_node_reads = REGISTRY.counter("rtree.node_reads")
        self._leaf_read_key = f"reads.{name}.leaf"
        self._branch_read_key = f"reads.{name}.branch"
        self._codec = codec
        self._radius_of = radius_of
        self._leaf_shape = leaf_shape
        self._leaf_mbr = leaf_mbr if leaf_mbr is not None else _point_mbr
        meta = self._file.read_page(0)[: _META.size]
        self.num_entries, self.height, flags = _META.unpack(bytes(meta))
        self.has_mnd = bool(flags & _FLAG_MND)
        self.root_id = self._file.root_page
        # Read-only trees never mutate, so decoded-leaf caches keyed on
        # (name, version) stay valid for the file's lifetime.
        self.version = 0

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, page_id: int, data) -> Node:
        level, count = _NODE_HEADER.unpack_from(data)
        offset = _NODE_HEADER.size
        entries: list = []
        if level == 0:
            if self.leaf_format == "columns":
                return self._column_leaf(page_id, count, data, offset)
            decode_columns = getattr(self._codec, "decode_columns", None)
            if decode_columns is not None:
                cols = decode_columns(data, count, offset=offset)
                leaf_mbr = self._leaf_mbr
                entries = [
                    LeafEntry(leaf_mbr(payload), payload)
                    for payload in self._codec.objects_from_columns(cols)
                ]
            else:
                step = self._codec.size
                for __ in range(count):
                    payload = self._codec.decode(data[offset : offset + step])
                    entries.append(LeafEntry(self._leaf_mbr(payload), payload))
                    offset += step
        else:
            cols = kernels.decode_branch_columns(
                data, count, with_mnd=self.has_mnd, offset=offset
            )
            rects = cols.rects
            mnds = cols.mnd.tolist() if cols.mnd is not None else [None] * count
            entries = [
                BranchEntry(Rect(x1, y1, x2, y2), child, mnd)
                for x1, y1, x2, y2, child, mnd in zip(
                    rects.xmin.tolist(),
                    rects.ymin.tolist(),
                    rects.xmax.tolist(),
                    rects.ymax.tolist(),
                    cols.children.tolist(),
                    mnds,
                )
            ]
        return Node(page_id, level, entries)

    def _column_leaf(self, page_id: int, count: int, data, offset: int) -> Node:
        """A v2 leaf: zero decode now, lazy entry objects if ever needed."""
        cols = self._codec.decode_soa(data, count, offset=offset)

        def load_entries() -> list:
            leaf_mbr = self._leaf_mbr
            return [
                LeafEntry(leaf_mbr(payload), payload)
                for payload in self._codec.objects_from_columns(cols)
            ]

        def column_mbr() -> Rect:
            if self._leaf_shape == "circle":
                xmin, xmax = cols.xs - cols.dnn, cols.xs + cols.dnn
                ymin, ymax = cols.ys - cols.dnn, cols.ys + cols.dnn
            else:
                xmin = xmax = cols.xs
                ymin = ymax = cols.ys
            return Rect(
                float(np.min(xmin)),
                float(np.min(ymin)),
                float(np.max(xmax)),
                float(np.max(ymax)),
            )

        return ColumnLeafNode(
            page_id, _LazyEntries(count, load_entries), column_mbr, cols
        )

    def leaf_columns(self, node_id: int):
        """Zero-copy payload columns of one v2 leaf, or None for v1 files.

        Uncounted, like :meth:`node_page_bytes`: callers have already
        paid for the page through ``read_node``.  This is the fast path
        :mod:`repro.rtree.columns` takes for column-encoded trees."""
        if self.leaf_format != "columns":
            return None
        data = self._pager.peek(node_id)
        level, count = _NODE_HEADER.unpack_from(data)
        if level != 0:
            raise PageFileError(f"node {node_id} is not a leaf (level {level})")
        return self._codec.decode_soa(data, count, offset=_NODE_HEADER.size)

    def node_page_bytes(self, node_id: int) -> tuple[int, int, int, bytes]:
        """Raw page bytes of one node, **without** charging a read.

        Returns ``(level, count, entries_offset, data)`` so columnar
        consumers (:mod:`repro.rtree.columns`) can bulk-decode a page
        that the caller has already paid for through ``read_node``.
        For v1 files ``data`` holds packed rows; v2 leaves should be
        read through :meth:`leaf_columns` instead (branch pages are
        packed rows in both formats).
        """
        data = self._pager.peek(node_id)
        level, count = _NODE_HEADER.unpack_from(data)
        return level, count, _NODE_HEADER.size, data

    # ------------------------------------------------------------------
    # RTree-compatible query interface
    # ------------------------------------------------------------------
    def read_node(self, node_id: int, stats: Optional[IOStats] = None) -> Node:
        node = self._decode(node_id, self._pager.read(node_id, stats=stats))
        self._reg_node_reads.inc()
        tracer = (stats if stats is not None else self._pager.stats)._tracer
        if tracer is not None:
            tracer.count(self._leaf_read_key if node.is_leaf else self._branch_read_key)
        return node

    def node(self, node_id: int) -> Node:
        return self._decode(node_id, self._pager.peek(node_id))

    @property
    def root(self) -> Node:
        return self.node(self.root_id)

    @property
    def num_nodes(self) -> int:
        return self._file.num_pages - 1  # minus the metadata page

    @property
    def size_pages(self) -> int:
        return self.num_nodes

    @property
    def stats(self) -> IOStats:
        return self._pager.stats

    def __len__(self) -> int:
        return self.num_entries

    def iter_leaf_entries(self):
        stack = [self.root_id]
        while stack:
            node = self.node(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child_id for e in node.entries)

    # ------------------------------------------------------------------
    # MND support (for running the MND join on a disk-backed R_C^m)
    # ------------------------------------------------------------------
    def compute_mnd(self, node: Node) -> float:
        if not self.has_mnd:
            raise ReadOnlyTreeError(f"{self.name} carries no MND augmentation")
        mbr = node.mbr()
        best = 0.0
        if node.is_leaf:
            if self._radius_of is None:
                raise ReadOnlyTreeError(
                    "leaf-level MND needs radius_of at DiskRTree construction"
                )
            for entry in node.entries:
                value = max_min_dist_region_rect(
                    entry.mbr, self._radius_of(entry.payload), mbr
                )
                best = max(best, value)
        else:
            for entry in node.entries:
                value = max_min_dist_region_rect(entry.mbr, entry.mnd, mbr)
                best = max(best, value)
        return best

    def root_mnd(self) -> float:
        root = self.root
        if not root.entries:
            return 0.0
        return self.compute_mnd(root)

    # ------------------------------------------------------------------
    # Mutations are rejected
    # ------------------------------------------------------------------
    def insert(self, mbr: Rect, payload: Any) -> None:
        raise ReadOnlyTreeError(f"{self.name} is a read-only disk tree")

    def delete(self, mbr: Rect, payload: Any) -> bool:
        raise ReadOnlyTreeError(f"{self.name} is a read-only disk tree")

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "DiskRTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
