"""R-tree persistence: byte-accurate page files on real disk.

``save_rtree`` serialises any tree built by this package (plain,
RNN-tree or MND-augmented) into a :class:`~repro.storage.diskfile.PageFile`
whose pages hold exactly the entry layouts of
:mod:`repro.storage.records`; ``DiskRTree`` reopens such a file as a
*read-only* index that answers the same window / NN / join queries with
identical results and I/O accounting — node pages are decoded on every
counted read, exactly like a database reading from disk.

Page 0 is a metadata page; tree nodes occupy pages 1..n.

Leaf entries store *only* the payload record; the entry MBR is derived
from it at decode time via the tree's ``leaf_mbr`` function (a point
record's MBR is the degenerate point rectangle; an RNN-tree entry's MBR
is the square around its NFC).  This mirrors real systems — and keeps
every full node within one 4 KiB page, since the in-memory capacities
are derived from 36/44-byte entry layouts while a self-contained
"MBR + record" encoding would be wider.

File layout per node page::

    level:  u16     (0 = leaf)
    count:  u16
    then `count` entries:
      leaf entry:    payload (codec-specific; MBR derived on decode)
      branch entry:  mbr (4 doubles) + child page (u32) [+ mnd (double)]
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Any, Callable, Optional

from repro import kernels
from repro.geometry.maxmindist import max_min_dist_region_rect
from repro.geometry.rect import Rect
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.mnd_tree import MNDTree
from repro.obs.registry import REGISTRY
from repro.rtree.node import Node
from repro.rtree.rtree import RTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.codecs import PayloadCodec, encode_branch
from repro.storage.diskfile import DiskPager, PageFile, PageFileError
from repro.storage.stats import IOStats

_NODE_HEADER = struct.Struct("<HH")


def _point_mbr(payload: Any) -> Rect:
    """Default leaf MBR: the payload is a point record."""
    try:
        x, y = payload.x, payload.y
    except AttributeError:
        x, y = payload[0], payload[1]
    return Rect(x, y, x, y)

_META = struct.Struct("<IIB")  # num_entries, height, flags
_FLAG_MND = 1


class ReadOnlyTreeError(RuntimeError):
    """Raised when mutating a disk-backed tree."""


def save_rtree(tree: RTree, path: str | Path, codec: PayloadCodec) -> int:
    """Serialise ``tree`` to ``path``; returns the number of pages written
    (including the metadata page)."""
    has_mnd = isinstance(tree, MNDTree)
    # Assign page ids in DFS order; page 0 is metadata, root gets page 1.
    order: list[Node] = list(tree.iter_nodes())
    page_of: dict[int, int] = {node.node_id: i + 1 for i, node in enumerate(order)}

    page_file = PageFile(path, page_size=tree._pager.page_size)
    pages = [_META.pack(tree.num_entries, tree.height, _FLAG_MND if has_mnd else 0)]
    for node in order:
        parts = [_NODE_HEADER.pack(node.level, len(node.entries))]
        for entry in node.entries:
            if node.is_leaf:
                parts.append(codec.encode(entry.payload))
            else:
                parts.append(
                    encode_branch(
                        entry.mbr,
                        page_of[entry.child_id],
                        entry.mnd if has_mnd else None,
                    )
                )
        image = b"".join(parts)
        if len(image) > page_file.page_size:
            raise PageFileError(
                f"node {node.node_id} serialises to {len(image)} bytes "
                f"> page size {page_file.page_size}"
            )
        pages.append(image)

    root_page = page_of[tree.root_id] if order else 0
    page_file.create(pages, root_page)
    return len(pages)


class DiskRTree:
    """A read-only R-tree served from a page file.

    Duck-type compatible with :class:`~repro.rtree.rtree.RTree` for all
    query paths (``read_node`` / ``node`` / ``root_id`` /
    ``num_entries``), so :func:`~repro.rtree.window.window_query`,
    :func:`~repro.rtree.nn.nearest_neighbor`,
    :func:`~repro.rtree.join.intersection_join` and the method joins of
    :mod:`repro.core` all work unchanged on disk-backed indexes.
    """

    def __init__(
        self,
        name: str,
        path: str | Path,
        codec: PayloadCodec,
        stats: IOStats,
        buffer_pool: Optional[LRUBufferPool] = None,
        radius_of: Optional[Callable[[Any], float]] = None,
        leaf_mbr: Optional[Callable[[Any], Rect]] = None,
    ):
        """``leaf_mbr`` reconstructs a data entry's MBR from its decoded
        payload; by default the payload is treated as a point record
        with ``x``/``y`` attributes (or a bare ``(x, y)`` tuple).  Pass
        an explicit function for non-point entries, e.g.
        ``lambda c: Circle(Point(c.x, c.y), c.dnn).mbr()`` to reopen an
        RNN-tree."""
        self._file = PageFile(path).open()
        self._pager = DiskPager(name, self._file, stats, buffer_pool)
        self.name = name
        self._reg_node_reads = REGISTRY.counter("rtree.node_reads")
        self._leaf_read_key = f"reads.{name}.leaf"
        self._branch_read_key = f"reads.{name}.branch"
        self._codec = codec
        self._radius_of = radius_of
        self._leaf_mbr = leaf_mbr if leaf_mbr is not None else _point_mbr
        meta = self._file.read_page(0)[: _META.size]
        self.num_entries, self.height, flags = _META.unpack(meta)
        self.has_mnd = bool(flags & _FLAG_MND)
        self.root_id = self._file.root_page
        # Read-only trees never mutate, so decoded-leaf caches keyed on
        # (name, version) stay valid for the file's lifetime.
        self.version = 0

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, page_id: int, data: bytes) -> Node:
        level, count = _NODE_HEADER.unpack_from(data)
        offset = _NODE_HEADER.size
        entries: list = []
        if level == 0:
            decode_columns = getattr(self._codec, "decode_columns", None)
            if decode_columns is not None:
                cols = decode_columns(data, count, offset=offset)
                leaf_mbr = self._leaf_mbr
                entries = [
                    LeafEntry(leaf_mbr(payload), payload)
                    for payload in self._codec.objects_from_columns(cols)
                ]
            else:
                step = self._codec.size
                for __ in range(count):
                    payload = self._codec.decode(data[offset : offset + step])
                    entries.append(LeafEntry(self._leaf_mbr(payload), payload))
                    offset += step
        else:
            cols = kernels.decode_branch_columns(
                data, count, with_mnd=self.has_mnd, offset=offset
            )
            rects = cols.rects
            mnds = cols.mnd.tolist() if cols.mnd is not None else [None] * count
            entries = [
                BranchEntry(Rect(x1, y1, x2, y2), child, mnd)
                for x1, y1, x2, y2, child, mnd in zip(
                    rects.xmin.tolist(),
                    rects.ymin.tolist(),
                    rects.xmax.tolist(),
                    rects.ymax.tolist(),
                    cols.children.tolist(),
                    mnds,
                )
            ]
        return Node(page_id, level, entries)

    def node_page_bytes(self, node_id: int) -> tuple[int, int, int, bytes]:
        """Raw page bytes of one node, **without** charging a read.

        Returns ``(level, count, entries_offset, data)`` so columnar
        consumers (:mod:`repro.rtree.columns`) can bulk-decode a page
        that the caller has already paid for through ``read_node``.
        """
        data = self._pager.peek(node_id)
        level, count = _NODE_HEADER.unpack_from(data)
        return level, count, _NODE_HEADER.size, data

    # ------------------------------------------------------------------
    # RTree-compatible query interface
    # ------------------------------------------------------------------
    def read_node(self, node_id: int, stats: Optional[IOStats] = None) -> Node:
        node = self._decode(node_id, self._pager.read(node_id, stats=stats))
        self._reg_node_reads.inc()
        tracer = (stats if stats is not None else self._pager.stats)._tracer
        if tracer is not None:
            tracer.count(self._leaf_read_key if node.is_leaf else self._branch_read_key)
        return node

    def node(self, node_id: int) -> Node:
        return self._decode(node_id, self._pager.peek(node_id))

    @property
    def root(self) -> Node:
        return self.node(self.root_id)

    @property
    def num_nodes(self) -> int:
        return self._file.num_pages - 1  # minus the metadata page

    @property
    def size_pages(self) -> int:
        return self.num_nodes

    @property
    def stats(self) -> IOStats:
        return self._pager.stats

    def __len__(self) -> int:
        return self.num_entries

    def iter_leaf_entries(self):
        stack = [self.root_id]
        while stack:
            node = self.node(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child_id for e in node.entries)

    # ------------------------------------------------------------------
    # MND support (for running the MND join on a disk-backed R_C^m)
    # ------------------------------------------------------------------
    def compute_mnd(self, node: Node) -> float:
        if not self.has_mnd:
            raise ReadOnlyTreeError(f"{self.name} carries no MND augmentation")
        mbr = node.mbr()
        best = 0.0
        if node.is_leaf:
            if self._radius_of is None:
                raise ReadOnlyTreeError(
                    "leaf-level MND needs radius_of at DiskRTree construction"
                )
            for entry in node.entries:
                value = max_min_dist_region_rect(
                    entry.mbr, self._radius_of(entry.payload), mbr
                )
                best = max(best, value)
        else:
            for entry in node.entries:
                value = max_min_dist_region_rect(entry.mbr, entry.mnd, mbr)
                best = max(best, value)
        return best

    def root_mnd(self) -> float:
        root = self.root
        if not root.entries:
            return 0.0
        return self.compute_mnd(root)

    # ------------------------------------------------------------------
    # Mutations are rejected
    # ------------------------------------------------------------------
    def insert(self, mbr: Rect, payload: Any) -> None:
        raise ReadOnlyTreeError(f"{self.name} is a read-only disk tree")

    def delete(self, mbr: Rect, payload: Any) -> bool:
        raise ReadOnlyTreeError(f"{self.name} is a read-only disk tree")

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "DiskRTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
