"""Best-first nearest-neighbour search (Hjaltason & Samet, SSD 1995).

The QVC method needs the NN facility in *each quadrant* around a
potential location (Section IV); ``nearest_in_quadrant`` runs the same
best-first search restricted to one quadrant's quarter-plane.  Results
are retrieved incrementally, so callers stop as soon as every quadrant
is served.

All node fetches go through ``tree.read_node`` and are therefore counted
as I/Os.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.rtree import RTree
from repro.storage.stats import IOStats


def incremental_nearest(
    tree: RTree,
    query: Point,
    mbr_filter: Optional[Callable[[Rect], bool]] = None,
    payload_filter: Optional[Callable[[Any], bool]] = None,
    stats: Optional[IOStats] = None,
) -> Iterator[tuple[float, Any]]:
    """Yield ``(distance, payload)`` pairs in increasing distance order.

    ``mbr_filter`` prunes subtrees (it must be *conservative*: return
    True whenever the subtree could hold a qualifying object), while
    ``payload_filter`` is the exact final test on data entries.
    ``stats`` redirects the I/O charges (and span counters) to a
    caller-private accounting, as required by parallel tasks.
    """
    if tree.num_entries == 0:
        return
    tracer = (stats if stats is not None else tree.stats).tracer
    counter = itertools.count()  # tie-breaker: heap items are never compared
    # Heap items: (min possible distance, seq, is_data, object)
    heap: list[tuple[float, int, bool, Any]] = [(0.0, next(counter), False, None)]
    while heap:
        dist, _, is_data, obj = heapq.heappop(heap)
        if is_data:
            tracer.count("nn.results")
            yield dist, obj
            continue
        tracer.count("nn.nodes")
        node = tree.read_node(tree.root_id if obj is None else obj, stats=stats)
        if node.is_leaf:
            for entry in node.entries:
                if mbr_filter is not None and not mbr_filter(entry.mbr):
                    continue
                if payload_filter is not None and not payload_filter(entry.payload):
                    continue
                d = entry.mbr.min_dist_point(query)
                heapq.heappush(heap, (d, next(counter), True, entry.payload))
        else:
            for entry in node.entries:
                if mbr_filter is not None and not mbr_filter(entry.mbr):
                    continue
                d = entry.mbr.min_dist_point(query)
                heapq.heappush(heap, (d, next(counter), False, entry.child_id))


def nearest_neighbor(tree: RTree, query: Point) -> Optional[tuple[float, Any]]:
    """The single nearest data entry to ``query`` (or None if empty)."""
    for result in incremental_nearest(tree, query):
        return result
    return None


def _quadrant_mbr_filter(origin: Point, quadrant: int) -> Callable[[Rect], bool]:
    """A conservative test for 'this MBR touches quadrant ``quadrant``'.

    Uses closed quarter-planes so boundary MBRs are never pruned; exact
    membership of points is re-checked by the payload filter.
    """
    ox, oy = origin
    if quadrant == 0:
        return lambda r: r.xmax >= ox and r.ymax >= oy
    if quadrant == 1:
        return lambda r: r.xmin <= ox and r.ymax >= oy
    if quadrant == 2:
        return lambda r: r.xmin <= ox and r.ymin <= oy
    if quadrant == 3:
        return lambda r: r.xmax >= ox and r.ymin <= oy
    raise ValueError(f"quadrant must be 0..3, got {quadrant}")


def nearest_in_quadrant(
    tree: RTree,
    origin: Point,
    quadrant: int,
    point_of: Callable[[Any], Point] = lambda payload: payload,
) -> Optional[tuple[float, Any]]:
    """The nearest data point lying in ``quadrant`` relative to ``origin``.

    Quadrants follow :meth:`repro.geometry.point.Point.quadrant_relative_to`.
    ``point_of`` extracts the coordinates from a payload (identity for
    trees storing bare points).  Returns None when the quadrant is empty.
    """
    results = incremental_nearest(
        tree,
        origin,
        mbr_filter=_quadrant_mbr_filter(origin, quadrant),
        payload_filter=lambda payload: Point(*point_of(payload)).quadrant_relative_to(
            origin
        )
        == quadrant,
    )
    for result in results:
        return result
    return None


def k_nearest(tree: RTree, query: Point, k: int) -> list[tuple[float, Any]]:
    """The ``k`` nearest data entries to ``query`` in distance order.

    Fewer than ``k`` results are returned when the tree is smaller.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    out: list[tuple[float, Any]] = []
    for result in incremental_nearest(tree, query):
        out.append(result)
        if len(out) == k:
            break
    return out
