"""The R-tree proper (Guttman, SIGMOD 1984).

One node == one simulated disk page, so the page-read counter of the
underlying :class:`~repro.storage.pager.Pager` measures exactly the
"number of I/Os" the paper reports.  Query code must access nodes through
:meth:`RTree.read_node` (counted); construction and maintenance use the
uncounted :meth:`RTree.node` accessor, because the paper excludes index
building from query costs.

Subclasses customise the directory entries through two hooks —
:meth:`RTree._entry_for_child` and :meth:`RTree._refresh_entry` — which is
all the MND variant needs to keep its augmentation consistent during
inserts, deletes and bulk loading.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.geometry.rect import Rect
from repro.obs.registry import REGISTRY
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.split import quadratic_split
from repro.storage.buffer import LRUBufferPool
from repro.storage.pager import Pager
from repro.storage.records import PAGE_SIZE, RTREE_ENTRY, RecordLayout
from repro.storage.stats import IOStats


class RTree:
    """A disk-based R-tree over ``(Rect, payload)`` data entries."""

    def __init__(
        self,
        name: str,
        stats: IOStats,
        leaf_layout: RecordLayout = RTREE_ENTRY,
        branch_layout: RecordLayout = RTREE_ENTRY,
        buffer_pool: Optional[LRUBufferPool] = None,
        page_size: int = PAGE_SIZE,
        max_leaf_entries: Optional[int] = None,
        max_branch_entries: Optional[int] = None,
        min_fill: float = 0.4,
    ):
        self.name = name
        self._pager = Pager(name, branch_layout, stats, buffer_pool, page_size)
        self._reg_node_reads = REGISTRY.counter("rtree.node_reads")
        self._leaf_read_key = f"reads.{name}.leaf"
        self._branch_read_key = f"reads.{name}.branch"
        self.max_leaf = max_leaf_entries or leaf_layout.capacity(page_size)
        self.max_branch = max_branch_entries or branch_layout.capacity(page_size)
        if self.max_leaf < 2 or self.max_branch < 2:
            raise ValueError("R-tree nodes must hold at least two entries")
        # Guttman's m <= M/2 bound; rounding (not truncating) keeps small
        # test trees honest (max=4 -> min=2), which matters for condense.
        self.min_leaf = min(max(1, round(self.max_leaf * min_fill)), self.max_leaf // 2)
        self.min_branch = min(
            max(1, round(self.max_branch * min_fill)), self.max_branch // 2
        )
        self.min_leaf = max(1, self.min_leaf)
        self.min_branch = max(1, self.min_branch)
        self._free_pages: list[int] = []
        root = Node(0, 0)
        self.root_id = self._pager.allocate(root)
        root.node_id = self.root_id
        self.height = 1
        self.num_entries = 0
        # Mutation counter: bumped by insert/delete so version-keyed
        # caches of decoded node contents (DecodedLeafCache) can detect
        # staleness without the tree knowing who caches what.
        self.version = 0
        # Scoped invalidation: a bound DecodedLeafCache receives the
        # exact node ids each mutation dirties (and immediate drops for
        # freed pages), so its other decodes survive the version bump.
        self._leaf_cache = None
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    # Page plumbing
    # ------------------------------------------------------------------
    def read_node(self, node_id: int, stats: Optional[IOStats] = None) -> Node:
        """Fetch a node with I/O accounting — the query-time accessor.

        Besides the per-query :class:`IOStats` charge (made by the
        pager), the fetch bumps the process-wide ``rtree.node_reads``
        metric and — when a tracer is bound — a per-span leaf/branch
        counter, so profiles separate directory descent from leaf scans.

        ``stats`` redirects the charge (and the leaf/branch span
        counter) to a caller-private accounting; parallel tasks use this
        so the engine can merge per-task partials determinately.
        """
        node = self._pager.read(node_id, stats=stats)
        self._reg_node_reads.inc()
        tracer = (stats if stats is not None else self._pager.stats)._tracer
        if tracer is not None:
            tracer.count(self._leaf_read_key if node.is_leaf else self._branch_read_key)
        return node

    def node(self, node_id: int) -> Node:
        """Fetch a node without accounting (construction/maintenance)."""
        return self._pager.peek(node_id)

    @property
    def root(self) -> Node:
        return self._pager.peek(self.root_id)

    def _alloc_node(self, level: int) -> Node:
        if self._free_pages:
            node_id = self._free_pages.pop()
            node = Node(node_id, level, [])
            self._pager._pages[node_id] = node
        else:
            node = Node(-1, level, [])
            node.node_id = self._pager.allocate(node)
        self._mark_dirty(node.node_id)
        return node

    def _free_node(self, node_id: int) -> None:
        self._pager._pages[node_id] = None
        self._free_pages.append(node_id)
        # Drop the decode *now*: the page id recycles, and a later
        # occupant must never inherit a stale cached decode.
        if self._leaf_cache is not None:
            self._leaf_cache.drop_node(self.name, node_id)
            self._dirty.discard(node_id)

    # ------------------------------------------------------------------
    # Scoped leaf-cache invalidation
    # ------------------------------------------------------------------
    def bind_leaf_cache(self, cache) -> None:
        """Report mutation-dirtied node ids to ``cache`` from now on.

        Binding opts the tree into the cache's *tracked* mode: version
        bumps stop clearing the tree's decodes wholesale, because every
        insert/delete flushes the precise set of nodes whose entry lists
        (or parent entries) changed, and freed pages drop immediately.
        """
        self._leaf_cache = cache
        cache.track(self.name)

    def _mark_dirty(self, node_id: int) -> None:
        if self._leaf_cache is not None:
            self._dirty.add(node_id)

    def _flush_dirty(self) -> None:
        if self._leaf_cache is not None and self._dirty:
            self._leaf_cache.note_dirty(self.name, self._dirty)
            self._dirty.clear()

    def touch_data_entries(self, items) -> None:
        """Invalidate the decodes of the leaves holding the given
        ``(mbr, payload)`` data entries.

        For payloads mutated *in place* (a client's ``dnn`` column moves
        without its point moving): no insert/delete runs, so no version
        bump or dirty mark would happen on its own.  One version bump
        covers the batch.
        """
        for mbr, payload in items:
            leaf_id = self._find_leaf(self.root_id, mbr, payload)
            if leaf_id is not None:
                self._mark_dirty(leaf_id)
        self.version += 1
        self._flush_dirty()

    def _find_leaf(self, node_id: int, mbr: Rect, payload: Any) -> Optional[int]:
        node = self.node(node_id)
        if node.is_leaf:
            for entry in node.entries:
                if entry.mbr == mbr and entry.payload == payload:
                    return node.node_id
            return None
        for entry in node.entries:
            if entry.mbr.contains_rect(mbr):
                found = self._find_leaf(entry.child_id, mbr, payload)
                if found is not None:
                    return found
        return None

    @property
    def num_nodes(self) -> int:
        return self._pager.num_pages - len(self._free_pages)

    @property
    def size_pages(self) -> int:
        """Index size in pages — the paper's index-size metric."""
        return self.num_nodes

    @property
    def size_bytes(self) -> int:
        return self.num_nodes * self._pager.page_size

    @property
    def stats(self) -> IOStats:
        return self._pager.stats

    def __len__(self) -> int:
        return self.num_entries

    # ------------------------------------------------------------------
    # Augmentation hooks (overridden by MNDTree)
    # ------------------------------------------------------------------
    def _entry_for_child(self, child: Node) -> BranchEntry:
        """A parent entry describing ``child`` (MBR only by default)."""
        return BranchEntry(child.mbr(), child.node_id)

    def _refresh_entry(self, entry: BranchEntry, child: Node) -> None:
        """Recompute a parent entry after ``child`` changed."""
        entry.mbr = child.mbr()

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, mbr: Rect, payload: Any) -> None:
        """Insert one data entry (Guttman insert with quadratic splits)."""
        self._insert_at_level(LeafEntry(mbr, payload), 0)
        self.num_entries += 1
        self.version += 1
        self._flush_dirty()

    def _insert_at_level(self, entry: LeafEntry | BranchEntry, level: int) -> None:
        split = self._insert_rec(self.root_id, entry, level)
        if split is not None:
            self._grow_root(split)

    def _insert_rec(
        self, node_id: int, entry: LeafEntry | BranchEntry, target_level: int
    ) -> Optional[BranchEntry]:
        node = self.node(node_id)
        # Every node on the descent path changes: either its entry list
        # (append/split) or a child entry's MBR/augmentation (refresh).
        self._mark_dirty(node_id)
        if node.level == target_level:
            node.entries.append(entry)
        else:
            choice = self._choose_subtree(node, entry.mbr)
            split = self._insert_rec(choice.child_id, entry, target_level)
            self._refresh_entry(choice, self.node(choice.child_id))
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > self._max_entries(node):
            return self._handle_overflow(node)
        return None

    def _handle_overflow(self, node: Node) -> Optional[BranchEntry]:
        """Resolve an overflowing node; returns the new sibling's parent
        entry when the resolution was a split.  The Guttman tree always
        splits; the R*-tree overrides this with forced reinsertion."""
        return self._split_node(node)

    def _choose_subtree(self, node: Node, mbr: Rect) -> BranchEntry:
        """Least-enlargement child, ties broken by smaller area."""
        best: Optional[BranchEntry] = None
        best_enlargement = float("inf")
        best_area = float("inf")
        for entry in node.entries:
            enlargement = entry.mbr.enlargement(mbr)
            area = entry.mbr.area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best = entry
                best_enlargement = enlargement
                best_area = area
        assert best is not None, "choose_subtree on empty node"
        return best

    def _max_entries(self, node: Node) -> int:
        return self.max_leaf if node.is_leaf else self.max_branch

    def _min_entries(self, node: Node) -> int:
        return self.min_leaf if node.is_leaf else self.min_branch

    def _split_node(self, node: Node) -> BranchEntry:
        """Split an overflowing node in place; returns the new sibling's
        parent entry."""
        group1, group2 = quadratic_split(node.entries, self._min_entries(node))
        node.entries = group1
        sibling = self._alloc_node(node.level)
        sibling.entries = group2
        return self._entry_for_child(sibling)

    def _grow_root(self, sibling_entry: BranchEntry) -> None:
        old_root = self.node(self.root_id)
        new_root = self._alloc_node(old_root.level + 1)
        new_root.entries = [self._entry_for_child(old_root), sibling_entry]
        self.root_id = new_root.node_id
        self.height += 1

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, mbr: Rect, payload: Any) -> bool:
        """Remove the data entry with this exact ``(mbr, payload)``.

        Underflowing nodes are dissolved and their data entries
        reinserted (the condense-tree step).  Returns False when no
        matching entry exists.
        """
        orphans: list[LeafEntry] = []
        found = self._delete_rec(self.root_id, mbr, payload, orphans)
        if not found:
            return False
        self.num_entries -= 1
        self.version += 1
        # Shrink the root while it is a single-child branch node.
        root = self.node(self.root_id)
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child_id
            self._free_node(self.root_id)
            self.root_id = child_id
            self.height -= 1
            root = self.node(self.root_id)
        for orphan in orphans:
            self._insert_at_level(orphan, 0)
        self._flush_dirty()
        return True

    def _delete_rec(
        self, node_id: int, mbr: Rect, payload: Any, orphans: list[LeafEntry]
    ) -> bool:
        node = self.node(node_id)
        if node.is_leaf:
            for idx, entry in enumerate(node.entries):
                if entry.mbr == mbr and entry.payload == payload:
                    del node.entries[idx]
                    self._mark_dirty(node_id)
                    return True
            return False
        for idx, entry in enumerate(node.entries):
            if not entry.mbr.contains_rect(mbr):
                continue
            if not self._delete_rec(entry.child_id, mbr, payload, orphans):
                continue
            # This node changes either way: the child's entry is dropped
            # (dissolve) or refreshed (MBR/augmentation tightening).
            self._mark_dirty(node_id)
            child = self.node(entry.child_id)
            if len(child.entries) < self._min_entries(child):
                # Dissolve the underflowing child: salvage its data
                # entries for reinsertion and drop it from the directory.
                self._collect_leaf_entries(child, orphans)
                self._free_subtree(entry.child_id)
                del node.entries[idx]
            else:
                self._refresh_entry(entry, child)
            return True
        return False

    def _collect_leaf_entries(self, node: Node, out: list[LeafEntry]) -> None:
        if node.is_leaf:
            out.extend(node.entries)  # type: ignore[arg-type]
            return
        for entry in node.entries:
            self._collect_leaf_entries(self.node(entry.child_id), out)

    def _free_subtree(self, node_id: int) -> None:
        node = self.node(node_id)
        if not node.is_leaf:
            for entry in node.entries:
                self._free_subtree(entry.child_id)
        self._free_node(node_id)

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        """All data entries, without I/O accounting (for tests/tools)."""
        stack = [self.root_id]
        while stack:
            node = self.node(stack.pop())
            if node.is_leaf:
                yield from node.entries  # type: ignore[misc]
            else:
                stack.extend(e.child_id for e in node.entries)

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes, without I/O accounting (for tests/tools)."""
        stack = [self.root_id]
        while stack:
            node = self.node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_id for e in node.entries)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, entries={self.num_entries}, "
            f"height={self.height}, nodes={self.num_nodes})"
        )
