"""The MND-augmented R-tree ``R_C^m`` (Section VI).

Structurally a plain R-tree over client points, except that every
directory entry additionally stores the child node's *maximum NFC
distance* — one 8-byte value, computed with the closed-form CFP
arithmetic of Section VI-A.  The augmentation is maintained through the
standard insert/delete/bulk-load paths by overriding the two
entry-production hooks, mirroring how MBRs themselves are maintained
(the paper: "the MND computation can be integrated straightforwardly
into the standard R-tree procedures with negligible overhead").

The entry layout (:data:`repro.storage.records.MND_ENTRY`) is 8 bytes
wider than a plain entry, which slightly reduces fanout — exactly the
effect the paper acknowledges and measures via index size.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.geometry.maxmindist import max_min_dist_region_rect
from repro.rtree.entry import BranchEntry
from repro.rtree.node import Node
from repro.rtree.rtree import RTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.records import MND_ENTRY, PAGE_SIZE
from repro.storage.stats import IOStats


class MNDTree(RTree):
    """An R-tree whose parent entries carry the child's MND value."""

    def __init__(
        self,
        name: str,
        stats: IOStats,
        radius_of: Callable[[Any], float],
        buffer_pool: Optional[LRUBufferPool] = None,
        page_size: int = PAGE_SIZE,
        max_leaf_entries: Optional[int] = None,
        max_branch_entries: Optional[int] = None,
        min_fill: float = 0.4,
    ):
        """``radius_of`` maps a leaf payload (a client record) to its NFC
        radius, i.e. the precomputed ``dnn(c, F)``.

        The 44-byte :data:`~repro.storage.records.MND_ENTRY` layout is
        used at *every* level — the extra attribute that "reduces C_e a
        little bit" (Section VII-A): leaf entries carry the client's
        ``dnn`` (its leaf-level MND) and directory entries the child's
        MND.
        """
        super().__init__(
            name,
            stats,
            leaf_layout=MND_ENTRY,
            branch_layout=MND_ENTRY,
            buffer_pool=buffer_pool,
            page_size=page_size,
            max_leaf_entries=max_leaf_entries,
            max_branch_entries=max_branch_entries,
            min_fill=min_fill,
        )
        self._radius_of = radius_of

    # ------------------------------------------------------------------
    # Augmentation hooks
    # ------------------------------------------------------------------
    def _entry_for_child(self, child: Node) -> BranchEntry:
        return BranchEntry(child.mbr(), child.node_id, self.compute_mnd(child))

    def _refresh_entry(self, entry: BranchEntry, child: Node) -> None:
        entry.mbr = child.mbr()
        entry.mnd = self.compute_mnd(child)

    # ------------------------------------------------------------------
    def compute_mnd(self, node: Node) -> float:
        """The MND of ``node``: the largest ``maxMinDist`` from the NFC
        (leaf) or MND region (non-leaf) of any child to the node's MBR."""
        mbr = node.mbr()
        best = 0.0
        if node.is_leaf:
            for entry in node.entries:
                value = max_min_dist_region_rect(
                    entry.mbr, self._radius_of(entry.payload), mbr
                )
                if value > best:
                    best = value
        else:
            for entry in node.entries:
                value = max_min_dist_region_rect(entry.mbr, entry.mnd, mbr)
                if value > best:
                    best = value
        return best

    def root_mnd(self) -> float:
        """The MND of the root (kept implicit; roots have no parent entry)."""
        root = self.node(self.root_id)
        if not root.entries:
            return 0.0
        return self.compute_mnd(root)
