"""Guttman's quadratic node split.

When a node overflows, its entries are partitioned into two groups:
``pick_seeds`` chooses the pair of entries whose combined MBR wastes the
most area, then the remaining entries are assigned one by one to the
group whose MBR they enlarge least, while guaranteeing each group ends
with at least ``min_entries`` members.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.geometry.rect import Rect
from repro.rtree.entry import BranchEntry, LeafEntry

E = TypeVar("E", LeafEntry, BranchEntry)


def pick_seeds(entries: Sequence[E]) -> tuple[int, int]:
    """Indices of the two entries that waste the most area together."""
    worst = -1.0
    seeds = (0, 1)
    for i in range(len(entries)):
        mbr_i = entries[i].mbr
        area_i = mbr_i.area
        for j in range(i + 1, len(entries)):
            mbr_j = entries[j].mbr
            waste = mbr_i.union(mbr_j).area - area_i - mbr_j.area
            if waste > worst:
                worst = waste
                seeds = (i, j)
    return seeds


def quadratic_split(entries: list[E], min_entries: int) -> tuple[list[E], list[E]]:
    """Partition ``entries`` into two groups per Guttman's quadratic split.

    Returns ``(group1, group2)``; both have at least ``min_entries``
    entries (the input must therefore have at least ``2 * min_entries``).
    """
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"cannot split {len(entries)} entries with min fill {min_entries}"
        )
    seed1, seed2 = pick_seeds(entries)
    group1: list[E] = [entries[seed1]]
    group2: list[E] = [entries[seed2]]
    mbr1: Rect = entries[seed1].mbr
    mbr2: Rect = entries[seed2].mbr
    remaining = [e for k, e in enumerate(entries) if k not in (seed1, seed2)]

    while remaining:
        # If one group must absorb all the rest to reach its minimum, do so.
        if len(group1) + len(remaining) <= min_entries:
            group1.extend(remaining)
            break
        if len(group2) + len(remaining) <= min_entries:
            group2.extend(remaining)
            break

        # PickNext: the entry with the strongest preference either way.
        best_idx = 0
        best_pref = -1.0
        best_d1 = best_d2 = 0.0
        for idx, entry in enumerate(remaining):
            d1 = mbr1.enlargement(entry.mbr)
            d2 = mbr2.enlargement(entry.mbr)
            pref = abs(d1 - d2)
            if pref > best_pref:
                best_pref = pref
                best_idx = idx
                best_d1, best_d2 = d1, d2
        entry = remaining.pop(best_idx)

        # Resolve ties by smaller area, then by fewer entries.
        if best_d1 < best_d2:
            into_first = True
        elif best_d2 < best_d1:
            into_first = False
        elif mbr1.area != mbr2.area:
            into_first = mbr1.area < mbr2.area
        else:
            into_first = len(group1) <= len(group2)

        if into_first:
            group1.append(entry)
            mbr1 = mbr1.union(entry.mbr)
        else:
            group2.append(entry)
            mbr2 = mbr2.union(entry.mbr)

    return group1, group2
