"""A from-scratch R-tree substrate with paged I/O accounting.

Everything the paper's four methods need from a spatial index is built
here, on top of :mod:`repro.storage`:

* :class:`~repro.rtree.rtree.RTree` — Guttman R-tree (quadratic split)
  with insert, delete, window query and best-first nearest-neighbour
  search; every node occupies one simulated disk page, so node accesses
  are exactly the I/Os the paper counts.
* :func:`~repro.rtree.bulk.bulk_load` — Sort-Tile-Recursive bulk loading.
* :func:`~repro.rtree.nn.nearest_neighbor` /
  :func:`~repro.rtree.nn.incremental_nearest` /
  :func:`~repro.rtree.nn.nearest_in_quadrant` — best-first NN search
  (Hjaltason & Samet), including the quadrant-constrained variant used to
  build quasi-Voronoi cells.
* :func:`~repro.rtree.window.window_query` — range search.
* :func:`~repro.rtree.join.intersection_join` — R-tree spatial join
  (Brinkhoff et al.), the skeleton of the NFC and MND query algorithms.
* :func:`~repro.rtree.rnn_tree.build_rnn_tree` — the RNN-tree ``R_C^n``
  over nearest-facility circles (NFC method).
* :class:`~repro.rtree.mnd_tree.MNDTree` — the MND-augmented R-tree
  ``R_C^m`` whose parent entries carry the max-NFC-distance values
  (MND method, Section VI).
"""

from repro.rtree.bulk import bulk_load
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.frontier import DEFAULT_TASK_TARGET, expand_frontier
from repro.rtree.join import intersection_join
from repro.rtree.mnd_tree import MNDTree
from repro.rtree.nn import (
    incremental_nearest,
    k_nearest,
    nearest_in_quadrant,
    nearest_neighbor,
)
from repro.rtree.node import Node
from repro.rtree.persist import DiskRTree, ReadOnlyTreeError, save_rtree
from repro.rtree.rnn_tree import build_rnn_tree
from repro.rtree.rstar import RStarTree
from repro.rtree.rtree import RTree
from repro.rtree.validate import validate_rtree
from repro.rtree.window import window_query

__all__ = [
    "BranchEntry",
    "DEFAULT_TASK_TARGET",
    "DiskRTree",
    "expand_frontier",
    "ReadOnlyTreeError",
    "save_rtree",
    "LeafEntry",
    "MNDTree",
    "Node",
    "RStarTree",
    "RTree",
    "build_rnn_tree",
    "bulk_load",
    "incremental_nearest",
    "k_nearest",
    "intersection_join",
    "nearest_in_quadrant",
    "nearest_neighbor",
    "validate_rtree",
    "window_query",
]
