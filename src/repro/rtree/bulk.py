"""Sort-Tile-Recursive (STR) bulk loading.

The experiments build indexes over up to a million points; loading them
one insert at a time would dominate set-up time and produce poorly packed
nodes.  STR (Leutenegger et al.) packs entries into near-full leaves by
sorting on x, tiling into vertical slabs, and sorting each slab on y,
then builds the upper levels the same way — giving nodes close to the
paper's effective capacity ``C_e``.

Augmented trees (the MND variant) stay consistent because node parent
entries are produced through the tree's ``_entry_for_child`` hook.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.geometry.rect import Rect
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.rtree import RTree

#: Default node fill for bulk loading, matching the ~70 % average
#: occupancy assumed by the paper's ``C_e``.
DEFAULT_FILL = 0.7


def _tile(entries: list, per_node: int) -> list[list]:
    """Partition entries into STR runs of ``per_node`` members."""
    n = len(entries)
    num_nodes = math.ceil(n / per_node)
    num_slabs = math.ceil(math.sqrt(num_nodes))
    per_slab = num_slabs * per_node
    entries.sort(key=lambda e: (e.mbr.xmin + e.mbr.xmax))
    runs: list[list] = []
    for s in range(0, n, per_slab):
        slab = entries[s : s + per_slab]
        slab.sort(key=lambda e: (e.mbr.ymin + e.mbr.ymax))
        for r in range(0, len(slab), per_node):
            runs.append(slab[r : r + per_node])
    return runs


def bulk_load(
    tree: RTree,
    items: Sequence[tuple[Rect, Any]],
    fill: float = DEFAULT_FILL,
) -> RTree:
    """Bulk-load ``items`` (``(mbr, payload)`` pairs) into an empty tree.

    Returns the tree for chaining.  Raises if the tree already holds
    entries — bulk loading is a construction-time operation only.
    """
    if tree.num_entries:
        raise ValueError("bulk_load requires an empty tree")
    if not items:
        return tree

    leaf_cap = max(2, min(tree.max_leaf, int(tree.max_leaf * fill)))
    branch_cap = max(2, min(tree.max_branch, int(tree.max_branch * fill)))

    entries: list[LeafEntry] = [LeafEntry(mbr, payload) for mbr, payload in items]
    level = 0
    # The pre-allocated empty root becomes the first leaf when everything
    # fits on one page; otherwise fresh nodes are allocated per level.
    if len(entries) <= tree.max_leaf:
        root = tree.node(tree.root_id)
        root.entries = entries
        tree.height = 1
        tree.num_entries = len(items)
        return tree

    nodes: list[Node] = []
    for run in _tile(entries, leaf_cap):
        node = tree._alloc_node(0)
        node.entries = run
        nodes.append(node)

    while len(nodes) > 1:
        level += 1
        parent_entries: list[BranchEntry] = [
            tree._entry_for_child(node) for node in nodes
        ]
        if len(parent_entries) <= tree.max_branch:
            root = tree._alloc_node(level)
            root.entries = parent_entries
            nodes = [root]
            break
        nodes = []
        for run in _tile(parent_entries, branch_cap):
            node = tree._alloc_node(level)
            node.entries = run
            nodes.append(node)

    old_root = tree.root_id
    tree.root_id = nodes[0].node_id
    tree._free_node(old_root)
    tree.height = nodes[0].level + 1
    tree.num_entries = len(items)
    return tree
