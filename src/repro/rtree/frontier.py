"""Node-pair frontier extraction for parallel spatial joins.

The NFC and MND methods are synchronized depth-first joins over two
R-trees.  To parallelise them without changing what gets *charged*, the
execution engine splits the top of the traversal into a **frontier**: a
list of independent node-pair tasks whose concatenated sub-traversals
cover exactly the pairs the serial recursion would visit, in exactly the
serial order.

:func:`expand_frontier` is the method-agnostic core.  It repeatedly
expands the leftmost expandable item into its qualifying children —
spliced in place, so the list stays in serial DFS order — and stops the
moment the frontier reaches ``target`` items (or nothing can expand).
Expanding one item at a time matters: a whole-pass expansion of a
near-target frontier would overshoot deep into the trees and charge
most of the join's reads on the driver, leaving the tasks nothing to
parallelise.

The caller's ``expand_item`` callback owns the join predicate and,
crucially, the I/O: it must charge the child-node reads exactly where
the serial recursion would (the serial join re-reads a child once per
qualifying pair, and so does the frontier).  Page-read *totals* are
therefore independent of the target — it only moves charges between the
planning phase and the tasks — while the float-merge grouping of the
downstream reduction is fixed by the frontier alone: byte-identical
results at any worker count.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

Item = TypeVar("Item")

#: Default frontier size the engine aims for: enough tasks to keep a
#: small pool busy and amortise per-task overhead, few enough that the
#: per-task partial-result arrays stay cheap.
DEFAULT_TASK_TARGET = 32


def expand_frontier(
    items: Sequence[Item],
    expand_item: Callable[[Item], Optional[list[Item]]],
    target: int = DEFAULT_TASK_TARGET,
) -> list[Item]:
    """Expand join items until the frontier is at least ``target`` wide.

    ``expand_item`` returns the item's qualifying children in serial
    visit order (possibly empty, when every child pair is pruned), or
    None for an unexpandable item (e.g. a leaf-leaf pair).  The result
    depends only on the items, the trees and ``target`` — never on
    worker count or timing.
    """
    if target < 1:
        raise ValueError("target must be >= 1")
    frontier = list(items)
    while len(frontier) < target:
        # One left-to-right pass expanding items *without* descending
        # into their freshly spliced children (the cursor skips them),
        # so the frontier deepens level by level and the tasks stay
        # balanced; the pass aborts the moment the target is reached.
        cursor = 0
        expanded_any = False
        while cursor < len(frontier) and len(frontier) < target:
            children = expand_item(frontier[cursor])
            if children is None:
                cursor += 1
            else:
                frontier[cursor : cursor + 1] = children
                cursor += len(children)
                expanded_any = True
        if not expanded_any:
            break
    return frontier
