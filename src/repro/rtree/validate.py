"""Structural invariant checking for R-trees and their variants.

Used throughout the test-suite (including property-based tests) to
assert that inserts, deletes and bulk loads leave the tree in a
consistent state:

* every directory entry's MBR is exactly the tight MBR of its child;
* levels decrease by one on the way down and leaves sit at level 0;
* no node overflows; optionally, no non-root node underflows;
* the leaf-entry count matches ``tree.num_entries``;
* for :class:`~repro.rtree.mnd_tree.MNDTree`, every stored MND equals
  the recomputed value.
"""

from __future__ import annotations

from repro.rtree.mnd_tree import MNDTree
from repro.rtree.node import Node
from repro.rtree.rtree import RTree

_EPS = 1e-9


class RTreeInvariantError(AssertionError):
    """Raised when a structural invariant is violated."""


def validate_rtree(tree: RTree, check_min_fill: bool = False) -> int:
    """Validate all invariants; returns the number of data entries seen.

    ``check_min_fill`` additionally enforces the minimum-fill bound on
    non-root nodes — valid after pure insert workloads, but deliberately
    not after STR bulk loading, whose final tile per level may be small.
    """
    if tree.num_entries == 0:
        root = tree.node(tree.root_id)
        if not root.is_leaf or root.entries:
            raise RTreeInvariantError("empty tree must be a bare leaf root")
        return 0
    root = tree.node(tree.root_id)
    if root.level != tree.height - 1:
        raise RTreeInvariantError(
            f"root level {root.level} inconsistent with height {tree.height}"
        )
    seen = _validate_node(tree, root, is_root=True, check_min_fill=check_min_fill)
    if seen != tree.num_entries:
        raise RTreeInvariantError(
            f"tree reports {tree.num_entries} entries but leaves hold {seen}"
        )
    return seen


def _validate_node(tree: RTree, node: Node, is_root: bool, check_min_fill: bool) -> int:
    max_entries = tree._max_entries(node)
    if len(node.entries) > max_entries:
        raise RTreeInvariantError(
            f"node {node.node_id} overflows: {len(node.entries)} > {max_entries}"
        )
    if not is_root:
        lower = tree._min_entries(node) if check_min_fill else 1
        if len(node.entries) < lower:
            raise RTreeInvariantError(
                f"node {node.node_id} underflows: {len(node.entries)} < {lower}"
            )
    if is_root and not node.is_leaf and len(node.entries) < 2:
        raise RTreeInvariantError("a non-leaf root must have at least 2 entries")

    if node.is_leaf:
        return len(node.entries)

    count = 0
    for entry in node.entries:
        child = tree.node(entry.child_id)
        if child.level != node.level - 1:
            raise RTreeInvariantError(
                f"child {child.node_id} level {child.level} under node "
                f"{node.node_id} level {node.level}"
            )
        tight = child.mbr()
        if (
            abs(entry.mbr.xmin - tight.xmin) > _EPS
            or abs(entry.mbr.ymin - tight.ymin) > _EPS
            or abs(entry.mbr.xmax - tight.xmax) > _EPS
            or abs(entry.mbr.ymax - tight.ymax) > _EPS
        ):
            raise RTreeInvariantError(
                f"entry MBR {entry.mbr} is not the tight MBR {tight} of child "
                f"{child.node_id}"
            )
        if isinstance(tree, MNDTree):
            expected = tree.compute_mnd(child)
            if entry.mnd is None or abs(entry.mnd - expected) > _EPS:
                raise RTreeInvariantError(
                    f"entry MND {entry.mnd} != recomputed {expected} for child "
                    f"{child.node_id}"
                )
        count += _validate_node(
            tree, child, is_root=False, check_min_fill=check_min_fill
        )
    return count
