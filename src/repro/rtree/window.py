"""Window (range) queries.

The QVC method issues a window query per approximate influence region;
the public API also exposes plain range search.  Node accesses are
counted as I/Os via ``tree.read_node``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.geometry.rect import Rect
from repro.rtree.rtree import RTree


def window_query(
    tree: RTree,
    window: Rect,
    payload_filter: Optional[Callable[[Any], bool]] = None,
) -> Iterator[Any]:
    """Yield payloads whose entry MBR intersects ``window``.

    ``payload_filter`` optionally refines leaf hits (e.g. exact
    point-in-polygon tests after the MBR filter).
    """
    if tree.num_entries == 0:
        return
    tracer = tree.stats.tracer
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        tracer.count("window.nodes")
        if node.is_leaf:
            for entry in node.entries:
                if not window.intersects(entry.mbr):
                    continue
                if payload_filter is not None and not payload_filter(entry.payload):
                    continue
                tracer.count("window.hits")
                yield entry.payload
        else:
            for entry in node.entries:
                if window.intersects(entry.mbr):
                    stack.append(entry.child_id)


def count_in_window(tree: RTree, window: Rect) -> int:
    """Number of data entries whose MBR intersects ``window``."""
    return sum(1 for _ in window_query(tree, window))
