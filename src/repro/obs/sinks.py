"""Span sinks: where finished trace trees go.

A sink is any object with ``emit(root_span)``; the tracer calls it once
per *root* span, after the whole tree is finished.  Three sinks cover
the repo's needs:

- :class:`InMemorySink` — collects roots in a list (tests, the profile
  CLI, the experiment runner's per-run breakdown);
- :class:`JsonLinesSink` — appends one JSON object per root span to a
  file or stream (benchmark post-processing);
- :class:`CallbackSink` — adapts a plain function.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, IO, Optional, Union

from repro.obs.trace import Span


class InMemorySink:
    """Keeps every finished root span, newest last."""

    __slots__ = ("roots",)

    def __init__(self) -> None:
        self.roots: list[Span] = []

    def emit(self, root: Span) -> None:
        self.roots.append(root)

    @property
    def last(self) -> Optional[Span]:
        return self.roots[-1] if self.roots else None

    def clear(self) -> None:
        self.roots.clear()

    def __len__(self) -> int:
        return len(self.roots)


class JsonLinesSink:
    """Writes each root span tree as one JSON line.

    Accepts a path (opened lazily, append mode) or an open text stream.
    Each line is the nested :meth:`~repro.obs.trace.Span.to_dict` form;
    :func:`read_jsonl` round-trips it back into :class:`Span` trees.

    Emission is thread-safe: the line is serialised *before* the lock
    is taken and written with one ``write()`` call under it, so sinks
    shared between concurrently-finishing tracers (one tracer per
    worker, one shared sink — the service's layout) never interleave
    or tear lines.
    """

    __slots__ = ("_path", "_stream", "_owns_stream", "_lock")

    def __init__(self, target: Union[str, Path, IO[str]]):
        if isinstance(target, (str, Path)):
            self._path: Optional[Path] = Path(target)
            self._stream: Optional[IO[str]] = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()

    def emit(self, root: Span) -> None:
        line = json.dumps(root.to_dict(), separators=(",", ":")) + "\n"
        with self._lock:
            if self._stream is None:
                assert self._path is not None
                self._stream = self._path.open("a", encoding="utf-8")
            self._stream.write(line)
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class CallbackSink:
    """Invokes ``fn(root_span)`` for every finished root."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[Span], None]):
        self._fn = fn

    def emit(self, root: Span) -> None:
        self._fn(root)


def read_jsonl(source: Union[str, Path, IO[str]]) -> list[Span]:
    """Load every span tree from a JSON-lines file or stream."""
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as stream:
            return [
                Span.from_dict(json.loads(line))
                for line in stream
                if line.strip()
            ]
    return [Span.from_dict(json.loads(line)) for line in source if line.strip()]
