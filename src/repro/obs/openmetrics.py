"""OpenMetrics text exposition for the metrics registry.

:func:`render_openmetrics` turns a
:class:`~repro.obs.registry.MetricsRegistry` into the OpenMetrics text
format (the Prometheus scrape format's standardised successor): one
``# TYPE`` metadata line per metric family, samples with escaped
labels, and the mandatory ``# EOF`` terminator.  Counters become
OpenMetrics counters (``_total`` sample suffix), gauges become gauges,
and histograms are exposed as **summaries** — the registry keeps raw
reservoir samples rather than fixed buckets, so quantile samples
(``{quantile="0.5"}`` ...) plus ``_count``/``_sum`` are the faithful
rendering.

Label convention: a registry metric named ``family{k=v,k2=v2}`` is one
labelled sample of family ``family`` — that is how the live service
metrics carry per-workspace and per-op labels through the flat
registry namespace without touching the plain callers.  Names are
sanitised to the exposition charset (dots become underscores).

:func:`lint_openmetrics` is a dependency-free conformance checker over
the rules that matter for scrapers (metadata before samples, no
interleaved families, valid names/labels/values, ``# EOF``); CI runs it
against a live server's ``metrics`` output so a formatting regression
can never ship.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Optional

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

#: Quantiles exposed per histogram-as-summary family.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

#: The content type a scrape endpoint should declare.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?\Z"
)
_LABEL_RE = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """A registry metric name as a legal exposition metric name."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_RE.match(out):
        out = "_" + out
    return out


def split_labels(name: str) -> tuple[str, dict[str, str]]:
    """Split a ``family{k=v,...}`` registry name into (family, labels)."""
    if not name.endswith("}") or "{" not in name:
        return name, {}
    family, _, inner = name.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip()
    return family, labels


def labeled_name(family: str, **labels: str) -> str:
    """The registry-name convention for one labelled sample.

    >>> labeled_name("service.requests", op="select", workspace="default")
    'service.requests{op=select,workspace=default}'
    """
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{family}{{{inner}}}" if inner else family


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_openmetrics(
    registry: MetricsRegistry, prefix: str = ""
) -> str:
    """The registry's metrics (name-filtered by ``prefix``) as one
    OpenMetrics text document, ``# EOF`` included."""
    # Group labelled samples under their family, preserving metric kind.
    families: dict[str, dict] = {}
    for name in registry.names():
        if not name.startswith(prefix):
            continue
        metric = registry.get(name)
        if metric is None:
            continue
        family_name, labels = split_labels(name)
        exposed = sanitize_name(family_name)
        family = families.setdefault(
            exposed, {"kind": metric.kind, "samples": []}
        )
        if family["kind"] != metric.kind:
            # Same exposed family from two registry kinds (should not
            # happen, but never emit an interleaved-type document).
            exposed = f"{exposed}_{metric.kind}"
            family = families.setdefault(
                exposed, {"kind": metric.kind, "samples": []}
            )
        family["samples"].append((labels, metric))

    lines: list[str] = []
    for exposed in sorted(families):
        family = families[exposed]
        kind = family["kind"]
        om_type = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}[
            kind
        ]
        lines.append(f"# TYPE {exposed} {om_type}")
        for labels, metric in family["samples"]:
            rendered = _render_labels(labels)
            if isinstance(metric, Counter):
                lines.append(
                    f"{exposed}_total{rendered} {_format_value(metric.value)}"
                )
            elif isinstance(metric, Gauge):
                lines.append(f"{exposed}{rendered} {_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                for q in SUMMARY_QUANTILES:
                    q_labels = dict(labels)
                    q_labels["quantile"] = repr(q)
                    lines.append(
                        f"{exposed}{_render_labels(q_labels)} "
                        f"{_format_value(metric.quantile(q))}"
                    )
                lines.append(
                    f"{exposed}_count{rendered} {_format_value(metric.count)}"
                )
                lines.append(f"{exposed}_sum{rendered} {_format_value(metric.sum)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Conformance linting
# ----------------------------------------------------------------------
def _parse_value(raw: str) -> Optional[float]:
    if raw in ("+Inf", "-Inf", "NaN"):
        return {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}[raw]
    try:
        return float(raw)
    except ValueError:
        return None


def _family_of_sample(name: str, declared: dict[str, str]) -> Optional[str]:
    """Which declared family a sample name belongs to (suffix-aware)."""
    candidates = [name]
    for suffix in ("_total", "_count", "_sum", "_created", "_bucket"):
        if name.endswith(suffix):
            candidates.append(name[: -len(suffix)])
    for candidate in candidates:
        if candidate in declared:
            return candidate
    return None


def lint_openmetrics(text: str) -> list[str]:
    """Conformance problems of one OpenMetrics text document.

    An empty list means the document passes every check:

    * ends with exactly one ``# EOF`` line, nothing after it;
    * metric and label names match the exposition charset;
    * every sample's family has a ``# TYPE`` declared *before* it, at
      most once, and families are never interleaved;
    * counter samples use the ``_total``/``_created`` suffixes, gauge
      samples the bare family name, summary samples quantile labels in
      ``[0, 1]`` or ``_count``/``_sum``;
    * label syntax/escaping is valid and no (name, labelset) repeats;
    * sample values parse as OpenMetrics floats.
    """
    problems: list[str] = []
    if not text:
        return ["document is empty"]
    if not text.endswith("\n"):
        problems.append("document must end with a newline")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("document must end with the '# EOF' terminator")
    declared: dict[str, str] = {}  # family -> type
    finished: set[str] = set()  # families whose block already closed
    seen_samples: set[tuple] = set()
    current_family: Optional[str] = None
    for lineno, line in enumerate(lines, start=1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: content after '# EOF'")
            break
        if not line:
            problems.append(f"line {lineno}: blank lines are not allowed")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE",
                "HELP",
                "UNIT",
            ):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            family = parts[2]
            if not _NAME_RE.match(family):
                problems.append(f"line {lineno}: invalid family name {family!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"line {lineno}: TYPE needs a metric type")
                    continue
                if parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "info",
                    "stateset",
                    "unknown",
                    "gaugehistogram",
                ):
                    problems.append(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
                if family in declared:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for family {family!r}"
                    )
                if family in finished:
                    problems.append(
                        f"line {lineno}: family {family!r} is interleaved"
                    )
                declared[family] = parts[3] if len(parts) == 4 else "unknown"
                if current_family is not None and current_family != family:
                    finished.add(current_family)
                current_family = family
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample line {line!r}")
            continue
        name = match.group("name")
        family = _family_of_sample(name, declared)
        if family is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        if family in finished:
            problems.append(f"line {lineno}: family {family!r} is interleaved")
        if current_family is not None and family != current_family:
            finished.add(current_family)
        current_family = family
        kind = declared[family]
        labels = {}
        raw_labels = match.group("labels")
        if raw_labels is not None:
            consumed = 0
            for label_match in _LABEL_RE.finditer(raw_labels):
                key = label_match.group("name")
                if key in labels:
                    problems.append(
                        f"line {lineno}: duplicate label {key!r}"
                    )
                labels[key] = label_match.group("value")
                consumed += len(label_match.group(0)) + 1  # +1 for the comma
            if raw_labels and consumed < len(raw_labels):
                problems.append(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
        if kind == "counter" and not (
            name.endswith("_total") or name.endswith("_created")
        ):
            problems.append(
                f"line {lineno}: counter sample {name!r} must end in _total"
            )
        if kind == "gauge" and name != family:
            problems.append(
                f"line {lineno}: gauge sample {name!r} must use the bare "
                f"family name {family!r}"
            )
        if kind == "summary":
            if name == family:
                quantile = labels.get("quantile")
                if quantile is None:
                    problems.append(
                        f"line {lineno}: summary sample needs a quantile label"
                    )
                else:
                    parsed = _parse_value(quantile)
                    if parsed is None or not 0.0 <= parsed <= 1.0:
                        problems.append(
                            f"line {lineno}: quantile {quantile!r} not in [0, 1]"
                        )
            elif not (name.endswith("_count") or name.endswith("_sum")
                      or name.endswith("_created")):
                problems.append(
                    f"line {lineno}: unexpected summary sample {name!r}"
                )
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: value {match.group('value')!r} is not a float"
            )
        identity = (name, tuple(sorted(labels.items())))
        if identity in seen_samples:
            problems.append(
                f"line {lineno}: duplicate sample {name!r} {labels!r}"
            )
        seen_samples.add(identity)
    return problems


def assert_openmetrics(text: str) -> None:
    """Raise ``ValueError`` listing every conformance problem (if any)."""
    problems = lint_openmetrics(text)
    if problems:
        raise ValueError(
            "OpenMetrics conformance failed:\n  " + "\n  ".join(problems)
        )


def iter_samples(text: str) -> Iterable[tuple[str, dict[str, str], float]]:
    """(name, labels, value) for every sample line of a document."""
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        labels = {
            m.group("name"): m.group("value")
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        value = _parse_value(match.group("value"))
        if value is not None:
            yield match.group("name"), labels, value
