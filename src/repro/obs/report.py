"""Human-readable span-tree reports and flat phase breakdowns.

``format_span_tree`` renders a finished root span as an indented tree
(the ``mindist profile`` output); sibling spans with the same name are
merged by default, so a loop that opens ``qvc.window`` once per block
reads as one aggregated line with a call count.  ``phase_breakdown``
flattens the same tree into ``{phase name: {...}}`` rows for CSV/JSON
consumers (the experiment runner attaches these to every benchmark
row).
"""

from __future__ import annotations

from repro.obs.trace import Span


def merge_spans(span: Span) -> Span:
    """A copy of ``span``'s subtree with same-named siblings merged.

    Merged spans sum elapsed time, I/O and counters; the merged call
    count is kept in the ``calls`` counter.
    """
    merged = Span(span.name)
    merged.elapsed_s = span.elapsed_s
    merged.reads = dict(span.reads)
    merged.writes = dict(span.writes)
    merged.counters = dict(span.counters)
    merged.counters["calls"] = span.counters.get("calls", 1)
    by_name: dict[str, Span] = {}
    for child in span.children:
        folded = merge_spans(child)
        existing = by_name.get(child.name)
        if existing is None:
            by_name[child.name] = folded
            folded.parent = merged
            merged.children.append(folded)
        else:
            _fold_into(existing, folded)
    return merged


def _fold_into(target: Span, other: Span) -> None:
    target.elapsed_s += other.elapsed_s
    for source, pages in other.reads.items():
        target.reads[source] = target.reads.get(source, 0) + pages
    for source, pages in other.writes.items():
        target.writes[source] = target.writes.get(source, 0) + pages
    for name, value in other.counters.items():
        target.counters[name] = target.counters.get(name, 0) + value
    for child in other.children:
        existing = next(
            (c for c in target.children if c.name == child.name), None
        )
        if existing is None:
            child.parent = target
            target.children.append(child)
        else:
            _fold_into(existing, child)


def format_span_tree(
    root: Span,
    merge_siblings: bool = True,
    show_counters: bool = True,
) -> str:
    """An aligned, indented rendering of a span tree."""
    span = merge_spans(root) if merge_siblings else root
    rows: list[tuple[str, str, str, str]] = []
    _collect_rows(span, "", True, True, rows, show_counters)
    name_w = max(len(r[0]) for r in rows)
    time_w = max(len(r[1]) for r in rows)
    read_w = max(len(r[2]) for r in rows)
    lines = []
    for name, elapsed, reads, extra in rows:
        line = f"{name.ljust(name_w)}  {elapsed.rjust(time_w)}  {reads.rjust(read_w)}"
        if extra:
            line += f"  {extra}"
        lines.append(line.rstrip())
    return "\n".join(lines)


def _collect_rows(
    span: Span,
    prefix: str,
    is_last: bool,
    is_root: bool,
    rows: list[tuple[str, str, str, str]],
    show_counters: bool,
) -> None:
    if is_root:
        label = span.name
        child_prefix = ""
    else:
        connector = "`- " if is_last else "|- "
        label = prefix + connector + span.name
        child_prefix = prefix + ("   " if is_last else "|  ")
    calls = span.counters.get("calls", 1)
    if calls > 1:
        label += f" x{calls}"
    elapsed = f"{span.elapsed_s * 1000:.2f} ms"
    reads = f"{span.page_reads} rd"
    if span.page_writes:
        reads += f" {span.page_writes} wr"
    extra = ""
    if show_counters:
        parts = [
            f"{name}={value}"
            for name, value in sorted(span.counters.items())
            if name != "calls"
        ]
        if parts:
            extra = "[" + " ".join(parts) + "]"
    rows.append((label, elapsed, reads, extra))
    for index, child in enumerate(span.children):
        _collect_rows(
            child,
            child_prefix,
            index == len(span.children) - 1,
            False,
            rows,
            show_counters,
        )


def phase_breakdown(root: Span) -> dict[str, dict[str, float]]:
    """Flat per-phase rows: ``{name: {elapsed_s, page_reads, calls}}``.

    Phases are span names aggregated over the whole tree (so the sum of
    ``page_reads`` across phases equals the run's total page reads, the
    invariant the CI smoke benchmark asserts).
    """
    out: dict[str, dict[str, float]] = {}
    for span in root.walk():
        row = out.setdefault(
            span.name,
            {"elapsed_s": 0.0, "self_s": 0.0, "page_reads": 0, "calls": 0},
        )
        row["elapsed_s"] += span.elapsed_s
        row["self_s"] += span.self_s
        row["page_reads"] += span.page_reads
        row["calls"] += 1
    return out
