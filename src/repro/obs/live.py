"""Live-service telemetry primitives: traces, slow log, access log.

Where :mod:`repro.obs.trace` profiles *one query in-process*, this
module holds what a long-running server needs to stay observable while
requests cross threads and sockets:

- :class:`RequestTrace` — one request's correlated record: the
  ``trace_id`` the client chose (or the server minted), the op and
  workspace, per-phase spans (admission wait, batch assembly, engine
  execution, cache lookup) and the outcome.  The engine's full span
  tree (:meth:`~repro.obs.trace.Span.to_dict`) can be grafted under
  the ``execute`` span, so a single trace joins the wire-level view to
  the per-task execution view;
- :class:`TraceBuffer` — a bounded ring of finished traces, findable
  by ``trace_id``;
- :class:`SlowQueryLog` — the top-N slowest finished traces;
- :class:`AccessLog` — one structured JSON line per request, written
  atomically under a lock so concurrent handlers never tear a line;
- :class:`SnapshotWriter` — periodic JSON-lines dumps of the registry's
  lifetime and windowed views, for offline analysis.

Everything here is thread-safe and allocation-light: a disabled
telemetry layer costs one ``None`` check at the call sites.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Optional, Union

from repro.obs.registry import MetricsRegistry

#: Monotone source for server-minted trace ids (process-unique).
_TRACE_COUNTER = itertools.count(1)

#: Access-log severity order.
LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def mint_trace_id(prefix: str = "srv") -> str:
    """A process-unique trace id for requests that did not carry one."""
    return f"{prefix}-{next(_TRACE_COUNTER):08x}"


@dataclass
class RequestTrace:
    """One request's correlated telemetry record."""

    trace_id: str
    op: str
    workspace: Optional[str] = None
    method: Optional[str] = None
    request_id: Any = None
    #: Wall-clock start (unix seconds) — for log correlation.
    ts: float = field(default_factory=time.time)
    #: Monotonic start — for duration arithmetic.
    started: float = field(default_factory=time.perf_counter)
    outcome: str = "pending"  # "ok" | protocol error code
    cached: bool = False
    batch_size: Optional[int] = None
    queue_depth: Optional[int] = None
    latency_s: float = 0.0
    spans: list[dict] = field(default_factory=list)

    def add_span(
        self, name: str, elapsed_s: float, **extra: Any
    ) -> None:
        span = {"name": name, "elapsed_s": elapsed_s}
        span.update(extra)
        self.spans.append(span)

    def finish(self, outcome: str = "ok") -> None:
        self.outcome = outcome
        self.latency_s = time.perf_counter() - self.started

    def span_named(self, name: str) -> Optional[dict]:
        for span in self.spans:
            if span["name"] == name:
                return span
        return None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "op": self.op,
            "workspace": self.workspace,
            "method": self.method,
            "ts": self.ts,
            "outcome": self.outcome,
            "cached": self.cached,
            "batch_size": self.batch_size,
            "queue_depth": self.queue_depth,
            "latency_s": self.latency_s,
            "spans": list(self.spans),
        }


class TraceBuffer:
    """A bounded, thread-safe ring of finished request traces."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._traces: deque[RequestTrace] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, trace: RequestTrace) -> None:
        with self._lock:
            self._traces.append(trace)

    def find(self, trace_id: str) -> Optional[RequestTrace]:
        """The newest finished trace with this id, if still buffered."""
        with self._lock:
            for trace in reversed(self._traces):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def recent(self, n: int = 50) -> list[RequestTrace]:
        """The most recent traces, newest first."""
        with self._lock:
            items = list(self._traces)
        return list(reversed(items))[: max(0, n)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class SlowQueryLog:
    """The top-N slowest finished traces (min-heap by latency)."""

    def __init__(self, capacity: int = 32, min_latency_s: float = 0.0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.min_latency_s = min_latency_s
        self._heap: list[tuple[float, int, RequestTrace]] = []
        self._seq = itertools.count()  # tie-break so traces never compare
        self._lock = threading.Lock()

    def offer(self, trace: RequestTrace) -> bool:
        """Consider one finished trace; True if it entered the log."""
        if trace.latency_s < self.min_latency_s:
            return False
        with self._lock:
            entry = (trace.latency_s, next(self._seq), trace)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
                return True
            if trace.latency_s > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)
                return True
        return False

    def slowest(self, n: Optional[int] = None) -> list[RequestTrace]:
        """The slowest traces, slowest first."""
        with self._lock:
            ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        traces = [entry[2] for entry in ordered]
        return traces if n is None else traces[: max(0, n)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


class AccessLog:
    """A structured JSON access log: one object per line, never torn.

    Accepts a path (opened lazily, append mode) or an open text stream.
    Every record is serialised *before* the lock is taken and written
    with a single ``write()`` call under it, so lines from concurrent
    handlers never interleave.  Records below ``level`` are dropped.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        level: str = "info",
    ):
        if level not in LOG_LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; expected one of "
                f"{', '.join(LOG_LEVELS)}"
            )
        if isinstance(target, (str, Path)):
            self._path: Optional[Path] = Path(target)
            self._stream: Optional[IO[str]] = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = target
            self._owns_stream = False
        self.level = level
        self._threshold = LOG_LEVELS[level]
        self._lock = threading.Lock()

    def write(self, record: dict, level: str = "info") -> None:
        if LOG_LEVELS.get(level, 20) < self._threshold:
            return
        payload = dict(record)
        payload.setdefault("ts", time.time())
        payload["level"] = level
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            if self._stream is None:
                assert self._path is not None
                self._stream = self._path.open("a", encoding="utf-8")
            self._stream.write(line)
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SnapshotWriter:
    """Periodic JSON-lines dumps of a registry's metric views.

    Each :meth:`write_snapshot` call appends one line holding the
    lifetime scalar snapshot and the windowed views (rates/quantiles)
    at that instant — an offline-analysable time series without a
    metrics database.  The caller owns the cadence (the service runs it
    from an asyncio task); writes are locked like :class:`AccessLog`.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        registry: MetricsRegistry,
        prefix: str = "",
    ):
        if isinstance(target, (str, Path)):
            self._path: Optional[Path] = Path(target)
            self._stream: Optional[IO[str]] = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = target
            self._owns_stream = False
        self.registry = registry
        self.prefix = prefix
        self._lock = threading.Lock()

    def write_snapshot(self, **extra: Any) -> dict:
        """Append one snapshot line; returns the written payload."""
        payload: dict[str, Any] = {
            "ts": time.time(),
            "metrics": self.registry.snapshot(self.prefix),
            "windows": self.registry.window_snapshot(self.prefix),
        }
        payload.update(extra)
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            if self._stream is None:
                assert self._path is not None
                self._stream = self._path.open("a", encoding="utf-8")
            self._stream.write(line)
            self._stream.flush()
        return payload

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None
