"""Observability: hierarchical tracing, metrics and sinks.

Profiling a query takes three lines::

    from repro.obs import InMemorySink, Tracer, format_span_tree

    sink = InMemorySink()
    ws.attach_tracer(Tracer([sink]))
    result = MaximumNFCDistance(ws).select()
    print(format_span_tree(sink.last))

Every workspace defaults to :data:`NOOP_TRACER`, whose spans are inert
singletons — instrumentation costs effectively nothing until a real
tracer is attached.  Process-lifetime totals (pager reads, buffer hit
rates, node fetches) accumulate in :data:`REGISTRY` regardless.
"""

from __future__ import annotations

from repro.obs.live import (
    AccessLog,
    RequestTrace,
    SlowQueryLog,
    SnapshotWriter,
    TraceBuffer,
    mint_trace_id,
)
from repro.obs.openmetrics import (
    labeled_name,
    lint_openmetrics,
    render_openmetrics,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    RollingWindow,
    WindowedCounter,
    WindowedHistogram,
)
from repro.obs.report import format_span_tree, merge_spans, phase_breakdown
from repro.obs.sinks import CallbackSink, InMemorySink, JsonLinesSink, read_jsonl
from repro.obs.trace import NOOP_SPAN, NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "AccessLog",
    "CallbackSink",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "REGISTRY",
    "RequestTrace",
    "RollingWindow",
    "SlowQueryLog",
    "SnapshotWriter",
    "Span",
    "TraceBuffer",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "format_span_tree",
    "labeled_name",
    "lint_openmetrics",
    "merge_spans",
    "mint_trace_id",
    "phase_breakdown",
    "read_jsonl",
    "render_openmetrics",
]
