"""Observability: hierarchical tracing, metrics and sinks.

Profiling a query takes three lines::

    from repro.obs import InMemorySink, Tracer, format_span_tree

    sink = InMemorySink()
    ws.attach_tracer(Tracer([sink]))
    result = MaximumNFCDistance(ws).select()
    print(format_span_tree(sink.last))

Every workspace defaults to :data:`NOOP_TRACER`, whose spans are inert
singletons — instrumentation costs effectively nothing until a real
tracer is attached.  Process-lifetime totals (pager reads, buffer hit
rates, node fetches) accumulate in :data:`REGISTRY` regardless.
"""

from __future__ import annotations

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.report import format_span_tree, merge_spans, phase_breakdown
from repro.obs.sinks import CallbackSink, InMemorySink, JsonLinesSink, read_jsonl
from repro.obs.trace import NOOP_SPAN, NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "CallbackSink",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "REGISTRY",
    "Span",
    "Tracer",
    "format_span_tree",
    "merge_spans",
    "phase_breakdown",
    "read_jsonl",
]
