"""Hierarchical tracing: spans with wall time, page I/O and counters.

A :class:`Tracer` maintains a stack of open :class:`Span` objects; the
innermost open span absorbs every event reported while it is active —
page reads/writes forwarded by :class:`~repro.storage.stats.IOStats`
and custom counters (node visits, pruned pairs, heap pops, ...).  When
a root span closes, the finished tree is handed to every attached sink
(see :mod:`repro.obs.sinks`).

Cost discipline: instrumented code never checks "is tracing on?".  It
calls ``tracer.span(...)`` / ``tracer.count(...)`` unconditionally, and
the *tracer object itself* is either a real :class:`Tracer` or the
module singleton :data:`NOOP_TRACER` whose methods do nothing and whose
``span`` returns a shared, stateless context manager.  The no-op path
is therefore one attribute lookup and one call — verified near-zero by
``benchmarks/test_obs_overhead.py``.

Tracers are deliberately not thread-safe: one tracer traces one query
at a time.  Concurrent execution (:mod:`repro.exec`) gives every task a
private tracer and grafts the finished task roots into the driver's
trace afterwards via :meth:`Tracer.adopt`, so no span stack is ever
shared between threads.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Optional


class Span:
    """One timed phase of a query, with I/O and counter attribution.

    ``reads``/``writes`` hold *self* page counts by structure name —
    pages charged while this span was innermost, excluding descendants.
    ``counters`` holds custom counts reported the same way.  ``attrs``
    holds free-form string tags (e.g. a service ``trace_id``) attached
    by hosting layers; empty attrs are omitted from the wire form.
    """

    __slots__ = (
        "name",
        "parent",
        "children",
        "reads",
        "writes",
        "counters",
        "attrs",
        "elapsed_s",
        "_started",
    )

    def __init__(self, name: str, parent: Optional["Span"] = None):
        self.name = name
        self.parent = parent
        self.children: list[Span] = []
        self.reads: dict[str, int] = {}
        self.writes: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self.attrs: dict[str, str] = {}
        self.elapsed_s = 0.0
        self._started = 0.0

    # ------------------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to this span's counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    @property
    def page_reads(self) -> int:
        """Self page reads (all structures), excluding child spans."""
        return sum(self.reads.values())

    @property
    def page_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total_reads(self) -> int:
        """Cumulative page reads of this span's whole subtree."""
        return self.page_reads + sum(c.total_reads for c in self.children)

    @property
    def total_writes(self) -> int:
        return self.page_writes + sum(c.total_writes for c in self.children)

    @property
    def self_s(self) -> float:
        """Wall time spent in this span excluding child spans."""
        return max(0.0, self.elapsed_s - sum(c.elapsed_s for c in self.children))

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable nested representation of the subtree."""
        data = {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "reads": dict(self.reads),
            "writes": dict(self.writes),
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }
        if self.attrs:  # omitted when empty: the common (untagged) case
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree produced by :meth:`to_dict`."""
        span = cls(str(data["name"]))
        span.elapsed_s = float(data.get("elapsed_s", 0.0))
        span.reads = {str(k): int(v) for k, v in data.get("reads", {}).items()}
        span.writes = {str(k): int(v) for k, v in data.get("writes", {}).items()}
        span.counters = {
            str(k): int(v) for k, v in data.get("counters", {}).items()
        }
        span.attrs = {str(k): str(v) for k, v in data.get("attrs", {}).items()}
        for child_data in data.get("children", []):
            child = cls.from_dict(child_data)
            child.parent = span
            span.children.append(child)
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.elapsed_s * 1000:.2f}ms, "
            f"reads={self.page_reads}, children={len(self.children)})"
        )


class _ActiveSpan:
    """Context manager pairing one :class:`Span` with its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self.span._started = time.perf_counter()
        return self.span

    def __exit__(self, *exc: object) -> None:
        self.span.elapsed_s = time.perf_counter() - self.span._started
        self._tracer._pop(self.span)


class Tracer:
    """Collects span trees and forwards finished roots to sinks."""

    __slots__ = ("_stack", "_sinks")

    #: Real tracers record; the no-op twin advertises False so code that
    #: genuinely must branch (e.g. report assembly) can check cheaply.
    enabled = True

    def __init__(self, sinks: Optional[list] = None):
        self._stack: list[Span] = []
        self._sinks = list(sinks) if sinks else []

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    @property
    def sinks(self) -> list:
        """The attached sinks (shared list; mutate via :meth:`add_sink`)."""
        return self._sinks

    # ------------------------------------------------------------------
    def adopt(self, span: Span) -> None:
        """Graft a *finished* span tree into the trace.

        The execution engine runs each task under a private tracer (so
        concurrent tasks never contend on one span stack) and, after the
        stable merge, adopts the finished task roots here in task order.
        With a span open, the tree becomes its child; with no span open,
        it is emitted to the sinks as a root of its own.
        """
        current = self.current
        span.parent = current
        if current is not None:
            current.children.append(span)
        else:
            for sink in self._sinks:
                sink.emit(span)

    # ------------------------------------------------------------------
    def span(self, name: str) -> _ActiveSpan:
        """A context manager opening span ``name`` under the current one."""
        return _ActiveSpan(self, Span(name, parent=self.current))

    def count(self, name: str, value: int = 1) -> None:
        """Add to counter ``name`` on the innermost open span (if any)."""
        if self._stack:
            span = self._stack[-1]
            span.counters[name] = span.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    # Event hooks (called by IOStats and index accessors)
    # ------------------------------------------------------------------
    def on_page_read(self, source: str, pages: int) -> None:
        if self._stack:
            reads = self._stack[-1].reads
            reads[source] = reads.get(source, 0) + pages

    def on_page_write(self, source: str, pages: int) -> None:
        if self._stack:
            writes = self._stack[-1].writes
            writes[source] = writes.get(source, 0) + pages

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        span.parent = self.current
        if span.parent is not None:
            span.parent.children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exception-driven unwinding: pop through to our span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if span.parent is None:
            for sink in self._sinks:
                sink.emit(span)


class _NoopSpan:
    """A stateless, reusable stand-in for :class:`Span`."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def count(self, name: str, value: int = 1) -> None:
        return None


#: Shared inert span; ``NOOP_TRACER.span(...)`` always returns this.
NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The do-nothing twin of :class:`Tracer` (see module docstring)."""

    __slots__ = ()

    enabled = False
    current = None

    def span(self, name: str) -> _NoopSpan:
        return NOOP_SPAN

    def count(self, name: str, value: int = 1) -> None:
        return None

    def on_page_read(self, source: str, pages: int) -> None:
        return None

    def on_page_write(self, source: str, pages: int) -> None:
        return None

    def adopt(self, span: Span) -> None:
        return None

    @property
    def sinks(self) -> list:
        return []

    def add_sink(self, sink) -> None:
        raise TypeError(
            "cannot attach a sink to the no-op tracer; create a real Tracer"
        )


#: Process-wide inert tracer: the default for every workspace.
NOOP_TRACER = NoopTracer()
