"""Process-wide named metrics: counters, gauges and histograms.

Where spans (:mod:`repro.obs.trace`) attribute cost to *one query's
phases*, the registry accumulates *process-lifetime* totals: how many
pages the pager served, how often the buffer pool hit, how many R-tree
nodes were fetched.  The storage layer reports into the default
:data:`REGISTRY` while remaining fully backward compatible with the
per-workspace :class:`~repro.storage.stats.IOStats` counters the
experiments are denominated in.

Metric handles are get-or-create and cached by the hot callers at
construction time, so the steady-state cost of reporting is one bound
method call and an integer add.

Two views of every long-running metric:

* **lifetime** — the scalar aggregates above, monotone over the whole
  process (what ``snapshot()`` reports, what the experiments gate on);
* **windowed** — :class:`WindowedCounter` / :class:`WindowedHistogram`
  additionally spread observations over a ring of fixed-duration
  buckets, so a live service can answer "what is the rate / p99 over
  the *last minute*" without resetting anything.  The windowed types
  subclass the plain ones, so lifetime snapshots stay bit-compatible
  and every existing ``counter()``/``histogram()`` caller keeps working
  when a metric is upgraded in place.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Iterable, Optional, Union


class Counter:
    """A monotonically increasing count.

    ``inc`` is locked: the read-modify-write of ``self.value`` is not
    atomic in CPython, so unlocked concurrent increments lose counts.
    Reads of ``value`` stay lock-free (a torn read of an int cannot
    occur; callers sample a point-in-time value).
    """

    __slots__ = ("name", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can go up and down (e.g. resident buffer pages)."""

    __slots__ = ("name", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Aggregated observations (count/sum/min/max + bounded samples).

    Memory is bounded at ``max_samples`` floats: below the cap every
    observation is retained and quantiles are *exact*; above it the
    retained set becomes a **uniform reservoir** over the whole stream
    (Vitter's Algorithm R), so quantile estimates stay representative
    of everything observed — not just the most recent burst — while the
    scalar aggregates always cover every observation exactly.  The
    reservoir's replacement draws come from a private name-seeded RNG,
    so a given observation stream retains the same sample set on every
    run.
    """

    __slots__ = (
        "name",
        "count",
        "sum",
        "min",
        "max",
        "_samples",
        "_max_samples",
        "_rng",
        "_lock",
    )

    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self._max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._rng = random.Random(name)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._reservoir_add(value)

    def _reservoir_add(self, value: float) -> None:
        """Retain ``value`` with reservoir semantics (lock already held)."""
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            # Algorithm R: the value replaces a random retained sample
            # with probability max_samples / count, keeping the
            # reservoir a uniform sample of the whole stream.
            slot = self._rng.randrange(self.count)
            if slot < self._max_samples:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile over the retained samples (exact below the
        sample cap, reservoir-estimated above it)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.min = float("inf")
            self.max = float("-inf")
            self._samples.clear()
            self._rng = random.Random(self.name)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"
        )


# ----------------------------------------------------------------------
# Rolling windows
# ----------------------------------------------------------------------
class _Bucket:
    """One fixed-duration slot of a rolling window ring."""

    __slots__ = ("epoch", "count", "sum", "samples")

    def __init__(self) -> None:
        self.epoch = -1
        self.count = 0
        self.sum = 0.0
        self.samples: list[float] = []

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.sum = 0.0
        self.samples.clear()


class RollingWindow:
    """A ring of ``buckets`` fixed-duration slots covering ``window_s``.

    A bucket is lazily recycled the first time its ring slot is touched
    in a newer epoch, so an idle window costs nothing; readers simply
    skip slots whose epoch has fallen out of the live range.  Not
    internally locked — the owning metric serialises access under its
    own lock.  ``clock`` is injectable for deterministic tests.
    """

    __slots__ = ("window_s", "bucket_s", "n", "_slots", "_clock", "max_bucket_samples")

    def __init__(
        self,
        window_s: float = 60.0,
        buckets: int = 12,
        clock: Callable[[], float] = time.monotonic,
        max_bucket_samples: int = 512,
    ):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.window_s = float(window_s)
        self.n = int(buckets)
        self.bucket_s = self.window_s / self.n
        self._slots = [_Bucket() for _ in range(self.n)]
        self._clock = clock
        self.max_bucket_samples = max_bucket_samples

    def _current(self) -> _Bucket:
        epoch = int(self._clock() / self.bucket_s)
        slot = self._slots[epoch % self.n]
        if slot.epoch != epoch:
            slot.reset(epoch)
        return slot

    def add(self, value: float, keep_sample: bool = False) -> None:
        bucket = self._current()
        bucket.count += 1
        bucket.sum += value
        if keep_sample:
            if len(bucket.samples) >= self.max_bucket_samples:
                # Within one short bucket, ring-overwrite is fine: the
                # bucket spans seconds, not the process lifetime.
                bucket.samples[bucket.count % self.max_bucket_samples] = value
            else:
                bucket.samples.append(value)

    def _live(self) -> list[_Bucket]:
        """Buckets still inside the window, oldest first."""
        newest = int(self._clock() / self.bucket_s)
        oldest = newest - self.n + 1
        return [
            slot
            for epoch in range(oldest, newest + 1)
            if (slot := self._slots[epoch % self.n]).epoch == epoch
        ]

    def totals(self) -> tuple[int, float]:
        """(count, sum) over the live window."""
        count, total = 0, 0.0
        for bucket in self._live():
            count += bucket.count
            total += bucket.sum
        return count, total

    def samples(self) -> list[float]:
        out: list[float] = []
        for bucket in self._live():
            out.extend(bucket.samples)
        return out


class WindowedCounter(Counter):
    """A counter that also answers "how many in the last window?"."""

    __slots__ = ("window",)

    def __init__(
        self,
        name: str,
        window_s: float = 60.0,
        buckets: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(name)
        self.window = RollingWindow(window_s, buckets, clock)

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount
            self.window.add(amount)

    def window_total(self) -> float:
        with self._lock:
            return self.window.totals()[1]

    def window_rate(self) -> float:
        """Events per second over the rolling window."""
        with self._lock:
            return self.window.totals()[1] / self.window.window_s


class WindowedHistogram(Histogram):
    """A histogram that also keeps per-bucket windowed observations."""

    __slots__ = ("window",)

    def __init__(
        self,
        name: str,
        max_samples: int = 4096,
        window_s: float = 60.0,
        buckets: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(name, max_samples=max_samples)
        self.window = RollingWindow(window_s, buckets, clock)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._reservoir_add(value)
            self.window.add(value, keep_sample=True)

    def window_snapshot(self) -> dict[str, float]:
        """count/rate/mean/p50/p99/max over the rolling window."""
        with self._lock:
            count, total = self.window.totals()
            samples = self.window.samples()
        out = {
            "count": float(count),
            "rate": count / self.window.window_s,
            "mean": total / count if count else 0.0,
            "p50": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
        if samples:
            ordered = sorted(samples)
            out["p50"] = ordered[min(len(ordered) - 1, int(0.50 * len(ordered)))]
            out["p99"] = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
            out["max"] = ordered[-1]
        return out


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat namespace of metrics, get-or-create by name."""

    __slots__ = ("_metrics", "_lock")

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls, factory=None) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = (factory or cls)(name)
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    # Windowed variants (get-or-create, upgrading a plain metric in
    # place: the lifetime value carries over, so snapshots stay
    # monotone and bit-compatible; stale handles to the replaced plain
    # metric keep working — they just no longer feed the window, which
    # only the upgrading caller reads)
    # ------------------------------------------------------------------
    def windowed_counter(
        self, name: str, window_s: float = 60.0, buckets: int = 12
    ) -> WindowedCounter:
        with self._lock:
            metric = self._metrics.get(name)
            if isinstance(metric, WindowedCounter):
                return metric
            if metric is not None and type(metric) is not Counter:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    "not counter"
                )
            windowed = WindowedCounter(name, window_s=window_s, buckets=buckets)
            if metric is not None:
                windowed.value = metric.value
            self._metrics[name] = windowed
            return windowed

    def windowed_histogram(
        self,
        name: str,
        window_s: float = 60.0,
        buckets: int = 12,
        max_samples: int = 4096,
    ) -> WindowedHistogram:
        with self._lock:
            metric = self._metrics.get(name)
            if isinstance(metric, WindowedHistogram):
                return metric
            if metric is not None and type(metric) is not Histogram:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    "not histogram"
                )
            windowed = WindowedHistogram(
                name, max_samples=max_samples, window_s=window_s, buckets=buckets
            )
            if metric is not None:
                windowed.count = metric.count
                windowed.sum = metric.sum
                windowed.min = metric.min
                windowed.max = metric.max
                windowed._samples = list(metric._samples)
            self._metrics[name] = windowed
            return windowed

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Scalar values of every metric whose name has ``prefix``.

        Histograms contribute ``<name>.count``/``.sum``/``.mean``.
        """
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            if not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.sum"] = metric.sum
                out[f"{name}.mean"] = metric.mean
            else:
                out[name] = float(metric.value)
        return out

    def window_snapshot(self, prefix: str = "") -> dict[str, Any]:
        """Windowed views of every *windowed* metric under ``prefix``.

        Counters contribute ``{"total": ..., "rate": ...}`` over their
        window; histograms their :meth:`WindowedHistogram.window_snapshot`
        dict.  Plain metrics are skipped — they have no window.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            if not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, WindowedHistogram):
                out[name] = metric.window_snapshot()
            elif isinstance(metric, WindowedCounter):
                out[name] = {
                    "total": metric.window_total(),
                    "rate": metric.window_rate(),
                }
        return out

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Zero the named metrics (all of them by default)."""
        targets = self._metrics.keys() if names is None else names
        for name in list(targets):
            metric = self._metrics.get(name)
            if metric is not None:
                metric.reset()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


#: The process-wide default registry the storage layer reports into.
REGISTRY = MetricsRegistry()
