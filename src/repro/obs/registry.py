"""Process-wide named metrics: counters, gauges and histograms.

Where spans (:mod:`repro.obs.trace`) attribute cost to *one query's
phases*, the registry accumulates *process-lifetime* totals: how many
pages the pager served, how often the buffer pool hit, how many R-tree
nodes were fetched.  The storage layer reports into the default
:data:`REGISTRY` while remaining fully backward compatible with the
per-workspace :class:`~repro.storage.stats.IOStats` counters the
experiments are denominated in.

Metric handles are get-or-create and cached by the hot callers at
construction time, so the steady-state cost of reporting is one bound
method call and an integer add.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Union


class Counter:
    """A monotonically increasing count.

    ``inc`` is locked: the read-modify-write of ``self.value`` is not
    atomic in CPython, so unlocked concurrent increments lose counts.
    Reads of ``value`` stay lock-free (a torn read of an int cannot
    occur; callers sample a point-in-time value).
    """

    __slots__ = ("name", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can go up and down (e.g. resident buffer pages)."""

    __slots__ = ("name", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Aggregated observations (count/sum/min/max + bounded samples).

    Keeps the most recent ``max_samples`` observations for quantile
    estimates; the scalar aggregates always cover every observation.
    """

    __slots__ = (
        "name",
        "count",
        "sum",
        "min",
        "max",
        "_samples",
        "_max_samples",
        "_lock",
    )

    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self._max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) >= self._max_samples:
                # Ring-buffer overwrite keeps the window recent and bounded.
                self._samples[self.count % self._max_samples] = value
            else:
                self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile over the retained sample window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.min = float("inf")
            self.max = float("-inf")
            self._samples.clear()

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat namespace of metrics, get-or-create by name."""

    __slots__ = ("_metrics", "_lock")

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name)
                self._metrics[name] = metric
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {factory.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Scalar values of every metric whose name has ``prefix``.

        Histograms contribute ``<name>.count``/``.sum``/``.mean``.
        """
        out: dict[str, float] = {}
        for name in sorted(self._metrics):
            if not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.sum"] = metric.sum
                out[f"{name}.mean"] = metric.mean
            else:
                out[name] = float(metric.value)
        return out

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Zero the named metrics (all of them by default)."""
        targets = self._metrics.keys() if names is None else names
        for name in list(targets):
            metric = self._metrics.get(name)
            if metric is not None:
                metric.reset()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


#: The process-wide default registry the storage layer reports into.
REGISTRY = MetricsRegistry()
