"""Observability smoke check (run in CI as ``python -m repro.obs.smoke``).

Boots a real server with live telemetry on an ephemeral port and
verifies the whole observability surface end to end:

1. **trace propagation** — a client-assigned ``trace_id`` is echoed on
   the response and recoverable from the server's trace buffer with
   admission / batch-assembly / engine-execution spans, the engine's
   span tree grafted in and tagged with the same id;
2. **exposition** — the ``metrics`` op and the plain-HTTP ``/metrics``
   listener both return a lint-clean OpenMetrics document carrying the
   labelled per-``(op, workspace)`` request families;
3. **structured logs** — the JSON access log holds exactly one
   standalone-parseable line per request, and the periodic snapshot
   sink wrote at least the final registry snapshot;
4. **parity** — with telemetry on, every method's answer (location,
   ``dr``, ``io_total``, per-structure reads) is byte-identical to a
   serial in-process ``select()`` on an identically-seeded workspace.

``--overhead`` instead measures the telemetry tax on cached selects
(telemetry on vs. off) and prints an advisory ratio; it never fails
the build — CI runs it ``continue-on-error`` in the bench gate.

Exits non-zero on the first violated invariant (default mode only).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.core import METHODS, Workspace, make_selector
from repro.core.dynamic import DynamicWorkspace
from repro.datasets.generators import make_instance
from repro.obs.openmetrics import lint_openmetrics
from repro.service import (
    ServiceClient,
    ServiceConfig,
    TelemetryConfig,
    serve_in_thread,
)

SMOKE_SEED = 11
SMOKE_SIZES = dict(n_c=800, n_f=40, n_p=60)


def _fingerprint(result) -> tuple:
    return (
        result.location.sid,
        result.location.x,
        result.location.y,
        result.dr,
        result.io_total,
        dict(result.io_reads),
    )


def _walk(span: dict):
    yield span
    for child in span.get("children", []):
        yield from _walk(child)


def check_trace_propagation(host: str, port: int) -> list[str]:
    failures = []
    with ServiceClient(host, port) as client:
        for method in sorted(METHODS):
            trace_id = f"smoke-{method.lower()}"
            answer = client.select(method, no_cache=True, trace_id=trace_id)
            if answer.trace_id != trace_id:
                failures.append(f"{method}: response did not echo the trace id")
                continue
            traces = client.trace(trace_id=trace_id)
            if not traces:
                failures.append(f"{method}: trace not recoverable from buffer")
                continue
            (trace,) = traces
            names = [span["name"] for span in trace["spans"]]
            for required in ("admission", "batch", "execute"):
                if required not in names:
                    failures.append(f"{method}: missing {required!r} span")
            execute = trace["spans"][-1]
            engine = execute.get("engine")
            if not engine:
                failures.append(f"{method}: no engine span tree grafted")
                continue
            if engine.get("attrs", {}).get("trace_id") != trace_id:
                failures.append(f"{method}: engine root not tagged")
            if not any(
                span.get("attrs", {}).get("trace_id") == trace_id
                for span in _walk(engine)
                if span is not engine
            ):
                failures.append(f"{method}: no tagged per-task span")
        # A cached repeat records a cache-hit span.
        client.select("MND")
        answer = client.select("MND", trace_id="smoke-cached")
        (trace,) = client.trace(trace_id="smoke-cached")
        cache = trace["spans"][0]
        if not (answer.cached and cache["name"] == "cache" and cache["hit"]):
            failures.append("cached repeat did not record a cache-hit span")
    return failures


def check_exposition(host: str, port: int, metrics_address) -> list[str]:
    failures = []
    with ServiceClient(host, port) as client:
        body = client.metrics()
    problems = lint_openmetrics(body)
    failures += [f"metrics op: {p}" for p in problems]
    for needle in (
        "# TYPE service_request_count counter",
        'op="select"',
        "service_admitted_total",
    ):
        if needle not in body:
            failures.append(f"metrics op: missing {needle!r}")
    if metrics_address is None:
        failures.append("HTTP /metrics listener did not start")
        return failures
    http_host, http_port = metrics_address
    with urllib.request.urlopen(
        f"http://{http_host}:{http_port}/metrics", timeout=10
    ) as response:
        scraped = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
    if "openmetrics-text" not in content_type:
        failures.append(f"HTTP scrape content type {content_type!r}")
    failures += [f"HTTP scrape: {p}" for p in lint_openmetrics(scraped)]
    return failures


def check_logs(access_log: Path, snapshots: Path, n_requests: int) -> list[str]:
    failures = []
    try:
        lines = access_log.read_text().strip().splitlines()
    except OSError:
        return [f"access log {access_log} was never written"]
    records = []
    for line in lines:
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            failures.append(f"access log holds a torn line: {line[:60]!r}")
    if len(records) < n_requests:
        failures.append(
            f"access log holds {len(records)} lines < {n_requests} requests"
        )
    for key in ("trace_id", "op", "outcome", "latency_s", "ts"):
        if records and key not in records[0]:
            failures.append(f"access log records lack {key!r}")
    if not snapshots.exists():
        failures.append("snapshot sink wrote nothing (final snapshot missing)")
    else:
        snap = json.loads(snapshots.read_text().strip().splitlines()[-1])
        if "metrics" not in snap or "windows" not in snap:
            failures.append("snapshot line lacks metrics/windows sections")
    return failures


def check_parity(host: str, port: int, expected: dict) -> list[str]:
    failures = []
    with ServiceClient(host, port) as client:
        for method in sorted(METHODS):
            answer = client.select(method, no_cache=True)
            if _fingerprint(answer.result) != expected[method]:
                failures.append(
                    f"{method}: answer differs from select() with telemetry on"
                )
    return failures


def measure_overhead(rounds: int = 400) -> None:
    """Advisory: cached-select latency with telemetry on vs. off."""

    def drive(telemetry: TelemetryConfig) -> float:
        ws = DynamicWorkspace(make_instance(rng=SMOKE_SEED, **SMOKE_SIZES))
        config = ServiceConfig(workers=2, batch_window_s=0.001, telemetry=telemetry)
        with serve_in_thread({"default": ws}, config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.select("MND")  # prime the cache
                for _ in range(20):  # warm the connection
                    client.select("MND")
                started = time.perf_counter()
                for _ in range(rounds):
                    client.select("MND")
                return (time.perf_counter() - started) / rounds

    off = drive(TelemetryConfig(enabled=False))
    on = drive(TelemetryConfig(enabled=True))
    ratio = on / off if off > 0 else float("inf")
    print(
        f"obs smoke overhead (advisory): cached select "
        f"off={off * 1e6:.1f}us on={on * 1e6:.1f}us ratio={ratio:.3f}"
    )
    if ratio > 1.10:
        print(
            f"WARNING: telemetry overhead {100 * (ratio - 1):.1f}% exceeds "
            "the 10% advisory budget on cached selects"
        )
    else:
        print(
            f"obs smoke overhead: within budget "
            f"({100 * (ratio - 1):+.1f}% vs. the 10% advisory cap)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--overhead",
        action="store_true",
        help="measure the telemetry tax on cached selects (advisory only)",
    )
    args = parser.parse_args(argv)
    if args.overhead:
        measure_overhead()
        return 0

    reference = Workspace(make_instance(rng=SMOKE_SEED, **SMOKE_SIZES))
    expected = {
        m: _fingerprint(make_selector(reference, m).select()) for m in METHODS
    }

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        access_log = Path(tmp) / "access.jsonl"
        snapshots = Path(tmp) / "snapshots.jsonl"
        ws = DynamicWorkspace(make_instance(rng=SMOKE_SEED, **SMOKE_SIZES))
        handle = serve_in_thread(
            {"default": ws},
            ServiceConfig(
                workers=2,
                batch_window_s=0.01,
                telemetry=TelemetryConfig(
                    access_log=access_log,
                    snapshot_path=snapshots,
                    snapshot_interval_s=3600.0,  # the final snapshot suffices
                    metrics_port=0,
                ),
            ),
        )
        print(f"obs smoke: serving on {handle.host}:{handle.port}")
        try:
            failures += check_trace_propagation(handle.host, handle.port)
            failures += check_exposition(
                handle.host, handle.port, handle.service.metrics_address
            )
            failures += check_parity(handle.host, handle.port, expected)
        finally:
            handle.stop()
        # Stop flushed the logs; every traced request above is select.
        failures += check_logs(access_log, snapshots, n_requests=len(METHODS))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"obs smoke: OK ({len(METHODS)} methods traced end-to-end, "
        "OpenMetrics lint-clean over op and HTTP, access log and "
        "snapshots verified, parity held with telemetry on)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
