"""Scalar kernel backend: loop-per-record twin of :mod:`repro.kernels.vector`.

This backend exists to keep the vectorized fast path honest.  Every
function decodes or evaluates one record at a time — ``struct.unpack``
per record, nested Python loops per (candidate, client) pair — the way
the pre-columnar code did, and must return **bit-identical** arrays to
the vector backend.  Property tests drive both backends over random
inputs and compare exactly; the ``kernels`` bench suite re-runs whole
queries under this backend and asserts the same ``p*``, dr vectors and
I/O counts before recording a speedup.

Two exactness rules make bitwise parity achievable:

* distances call the ``np.hypot`` ufunc element-wise, never
  ``math.hypot`` (the two differ in the last ulp for ~1 in 130 operand
  pairs);
* per-candidate reduction sums assemble the row of weighted clipped
  reductions first and then ``np.sum`` it, because numpy's pairwise
  summation over a contiguous row is bitwise equal to the vector
  backend's ``axis=1`` sum — a running ``+=`` accumulator would not be.

The struct formats are declared locally (matching the dtypes in
:mod:`repro.kernels.columnar` byte for byte) rather than imported from
:mod:`repro.storage.codecs`, keeping this package a dependency leaf;
the round-trip property tests pin the two layouts together.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.kernels.columnar import (
    BranchColumns,
    ClientColumns,
    RectColumns,
    SiteColumns,
)

_SITE = struct.Struct("<Idd")
_CLIENT = struct.Struct("<Iddd")
_BRANCH = struct.Struct("<ddddI")
_BRANCH_MND = struct.Struct("<ddddId")

# ---------------------------------------------------------------------------
# Record-at-a-time page decoding
# ---------------------------------------------------------------------------


def decode_site_columns(data: bytes, count: int, offset: int = 0) -> SiteColumns:
    """Decode ``count`` site records one ``struct.unpack`` at a time."""
    ids = np.empty(count, dtype=np.uint32)
    xs = np.empty(count, dtype=np.float64)
    ys = np.empty(count, dtype=np.float64)
    for i in range(count):
        sid, x, y = _SITE.unpack_from(data, offset + i * _SITE.size)
        ids[i] = sid
        xs[i] = x
        ys[i] = y
    return SiteColumns(ids, xs, ys)


def decode_client_columns(data: bytes, count: int, offset: int = 0) -> ClientColumns:
    """Decode ``count`` client records one ``struct.unpack`` at a time."""
    ids = np.empty(count, dtype=np.uint32)
    xs = np.empty(count, dtype=np.float64)
    ys = np.empty(count, dtype=np.float64)
    dnn = np.empty(count, dtype=np.float64)
    for i in range(count):
        cid, x, y, d = _CLIENT.unpack_from(data, offset + i * _CLIENT.size)
        ids[i] = cid
        xs[i] = x
        ys[i] = y
        dnn[i] = d
    return ClientColumns(ids, xs, ys, dnn, np.ones(count, dtype=np.float64))


def decode_branch_columns(
    data: bytes, count: int, with_mnd: bool = False, offset: int = 0
) -> BranchColumns:
    """Decode ``count`` branch entries one ``struct.unpack`` at a time."""
    fmt = _BRANCH_MND if with_mnd else _BRANCH
    xmin = np.empty(count, dtype=np.float64)
    ymin = np.empty(count, dtype=np.float64)
    xmax = np.empty(count, dtype=np.float64)
    ymax = np.empty(count, dtype=np.float64)
    children = np.empty(count, dtype=np.uint32)
    mnd = np.empty(count, dtype=np.float64) if with_mnd else None
    for i in range(count):
        fields = fmt.unpack_from(data, offset + i * fmt.size)
        xmin[i], ymin[i], xmax[i], ymax[i] = fields[:4]
        children[i] = fields[4]
        if with_mnd:
            mnd[i] = fields[5]
    return BranchColumns(RectColumns(xmin, ymin, xmax, ymax), children, mnd)


def circle_columns_from_rects(
    rects: RectColumns, ids: np.ndarray, weights: np.ndarray
) -> ClientColumns:
    """Reconstruct NFC circles from square MBRs, one rectangle at a time."""
    n = len(rects)
    xs = np.empty(n, dtype=np.float64)
    ys = np.empty(n, dtype=np.float64)
    radii = np.empty(n, dtype=np.float64)
    for i in range(n):
        xs[i] = (rects.xmin[i] + rects.xmax[i]) / 2.0
        ys[i] = (rects.ymin[i] + rects.ymax[i]) / 2.0
        radii[i] = (rects.xmax[i] - rects.xmin[i]) / 2.0
    return ClientColumns(ids, xs, ys, radii, weights)


# ---------------------------------------------------------------------------
# Pair-at-a-time geometry
# ---------------------------------------------------------------------------


def pairwise_distances(
    px: np.ndarray, py: np.ndarray, cx: np.ndarray, cy: np.ndarray
) -> np.ndarray:
    """``dist(p_i, c_j)`` per pair, one ``np.hypot`` call at a time."""
    out = np.empty((len(px), len(cx)), dtype=np.float64)
    for i in range(len(px)):
        x, y = px[i], py[i]
        for j in range(len(cx)):
            out[i, j] = np.hypot(x - cx[j], y - cy[j])
    return out


def accumulate_reductions(
    px: np.ndarray,
    py: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    dnn: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Per-candidate ``dr`` contributions via nested (p, c) loops."""
    n_p, n_c = len(px), len(cx)
    out = np.empty(n_p, dtype=np.float64)
    row = np.empty(n_c, dtype=np.float64)
    for i in range(n_p):
        x, y = px[i], py[i]
        for j in range(n_c):
            red = dnn[j] - np.hypot(x - cx[j], y - cy[j])
            row[j] = red * weights[j] if red > 0.0 else 0.0
        out[i] = np.sum(row)
    return out


def influence_matrix(
    px: np.ndarray,
    py: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    dnn: np.ndarray,
) -> np.ndarray:
    """Boolean ``IS(p)`` membership, one comparison per (p, c) pair."""
    out = np.empty((len(px), len(cx)), dtype=bool)
    for i in range(len(px)):
        x, y = px[i], py[i]
        for j in range(len(cx)):
            out[i, j] = np.hypot(x - cx[j], y - cy[j]) < dnn[j]
    return out


def circles_contain_point(
    cx: np.ndarray, cy: np.ndarray, radii: np.ndarray, x: float, y: float
) -> np.ndarray:
    """Strict containment of ``(x, y)``, one circle at a time."""
    out = np.empty(len(cx), dtype=bool)
    for j in range(len(cx)):
        out[j] = np.hypot(x - cx[j], y - cy[j]) < radii[j]
    return out


def _gap(lo: float, hi: float, qlo: float, qhi: float) -> float:
    """One axis of ``Rect.min_dist_rect``'s comparison ladder."""
    if qhi < lo:
        return lo - qhi
    if qlo > hi:
        return qlo - hi
    return 0.0


def _combine(dx: float, dy: float) -> float:
    if dx == 0.0:
        return dy
    if dy == 0.0:
        return dx
    return np.hypot(dx, dy)


def min_dist_points_rect(xs: np.ndarray, ys: np.ndarray, rect: Any) -> np.ndarray:
    """``minDist(p_i, rect)`` one point at a time."""
    out = np.empty(len(xs), dtype=np.float64)
    for i in range(len(xs)):
        dx = _gap(rect.xmin, rect.xmax, xs[i], xs[i])
        dy = _gap(rect.ymin, rect.ymax, ys[i], ys[i])
        out[i] = _combine(dx, dy)
    return out


def max_dist_points_rect(xs: np.ndarray, ys: np.ndarray, rect: Any) -> np.ndarray:
    """``maxDist(p_i, rect)`` one point at a time."""
    out = np.empty(len(xs), dtype=np.float64)
    for i in range(len(xs)):
        dx = max(abs(xs[i] - rect.xmin), abs(xs[i] - rect.xmax))
        dy = max(abs(ys[i] - rect.ymin), abs(ys[i] - rect.ymax))
        out[i] = np.hypot(dx, dy)
    return out


def min_dist_rects_rect(rects: RectColumns, rect: Any) -> np.ndarray:
    """``minDist(rects_i, rect)`` one rectangle at a time."""
    out = np.empty(len(rects), dtype=np.float64)
    for i in range(len(rects)):
        dx = _gap(rects.xmin[i], rects.xmax[i], rect.xmin, rect.xmax)
        dy = _gap(rects.ymin[i], rects.ymax[i], rect.ymin, rect.ymax)
        out[i] = _combine(dx, dy)
    return out


def pairwise_min_dist_rects(a: RectColumns, b: RectColumns) -> np.ndarray:
    """``minDist(a_i, b_j)`` one pair at a time."""
    out = np.empty((len(a), len(b)), dtype=np.float64)
    for i in range(len(a)):
        for j in range(len(b)):
            dx = _gap(a.xmin[i], a.xmax[i], b.xmin[j], b.xmax[j])
            dy = _gap(a.ymin[i], a.ymax[i], b.ymin[j], b.ymax[j])
            out[i, j] = _combine(dx, dy)
    return out


def rects_intersect_rect(rects: RectColumns, rect: Any) -> np.ndarray:
    """Closed-boundary intersection with ``rect``, one rectangle at a time."""
    out = np.empty(len(rects), dtype=bool)
    for i in range(len(rects)):
        out[i] = not (
            rects.xmin[i] > rect.xmax
            or rects.xmax[i] < rect.xmin
            or rects.ymin[i] > rect.ymax
            or rects.ymax[i] < rect.ymin
        )
    return out


def rect_intersect_matrix(a: RectColumns, b: RectColumns) -> np.ndarray:
    """Pairwise closed-boundary intersections, one pair at a time."""
    out = np.empty((len(a), len(b)), dtype=bool)
    for i in range(len(a)):
        for j in range(len(b)):
            out[i, j] = not (
                a.xmin[i] > b.xmax[j]
                or a.xmax[i] < b.xmin[j]
                or a.ymin[i] > b.ymax[j]
                or a.ymax[i] < b.ymin[j]
            )
    return out
