"""Structure-of-arrays buffers for records, entries and rectangles.

The storage layer's byte story is record-at-a-time (:mod:`repro.storage.codecs`
packs and unpacks one 20/28/36/44-byte record per call); the geometry
kernels want the *transpose*: one contiguous numpy array per field.
This module owns those column buffers and the numpy dtypes that mirror
the codec layouts byte for byte, so a whole page decodes with a single
``np.frombuffer`` instead of ``n`` ``struct.unpack`` calls:

========================  =========================  ==========
codec layout              dtype                      bytes/rec
========================  =========================  ==========
``SiteCodec``   (<Idd)    :data:`SITE_DTYPE`         20
``ClientCodec`` (<Iddd)   :data:`CLIENT_DTYPE`       28
branch entry    (<ddddI)  :data:`BRANCH_DTYPE`       36
MND branch      (<ddddId) :data:`BRANCH_MND_DTYPE`   44
========================  =========================  ==========

The dtypes are packed (no alignment padding) — ``tests/kernels`` holds
property tests proving every buffer round-trips bit-identically through
the record codecs.  Column buffers are what
:class:`~repro.storage.leafcache.DecodedLeafCache` stores: decode once,
evaluate many times, never touching per-record Python objects on the
hot path.

This module is deliberately dependency-free (numpy only): both kernel
backends and the storage codecs may import it without cycles.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

import numpy as np

#: ``SiteCodec`` layout: ``(id, x, y)`` — 20 bytes, packed little-endian.
SITE_DTYPE = np.dtype([("id", "<u4"), ("x", "<f8"), ("y", "<f8")])

#: ``ClientCodec`` layout: ``(id, x, y, dnn)`` — 28 bytes.
CLIENT_DTYPE = np.dtype(
    [("id", "<u4"), ("x", "<f8"), ("y", "<f8"), ("dnn", "<f8")]
)

#: Branch entry: MBR + child page id — 36 bytes.
BRANCH_DTYPE = np.dtype(
    [
        ("xmin", "<f8"),
        ("ymin", "<f8"),
        ("xmax", "<f8"),
        ("ymax", "<f8"),
        ("child", "<u4"),
    ]
)

#: MND-augmented branch entry: MBR + child + mnd — 44 bytes.
BRANCH_MND_DTYPE = np.dtype(
    [
        ("xmin", "<f8"),
        ("ymin", "<f8"),
        ("xmax", "<f8"),
        ("ymax", "<f8"),
        ("child", "<u4"),
        ("mnd", "<f8"),
    ]
)


def _f64(values: Iterable[float], count: int) -> np.ndarray:
    return np.fromiter(values, np.float64, count)


class SiteColumns:
    """Columns of site records: ``ids: uint32[n]``, ``xs/ys: float64[n]``."""

    __slots__ = ("ids", "xs", "ys")

    def __init__(self, ids: np.ndarray, xs: np.ndarray, ys: np.ndarray):
        self.ids = ids
        self.xs = xs
        self.ys = ys

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_sites(cls, sites: Sequence[Any]) -> "SiteColumns":
        """Columns of in-memory ``Site`` records (object-at-a-time source)."""
        n = len(sites)
        return cls(
            ids=np.fromiter((s.sid for s in sites), np.uint32, n),
            xs=_f64((s.x for s in sites), n),
            ys=_f64((s.y for s in sites), n),
        )

    def to_bytes(self) -> bytes:
        """The exact byte string ``SiteCodec`` would produce record by record."""
        out = np.empty(len(self), dtype=SITE_DTYPE)
        out["id"] = self.ids
        out["x"] = self.xs
        out["y"] = self.ys
        return out.tobytes()

    def __repr__(self) -> str:
        return f"SiteColumns(n={len(self)})"


class ClientColumns:
    """Columns of client records, plus the in-memory importance weights.

    ``dnn`` doubles as the circle radius when the columns describe NFCs
    reconstructed from square MBRs (the NFC method's leaf decode).  The
    on-disk layout carries no weight field; byte-decoded columns default
    to unit weights, exactly like ``ClientCodec.decode``.
    """

    __slots__ = ("ids", "xs", "ys", "dnn", "weights")

    def __init__(
        self,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        dnn: np.ndarray,
        weights: np.ndarray,
    ):
        self.ids = ids
        self.xs = xs
        self.ys = ys
        self.dnn = dnn
        self.weights = weights

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_clients(cls, clients: Sequence[Any]) -> "ClientColumns":
        """Columns of in-memory ``Client`` records."""
        n = len(clients)
        return cls(
            ids=np.fromiter((c.cid for c in clients), np.uint32, n),
            xs=_f64((c.x for c in clients), n),
            ys=_f64((c.y for c in clients), n),
            dnn=_f64((c.dnn for c in clients), n),
            weights=_f64((c.weight for c in clients), n),
        )

    def to_bytes(self) -> bytes:
        """The exact byte string ``ClientCodec`` would produce (no weight)."""
        out = np.empty(len(self), dtype=CLIENT_DTYPE)
        out["id"] = self.ids
        out["x"] = self.xs
        out["y"] = self.ys
        out["dnn"] = self.dnn
        return out.tobytes()

    def __repr__(self) -> str:
        return f"ClientColumns(n={len(self)})"


class RectColumns:
    """Columns of axis-aligned rectangles (``xmin/ymin/xmax/ymax``)."""

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(
        self,
        xmin: np.ndarray,
        ymin: np.ndarray,
        xmax: np.ndarray,
        ymax: np.ndarray,
    ):
        self.xmin = xmin
        self.ymin = ymin
        self.xmax = xmax
        self.ymax = ymax

    def __len__(self) -> int:
        return len(self.xmin)

    @classmethod
    def from_rects(cls, rects: Iterable[Any]) -> "RectColumns":
        """Columns of ``Rect`` values (any 4-tuple unpacks)."""
        arr = np.array([tuple(r) for r in rects], dtype=np.float64)
        arr = arr.reshape(-1, 4)
        return cls(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])

    def __repr__(self) -> str:
        return f"RectColumns(n={len(self)})"


class BranchColumns:
    """Columns of branch entries: MBRs, child page ids, optional MNDs."""

    __slots__ = ("rects", "children", "mnd")

    def __init__(
        self,
        rects: RectColumns,
        children: np.ndarray,
        mnd: Optional[np.ndarray] = None,
    ):
        self.rects = rects
        self.children = children
        self.mnd = mnd

    def __len__(self) -> int:
        return len(self.children)

    @classmethod
    def from_entries(cls, entries: Sequence[Any]) -> "BranchColumns":
        """Columns of in-memory ``BranchEntry`` objects."""
        n = len(entries)
        rects = RectColumns.from_rects(e.mbr for e in entries)
        children = np.fromiter((e.child_id for e in entries), np.uint32, n)
        if n and entries[0].mnd is not None:
            mnd = _f64((e.mnd for e in entries), n)
        else:
            mnd = None
        return cls(rects, children, mnd)

    def to_bytes(self) -> bytes:
        """The exact byte string ``encode_branch`` would produce per entry."""
        dtype = BRANCH_DTYPE if self.mnd is None else BRANCH_MND_DTYPE
        out = np.empty(len(self), dtype=dtype)
        out["xmin"] = self.rects.xmin
        out["ymin"] = self.rects.ymin
        out["xmax"] = self.rects.xmax
        out["ymax"] = self.rects.ymax
        out["child"] = self.children
        if self.mnd is not None:
            out["mnd"] = self.mnd
        return out.tobytes()

    def __repr__(self) -> str:
        return f"BranchColumns(n={len(self)}, mnd={self.mnd is not None})"
