"""Columnar geometry kernels with switchable backends (`repro.kernels`).

The paper measures queries in page reads, but wall-clock time in this
reproduction used to be dominated by per-record Python work: one
``struct.unpack`` per leaf record, one ``math.hypot`` per (candidate,
client) pair.  This package is the columnar fast path that removes
both costs without moving a single page read:

* :mod:`repro.kernels.columnar` — structure-of-arrays buffers
  (``ids: uint32[n]``, ``xs/ys: float64[n]``) and the numpy dtypes that
  mirror the storage codecs byte for byte;
* :mod:`repro.kernels.vector` — the default backend: one
  ``np.frombuffer`` per page, batch ``dist``/``minDist``/``maxDist``/
  containment/``IS(p)``/``dr`` kernels over whole pages at once;
* :mod:`repro.kernels.scalar` — the loop-per-record twin kept for
  cross-checking; property tests and the ``kernels`` bench suite
  assert **bit-identical** outputs against the vector backend.

Every public kernel dispatches through the active backend::

    from repro import kernels

    acc = kernels.accumulate_reductions(px, py, cx, cy, dnn, w)
    with kernels.use_backend("scalar"):
        ref = kernels.accumulate_reductions(px, py, cx, cy, dnn, w)
    assert (acc == ref).all()  # bitwise, not approximately

The exactness contract: switching backends never changes query
results, dr vectors, traversal order, or I/O accounting — only how
fast the arithmetic runs.  ``select()`` under either backend charges
the same pages in the same order.  This package imports nothing from
the rest of :mod:`repro` (numpy only), so storage, r-tree and method
layers can all build on it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.kernels import scalar, vector
from repro.kernels.columnar import (
    BRANCH_DTYPE,
    BRANCH_MND_DTYPE,
    CLIENT_DTYPE,
    SITE_DTYPE,
    BranchColumns,
    ClientColumns,
    RectColumns,
    SiteColumns,
)

_BACKENDS = {"vector": vector, "scalar": scalar}
_active = "vector"


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def active_backend() -> str:
    """The name of the backend kernels currently dispatch to."""
    return _active


def set_backend(name: str) -> None:
    """Select the dispatch backend (``"vector"`` or ``"scalar"``).

    The flag is process-global and intended for whole-run selection
    (benchmark cross-checks, property tests); it is not synchronized
    against concurrent query threads.
    """
    global _active
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{', '.join(available_backends())}"
        )
    _active = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily select a backend, restoring the previous one on exit."""
    previous = _active
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _impl():
    return _BACKENDS[_active]


# ---------------------------------------------------------------------------
# Dispatched kernels — signatures documented in repro.kernels.vector
# ---------------------------------------------------------------------------


def decode_site_columns(data, count, offset=0):
    """Decode a leaf page of packed site records into columns."""
    return _impl().decode_site_columns(data, count, offset=offset)


def decode_client_columns(data, count, offset=0):
    """Decode a leaf page of packed client records into columns."""
    return _impl().decode_client_columns(data, count, offset=offset)


def decode_branch_columns(data, count, with_mnd=False, offset=0):
    """Decode a branch page of packed entries into columns."""
    return _impl().decode_branch_columns(data, count, with_mnd=with_mnd, offset=offset)


def circle_columns_from_rects(rects, ids, weights):
    """Reconstruct NFC circles (center, radius) from their square MBRs."""
    return _impl().circle_columns_from_rects(rects, ids, weights)


def pairwise_distances(px, py, cx, cy):
    """``dist(p_i, c_j)`` for every pair."""
    return _impl().pairwise_distances(px, py, cx, cy)


def accumulate_reductions(px, py, cx, cy, dnn, weights):
    """Per-candidate distance-reduction sums for one batch of clients."""
    return _impl().accumulate_reductions(px, py, cx, cy, dnn, weights)


def influence_matrix(px, py, cx, cy, dnn):
    """Boolean ``IS(p)`` membership per (candidate, client) pair."""
    return _impl().influence_matrix(px, py, cx, cy, dnn)


def circles_contain_point(cx, cy, radii, x, y):
    """Which circles strictly contain the point ``(x, y)``."""
    return _impl().circles_contain_point(cx, cy, radii, x, y)


def min_dist_points_rect(xs, ys, rect):
    """``minDist(p_i, rect)`` for a batch of points."""
    return _impl().min_dist_points_rect(xs, ys, rect)


def max_dist_points_rect(xs, ys, rect):
    """``maxDist(p_i, rect)`` for a batch of points."""
    return _impl().max_dist_points_rect(xs, ys, rect)


def min_dist_rects_rect(rects, rect):
    """``minDist(rects_i, rect)`` for a batch of rectangles."""
    return _impl().min_dist_rects_rect(rects, rect)


def pairwise_min_dist_rects(a, b):
    """``minDist(a_i, b_j)`` for every pair of rectangles."""
    return _impl().pairwise_min_dist_rects(a, b)


def rects_intersect_rect(rects, rect):
    """Which rectangles intersect ``rect``."""
    return _impl().rects_intersect_rect(rects, rect)


def rect_intersect_matrix(a, b):
    """Pairwise rectangle-intersection tests."""
    return _impl().rect_intersect_matrix(a, b)


__all__ = [
    "BRANCH_DTYPE",
    "BRANCH_MND_DTYPE",
    "CLIENT_DTYPE",
    "SITE_DTYPE",
    "BranchColumns",
    "ClientColumns",
    "RectColumns",
    "SiteColumns",
    "accumulate_reductions",
    "active_backend",
    "available_backends",
    "circle_columns_from_rects",
    "circles_contain_point",
    "decode_branch_columns",
    "decode_client_columns",
    "decode_site_columns",
    "influence_matrix",
    "max_dist_points_rect",
    "min_dist_points_rect",
    "min_dist_rects_rect",
    "pairwise_distances",
    "pairwise_min_dist_rects",
    "rect_intersect_matrix",
    "rects_intersect_rect",
    "set_backend",
    "use_backend",
]
