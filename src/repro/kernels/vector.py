"""Vectorized kernel backend: bulk page decoding + batch geometry.

This is the default backend behind the :mod:`repro.kernels` dispatch
layer.  Every function here has a loop-per-record twin in
:mod:`repro.kernels.scalar` that must return **bit-identical** arrays
(enforced by hypothesis property tests and at bench-record time), so
the formulas below are chosen for exactness, not just speed:

* page decoding is a single ``np.frombuffer`` view over the packed
  record layout (:data:`~repro.kernels.columnar.SITE_DTYPE` and
  friends), copied field-wise into contiguous columns — the same
  IEEE-754 bytes ``struct.unpack`` would produce, without the ``n``
  tuple allocations;
* distances use ``np.hypot`` in both backends.  ``math.hypot`` is *not*
  interchangeable — it disagrees with ``np.hypot`` in the last ulp for
  roughly 1 in 130 random operand pairs — so the scalar backend calls
  the numpy ufunc element-wise rather than the stdlib function;
* rectangle ``minDist`` replicates the exact branch structure of
  :meth:`repro.geometry.rect.Rect.min_dist_rect` (return the other
  axis' gap when one axis overlaps; ``hypot`` only when both gaps are
  positive), so corner-vs-edge cases keep the same float results;
* reduction accumulation mirrors the SS scan formula
  (``clip(dnn - d, 0) * w`` summed along axis 1): for a C-contiguous
  row the axis-sum is bitwise equal to summing the row on its own,
  which is what the scalar twin does.

None of these kernels touch I/O accounting: they consume arrays that
the callers obtained through the usual charged ``read_*`` paths.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels.columnar import (
    BRANCH_DTYPE,
    BRANCH_MND_DTYPE,
    CLIENT_DTYPE,
    SITE_DTYPE,
    BranchColumns,
    ClientColumns,
    RectColumns,
    SiteColumns,
)

# ---------------------------------------------------------------------------
# Bulk page decoding
# ---------------------------------------------------------------------------


def decode_site_columns(data: bytes, count: int, offset: int = 0) -> SiteColumns:
    """Decode ``count`` packed ``<Idd`` site records in one ``frombuffer``."""
    raw = np.frombuffer(data, dtype=SITE_DTYPE, count=count, offset=offset)
    return SiteColumns(
        ids=np.ascontiguousarray(raw["id"]),
        xs=np.ascontiguousarray(raw["x"]),
        ys=np.ascontiguousarray(raw["y"]),
    )


def decode_client_columns(data: bytes, count: int, offset: int = 0) -> ClientColumns:
    """Decode ``count`` packed ``<Iddd`` client records in one ``frombuffer``.

    The on-page layout carries no weight; like ``ClientCodec.decode``,
    decoded clients get unit weights.
    """
    raw = np.frombuffer(data, dtype=CLIENT_DTYPE, count=count, offset=offset)
    return ClientColumns(
        ids=np.ascontiguousarray(raw["id"]),
        xs=np.ascontiguousarray(raw["x"]),
        ys=np.ascontiguousarray(raw["y"]),
        dnn=np.ascontiguousarray(raw["dnn"]),
        weights=np.ones(count, dtype=np.float64),
    )


def decode_branch_columns(
    data: bytes, count: int, with_mnd: bool = False, offset: int = 0
) -> BranchColumns:
    """Decode ``count`` packed branch entries (``<ddddI`` or ``<ddddId``)."""
    dtype = BRANCH_MND_DTYPE if with_mnd else BRANCH_DTYPE
    raw = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
    rects = RectColumns(
        xmin=np.ascontiguousarray(raw["xmin"]),
        ymin=np.ascontiguousarray(raw["ymin"]),
        xmax=np.ascontiguousarray(raw["xmax"]),
        ymax=np.ascontiguousarray(raw["ymax"]),
    )
    mnd = np.ascontiguousarray(raw["mnd"]) if with_mnd else None
    return BranchColumns(rects, np.ascontiguousarray(raw["child"]), mnd)


def circle_columns_from_rects(
    rects: RectColumns, ids: np.ndarray, weights: np.ndarray
) -> ClientColumns:
    """Reconstruct NFC circles (center + radius) from their square MBRs.

    The NFC tree stores each circle as its bounding square; center and
    radius fall out of the square's x-extent exactly as in the
    object-at-a-time reconstruction: ``cx = (xmin + xmax) / 2``,
    ``r = (xmax - xmin) / 2``.  The radius lands in the ``dnn`` column
    so the circles feed :func:`accumulate_reductions` unchanged.
    """
    return ClientColumns(
        ids=ids,
        xs=(rects.xmin + rects.xmax) / 2.0,
        ys=(rects.ymin + rects.ymax) / 2.0,
        dnn=(rects.xmax - rects.xmin) / 2.0,
        weights=weights,
    )


# ---------------------------------------------------------------------------
# Batch geometry
# ---------------------------------------------------------------------------


def pairwise_distances(
    px: np.ndarray, py: np.ndarray, cx: np.ndarray, cy: np.ndarray
) -> np.ndarray:
    """``dist(p_i, c_j)`` for every pair — shape ``(len(px), len(cx))``."""
    return np.hypot(px[:, None] - cx[None, :], py[:, None] - cy[None, :])


def accumulate_reductions(
    px: np.ndarray,
    py: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    dnn: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Per-candidate ``dr`` contribution of a batch of clients.

    Returns ``sum_j max(0, dnn_j - dist(p_i, c_j)) * w_j`` for each
    candidate ``p_i`` — the paper's distance-reduction sum restricted
    to one (page of candidates × page of clients) tile.
    """
    d = pairwise_distances(px, py, cx, cy)
    return (np.clip(dnn[None, :] - d, 0.0, None) * weights[None, :]).sum(axis=1)


def influence_matrix(
    px: np.ndarray,
    py: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    dnn: np.ndarray,
) -> np.ndarray:
    """Boolean ``IS(p)`` membership: ``dist(p_i, c_j) < dnn_j`` per pair."""
    return pairwise_distances(px, py, cx, cy) < dnn[None, :]


def circles_contain_point(
    cx: np.ndarray, cy: np.ndarray, radii: np.ndarray, x: float, y: float
) -> np.ndarray:
    """Which circles strictly contain the point ``(x, y)``."""
    return np.hypot(x - cx, y - cy) < radii


def _axis_gaps(
    lo: np.ndarray | float, hi: np.ndarray | float, qlo: Any, qhi: Any
) -> np.ndarray:
    """Per-axis separation between intervals ``[lo, hi]`` and ``[qlo, qhi]``.

    Zero when the intervals overlap, matching the comparison structure
    of ``Rect.min_dist_rect`` so the selected subtraction (and thus the
    float result) is identical.
    """
    return np.where(
        np.less(qhi, lo),
        np.subtract(lo, qhi),
        np.where(np.greater(qlo, hi), np.subtract(qlo, hi), 0.0),
    )


def _combine_min_dist(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """``Rect.min_dist_*``'s final branch: other-axis gap, else hypot."""
    return np.where(dx == 0.0, dy, np.where(dy == 0.0, dx, np.hypot(dx, dy)))


def min_dist_points_rect(xs: np.ndarray, ys: np.ndarray, rect: Any) -> np.ndarray:
    """``minDist(p_i, rect)`` for a batch of points against one rectangle."""
    dx = _axis_gaps(rect.xmin, rect.xmax, xs, xs)
    dy = _axis_gaps(rect.ymin, rect.ymax, ys, ys)
    return _combine_min_dist(dx, dy)


def max_dist_points_rect(xs: np.ndarray, ys: np.ndarray, rect: Any) -> np.ndarray:
    """``maxDist(p_i, rect)`` for a batch of points against one rectangle."""
    dx = np.maximum(np.abs(xs - rect.xmin), np.abs(xs - rect.xmax))
    dy = np.maximum(np.abs(ys - rect.ymin), np.abs(ys - rect.ymax))
    return np.hypot(dx, dy)


def min_dist_rects_rect(rects: RectColumns, rect: Any) -> np.ndarray:
    """``minDist(rects_i, rect)`` for a batch of rectangles against one."""
    dx = _axis_gaps(rects.xmin, rects.xmax, rect.xmin, rect.xmax)
    dy = _axis_gaps(rects.ymin, rects.ymax, rect.ymin, rect.ymax)
    return _combine_min_dist(dx, dy)


def pairwise_min_dist_rects(a: RectColumns, b: RectColumns) -> np.ndarray:
    """``minDist(a_i, b_j)`` for every pair — shape ``(len(a), len(b))``."""
    dx = _axis_gaps(
        a.xmin[:, None], a.xmax[:, None], b.xmin[None, :], b.xmax[None, :]
    )
    dy = _axis_gaps(
        a.ymin[:, None], a.ymax[:, None], b.ymin[None, :], b.ymax[None, :]
    )
    return _combine_min_dist(dx, dy)


def rects_intersect_rect(rects: RectColumns, rect: Any) -> np.ndarray:
    """Which rectangles intersect ``rect`` (closed-boundary semantics)."""
    return ~(
        (rects.xmin > rect.xmax)
        | (rects.xmax < rect.xmin)
        | (rects.ymin > rect.ymax)
        | (rects.ymax < rect.ymin)
    )


def rect_intersect_matrix(a: RectColumns, b: RectColumns) -> np.ndarray:
    """Pairwise intersection tests — shape ``(len(a), len(b))``."""
    return ~(
        (a.xmin[:, None] > b.xmax[None, :])
        | (a.xmax[:, None] < b.xmin[None, :])
        | (a.ymin[:, None] > b.ymax[None, :])
        | (a.ymax[:, None] < b.ymin[None, :])
    )
