"""Nearest-facility-distance (``dnn``) precomputation and maintenance.

Every method in the paper — including the sequential-scan baseline —
relies on ``dnn(c, F)``, each client's distance to its nearest existing
facility, being precomputed and stored with the client record
(Section III-B).  This package provides three ways to compute the NN
join and one to maintain it under facility updates:

* :func:`~repro.knnjoin.nested_loop.nn_join_nested_loop` — the exact
  O(n_c * n_f) baseline the paper describes first.
* :func:`~repro.knnjoin.grid.nn_join_grid` — a uniform-grid join with
  expanding ring search; the default for experiment setup.
* :func:`~repro.knnjoin.rtree_join.nn_join_rtree` — per-client best-first
  NN on an R-tree over the facilities.
* :class:`~repro.knnjoin.incremental.DnnMaintainer` — incremental
  maintenance of the join result when facilities are inserted or removed
  (the paper: "KNN-join algorithms can do this more efficiently and
  maintain the results dynamically").
"""

from repro.knnjoin.grid import FacilityGrid, nn_join_grid
from repro.knnjoin.incremental import DnnMaintainer
from repro.knnjoin.nested_loop import nn_join_nested_loop
from repro.knnjoin.rtree_join import nn_join_rtree

__all__ = [
    "DnnMaintainer",
    "FacilityGrid",
    "nn_join_grid",
    "nn_join_nested_loop",
    "nn_join_rtree",
]
