"""R-tree based NN join.

Builds (or reuses) an R-tree over the facilities and answers each
client's NN with the best-first algorithm.  Slower than the grid join in
this pure-Python setting but exercises the same index the QVC method
queries at run time, and serves as an independent oracle in tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.rtree.nn import nearest_neighbor
from repro.rtree.rtree import RTree
from repro.storage.stats import IOStats


def nn_join_rtree(
    clients: Sequence[Point],
    facilities: Sequence[Point],
    tree: Optional[RTree] = None,
) -> list[float]:
    """``dnn(c, F)`` for every client via best-first NN on an R-tree.

    When ``tree`` is given it must index exactly the facility points;
    otherwise a throwaway tree (with its own I/O accounting) is built.
    """
    if tree is None:
        if not len(facilities):
            raise ValueError("nn join requires at least one facility")
        tree = RTree("knnjoin.facilities", IOStats())
        bulk_load(tree, [(Rect.from_point(Point(*f)), Point(*f)) for f in facilities])
    out: list[float] = []
    for c in clients:
        result = nearest_neighbor(tree, Point(*c))
        if result is None:
            raise ValueError("nn join requires at least one facility")
        out.append(result[0])
    return out
