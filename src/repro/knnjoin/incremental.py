"""Incremental maintenance of the NN-join result.

The paper assumes ``dnn(c, F)`` is "incrementally maintained and
therefore the cost is amortized" (Section VII-A).  ``DnnMaintainer``
implements that contract:

* inserting a facility can only *shrink* NFDs — one vectorised pass
  updates exactly the clients whose NFC contains the new facility;
* removing a facility invalidates only the clients it served — those are
  detected by distance equality and recomputed against the remaining
  facilities via the grid join;
* clients arrive and depart too (``add_client``/``remove_client``): an
  arrival costs one grid NN lookup, a departure one row deletion.

**Bit-exactness.** Every distance here uses the grid join's formula —
``sqrt(dx*dx + dy*dy)`` over IEEE doubles (see
:meth:`FacilityGrid.nearest`) — *not* ``hypot``, which rounds
differently in the last ulp.  Subtraction, squaring, addition and
``sqrt`` are all correctly rounded, and ``sqrt`` is monotone, so the
minimum over facilities commutes with the square root: the maintained
``dnn`` vector is bit-identical to a from-scratch
:func:`~repro.knnjoin.grid.nn_join_grid` at every step.  The churn
engine's rebuild-parity guarantee (``repro.churn``) rests on exactly
this property.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.knnjoin.grid import FacilityGrid

_EPS = 1e-9


def _distances(cx: np.ndarray, cy: np.ndarray, f: Point) -> np.ndarray:
    """Vectorised client-to-``f`` distances, grid-formula-exact."""
    dx = cx - f[0]
    dy = cy - f[1]
    return np.sqrt(dx * dx + dy * dy)


class DnnMaintainer:
    """Owns the ``dnn(c, F)`` vector and keeps it exact under updates."""

    def __init__(
        self,
        clients: Sequence[Point],
        facilities: Iterable[Point],
        dnn: Optional[Sequence[float]] = None,
    ):
        self._cx = np.fromiter((c[0] for c in clients), dtype=np.float64)
        self._cy = np.fromiter((c[1] for c in clients), dtype=np.float64)
        self._facilities: list[Point] = [Point(*f) for f in facilities]
        if not self._facilities:
            raise ValueError("DnnMaintainer requires at least one facility")
        self._grid = FacilityGrid(self._facilities)
        if dnn is not None:
            if len(dnn) != len(self._cx):
                raise ValueError("dnn length does not match the client count")
            self._dnn = np.asarray(dnn, dtype=np.float64).copy()
        else:
            self._dnn = np.fromiter(
                (
                    self._grid.nearest_distance(Point(x, y))
                    for x, y in zip(self._cx, self._cy)
                ),
                dtype=np.float64,
                count=len(self._cx),
            )

    # ------------------------------------------------------------------
    @property
    def facilities(self) -> tuple[Point, ...]:
        return tuple(self._facilities)

    @property
    def distances(self) -> np.ndarray:
        """The current ``dnn`` vector (read-only view)."""
        view = self._dnn.view()
        view.flags.writeable = False
        return view

    def dnn_of(self, client_index: int) -> float:
        return float(self._dnn[client_index])

    def __len__(self) -> int:
        return len(self._dnn)

    # ------------------------------------------------------------------
    # Client updates
    # ------------------------------------------------------------------
    def add_client(self, p: Point) -> float:
        """A client arrives: one grid NN lookup, one appended row.
        Returns the new client's ``dnn``."""
        p = Point(*p)
        dnn = self._grid.nearest_distance(p)
        self._cx = np.append(self._cx, p[0])
        self._cy = np.append(self._cy, p[1])
        self._dnn = np.append(self._dnn, dnn)
        return dnn

    def remove_client(self, index: int) -> None:
        """A client departs: drop its row (positional index)."""
        self._cx = np.delete(self._cx, index)
        self._cy = np.delete(self._cy, index)
        self._dnn = np.delete(self._dnn, index)

    # ------------------------------------------------------------------
    # Facility updates
    # ------------------------------------------------------------------
    def open_facility(
        self, f: Point
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Insert a facility; returns ``(indices, old_dnn, new_dnn)`` for
        exactly the clients whose NFD shrank (strict ``<`` — a facility
        on the NFC boundary changes nothing, matching the paper's strict
        containment)."""
        f = Point(*f)
        self._facilities.append(f)
        self._grid = FacilityGrid(self._facilities)
        dist = _distances(self._cx, self._cy, f)
        affected = np.flatnonzero(dist < self._dnn)
        old = self._dnn[affected].copy()
        new = dist[affected]
        self._dnn[affected] = new
        return affected, old, new

    def close_facility(
        self, f: Point
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove one occurrence of a facility; returns
        ``(indices, old_dnn, new_dnn)`` for the clients it served.

        Raises if it is the last facility or not present.  Served
        clients are detected by exact distance equality (the maintained
        vector uses the same formula, so the realising facility matches
        bit-for-bit) widened by ``_EPS`` for externally-seeded vectors;
        a co-located duplicate facility keeps serving them, which the
        grid recomputation handles naturally.
        """
        f = Point(*f)
        try:
            self._facilities.remove(f)
        except ValueError:
            raise ValueError(f"facility {f} is not in the set") from None
        if not self._facilities:
            self._facilities.append(f)
            raise ValueError("cannot remove the last facility")
        self._grid = FacilityGrid(self._facilities)
        dist = _distances(self._cx, self._cy, f)
        stale = np.flatnonzero(np.abs(dist - self._dnn) <= _EPS)
        old = self._dnn[stale].copy()
        for idx in stale:
            self._dnn[idx] = self._grid.nearest_distance(
                Point(float(self._cx[idx]), float(self._cy[idx]))
            )
        return stale, old, self._dnn[stale].copy()

    def add_facility(self, f: Point) -> int:
        """Insert a facility; returns how many clients' NFD shrank."""
        affected, __, __ = self.open_facility(f)
        return int(len(affected))

    def remove_facility(self, f: Point) -> int:
        """Remove one occurrence of a facility; returns how many clients
        had to be recomputed.  Raises if it is the last facility or not
        present."""
        stale, __, __ = self.close_facility(f)
        return int(len(stale))

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Recompute everything from scratch and compare (for tests)."""
        grid = FacilityGrid(self._facilities)
        for i in range(len(self._dnn)):
            expect = grid.nearest_distance(
                Point(float(self._cx[i]), float(self._cy[i]))
            )
            if not math.isclose(expect, float(self._dnn[i]), abs_tol=1e-9):
                return False
        return True
