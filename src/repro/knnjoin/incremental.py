"""Incremental maintenance of the NN-join result.

The paper assumes ``dnn(c, F)`` is "incrementally maintained and
therefore the cost is amortized" (Section VII-A).  ``DnnMaintainer``
implements that contract:

* inserting a facility can only *shrink* NFDs — one vectorised pass
  updates exactly the clients whose NFC contains the new facility;
* removing a facility invalidates only the clients it served — those are
  detected by distance equality and recomputed against the remaining
  facilities via the grid join.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.knnjoin.grid import FacilityGrid

_EPS = 1e-9


class DnnMaintainer:
    """Owns the ``dnn(c, F)`` vector and keeps it exact under updates."""

    def __init__(self, clients: Sequence[Point], facilities: Iterable[Point]):
        self._cx = np.fromiter((c[0] for c in clients), dtype=np.float64)
        self._cy = np.fromiter((c[1] for c in clients), dtype=np.float64)
        self._facilities: list[Point] = [Point(*f) for f in facilities]
        if not self._facilities:
            raise ValueError("DnnMaintainer requires at least one facility")
        grid = FacilityGrid(self._facilities)
        self._dnn = np.fromiter(
            (grid.nearest_distance(Point(x, y)) for x, y in zip(self._cx, self._cy)),
            dtype=np.float64,
            count=len(self._cx),
        )

    # ------------------------------------------------------------------
    @property
    def facilities(self) -> tuple[Point, ...]:
        return tuple(self._facilities)

    @property
    def distances(self) -> np.ndarray:
        """The current ``dnn`` vector (read-only view)."""
        view = self._dnn.view()
        view.flags.writeable = False
        return view

    def dnn_of(self, client_index: int) -> float:
        return float(self._dnn[client_index])

    def __len__(self) -> int:
        return len(self._dnn)

    # ------------------------------------------------------------------
    def add_facility(self, f: Point) -> int:
        """Insert a facility; returns how many clients' NFD shrank."""
        f = Point(*f)
        self._facilities.append(f)
        dist = np.hypot(self._cx - f[0], self._cy - f[1])
        affected = dist < self._dnn
        self._dnn[affected] = dist[affected]
        return int(affected.sum())

    def remove_facility(self, f: Point) -> int:
        """Remove one occurrence of a facility; returns how many clients
        had to be recomputed.  Raises if it is the last facility or not
        present."""
        f = Point(*f)
        try:
            self._facilities.remove(f)
        except ValueError:
            raise ValueError(f"facility {f} is not in the set") from None
        if not self._facilities:
            self._facilities.append(f)
            raise ValueError("cannot remove the last facility")
        dist = np.hypot(self._cx - f[0], self._cy - f[1])
        # Clients whose NFD was realised by the removed facility.  A
        # duplicate facility at the same spot keeps serving them, which
        # the recomputation handles naturally.
        stale = np.abs(dist - self._dnn) <= _EPS
        if stale.any():
            grid = FacilityGrid(self._facilities)
            for idx in np.nonzero(stale)[0]:
                self._dnn[idx] = grid.nearest_distance(
                    Point(float(self._cx[idx]), float(self._cy[idx]))
                )
        return int(stale.sum())

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Recompute everything from scratch and compare (for tests)."""
        grid = FacilityGrid(self._facilities)
        for i in range(len(self._dnn)):
            expect = grid.nearest_distance(
                Point(float(self._cx[i]), float(self._cy[i]))
            )
            if not math.isclose(expect, float(self._dnn[i]), abs_tol=1e-9):
                return False
        return True
