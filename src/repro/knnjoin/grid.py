"""Uniform-grid NN join with expanding ring search.

Facilities are hashed into a uniform grid sized so the average cell
holds a handful of points.  For each client, cells are examined in rings
of increasing Chebyshev radius around the client's cell; the search
stops once the best distance found is no larger than the closest
possible point in the next unexplored ring.  Expected O(1) facility
comparisons per client under non-adversarial distributions, which makes
building paper-scale experiments (n_c up to 10^6) practical.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class FacilityGrid:
    """A uniform grid over a point set supporting exact NN queries."""

    def __init__(self, facilities: Iterable[Point], cells_hint: int | None = None):
        self._points: list[Point] = [Point(*f) for f in facilities]
        if not self._points:
            raise ValueError("FacilityGrid requires at least one facility")
        bounds = Rect.from_points(self._points)
        # Pad degenerate extents so cell size is never zero.
        width = max(bounds.width, 1e-9)
        height = max(bounds.height, 1e-9)
        n = len(self._points)
        # Aim for ~2 points per cell.
        target_cells = cells_hint if cells_hint is not None else max(1, n // 2)
        side = max(1, int(math.sqrt(target_cells)))
        self._origin = Point(bounds.xmin, bounds.ymin)
        self._cell_w = width / side
        self._cell_h = height / side
        self._side = side
        self._cells: dict[tuple[int, int], list[Point]] = defaultdict(list)
        for p in self._points:
            self._cells[self._cell_of(p)].append(p)

    def _cell_of(self, p: Point) -> tuple[int, int]:
        i = int((p[0] - self._origin[0]) / self._cell_w)
        j = int((p[1] - self._origin[1]) / self._cell_h)
        return (min(max(i, 0), self._side - 1), min(max(j, 0), self._side - 1))

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    def nearest_distance(self, q: Point) -> float:
        """Exact distance from ``q`` to the nearest facility."""
        return self.nearest(q)[0]

    def nearest(self, q: Point) -> tuple[float, Point]:
        """The nearest facility to ``q`` and its distance."""
        qi, qj = self._cell_of(q)
        best_sq = math.inf
        best: Point | None = None
        min_cell = min(self._cell_w, self._cell_h)
        max_ring = 2 * self._side
        ring = 0
        while ring <= max_ring:
            # Once a candidate is found, one more ring beyond the radius
            # guarantee suffices: any point in ring r is at least
            # (r - 1) * min_cell away.
            if best is not None and (ring - 1) * min_cell > math.sqrt(best_sq):
                break
            for i, j in self._ring_cells(qi, qj, ring):
                for p in self._cells.get((i, j), ()):
                    # Squared via multiplication, not ``** 2``: libm's
                    # pow(x, 2.0) is not correctly rounded on every
                    # platform, while the product is — this keeps the
                    # join bit-identical to the vectorised (numpy)
                    # incremental maintenance paths.
                    dx = p[0] - q[0]
                    dy = p[1] - q[1]
                    d_sq = dx * dx + dy * dy
                    if d_sq < best_sq:
                        best_sq = d_sq
                        best = p
            ring += 1
        assert best is not None
        return math.sqrt(best_sq), best

    def nearest_two(self, q: Point) -> list[tuple[float, Point]]:
        """The two nearest facilities to ``q`` in distance order.

        Returns a single-element list when the grid holds one point.
        Duplicate points count separately, so a client sitting between
        two co-located facilities sees both at the same distance.
        """
        qi, qj = self._cell_of(q)
        best: list[tuple[float, Point]] = []  # up to 2, sorted by d_sq
        min_cell = min(self._cell_w, self._cell_h)
        max_ring = 2 * self._side
        ring = 0
        while ring <= max_ring:
            if len(best) == 2 and (ring - 1) * min_cell > math.sqrt(best[1][0]):
                break
            for i, j in self._ring_cells(qi, qj, ring):
                for p in self._cells.get((i, j), ()):
                    dx = p[0] - q[0]
                    dy = p[1] - q[1]
                    d_sq = dx * dx + dy * dy  # mul, not ** 2 (see nearest)
                    if len(best) < 2:
                        best.append((d_sq, p))
                        best.sort(key=lambda t: t[0])
                    elif d_sq < best[1][0]:
                        best[1] = (d_sq, p)
                        best.sort(key=lambda t: t[0])
            ring += 1
        return [(math.sqrt(d_sq), p) for d_sq, p in best]

    def _ring_cells(self, ci: int, cj: int, ring: int) -> Iterable[tuple[int, int]]:
        if ring == 0:
            if 0 <= ci < self._side and 0 <= cj < self._side:
                yield (ci, cj)
            return
        lo_i, hi_i = ci - ring, ci + ring
        lo_j, hi_j = cj - ring, cj + ring
        for i in range(lo_i, hi_i + 1):
            for j in (lo_j, hi_j):
                if 0 <= i < self._side and 0 <= j < self._side:
                    yield (i, j)
        for j in range(lo_j + 1, hi_j):
            for i in (lo_i, hi_i):
                if 0 <= i < self._side and 0 <= j < self._side:
                    yield (i, j)


def nn_join_grid(clients: Sequence[Point], facilities: Sequence[Point]) -> list[float]:
    """``dnn(c, F)`` for every client via a uniform-grid join."""
    grid = FacilityGrid(facilities)
    return [grid.nearest_distance(Point(*c)) for c in clients]
