"""Nested-loop NN join.

The paper's baseline precomputation: "a nested loop iterating through
every client and for every client iterating through every facility",
costing O(n_c * n_f).  Vectorised over facilities with numpy so the
exactness of the baseline does not make test setup slow.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.point import Point


def nn_join_nested_loop(
    clients: Sequence[Point], facilities: Sequence[Point]
) -> list[float]:
    """``dnn(c, F)`` for every client, by exhaustive comparison.

    Returns distances aligned with ``clients``.  Raises ``ValueError``
    for an empty facility set — the min-dist query is undefined without
    existing facilities (every NFD would be infinite).
    """
    if not len(facilities):
        raise ValueError("nn join requires at least one facility")
    fx = np.fromiter((f[0] for f in facilities), dtype=np.float64)
    fy = np.fromiter((f[1] for f in facilities), dtype=np.float64)
    out: list[float] = []
    for cx, cy in clients:
        d_sq = (fx - cx) ** 2 + (fy - cy) ** 2
        out.append(float(np.sqrt(d_sq.min())))
    return out
