"""Parallel batched query execution with deterministic I/O accounting.

The serial methods in :mod:`repro.core` expose their traversals as
plan/kernel/reduce stages (:class:`~repro.core.plan.StageSpec`); this
package schedules those stages' tasks on thread or process pools while
keeping every reported number — the selected location, the ``dr``
vector, ``io_total`` and its per-structure split — **byte-identical to
the serial run at any worker count**.  See :mod:`repro.exec.engine` for
the determinism argument and DESIGN.md's execution-engine section for
the full design.

Quick usage::

    from repro.exec import QueryEngine, run_batch

    with QueryEngine(ws, workers=4, realize_latency=True) as engine:
        result = engine.run("MND")

    results = run_batch(ws, ["SS", "QVC", "NFC", "MND"], workers=4)
"""

from repro.exec.engine import (
    BufferPoolWorkspaceError,
    QueryEngine,
    run_batch,
    run_query,
)

__all__ = ["BufferPoolWorkspaceError", "QueryEngine", "run_batch", "run_query"]
