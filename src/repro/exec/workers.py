"""Process-pool side of the execution engine.

Process workers are created with the ``fork`` start method *after* the
driver has prepared the query's structures, so every child inherits the
built workspace as a copy-on-write snapshot through :data:`_FORK_STATE`
— no pickling of trees or files ever happens.  Task payloads therefore
carry only small picklable tuples (method name, stage index, the task
itself), and results return as plain dicts/arrays plus a serialised
span tree.

I/O accounting across the process boundary: each task records into a
private :class:`~repro.storage.stats.IOStats` whose counters return to
the driver as plain dicts; the driver folds them in task order with
:meth:`IOStats.merge_counts`, which also replays the page counts into
the *driver's* metrics registry (the child's registry died with the
child).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.obs.trace import Tracer
from repro.storage.stats import IOStats

#: Fork-inherited state: the engine assigns the workspace here in the
#: parent immediately before creating the pool; forked children see the
#: assignment, spawn-started children would not (hence the engine
#: requires the fork start method).
_FORK_STATE: dict[str, Any] = {"workspace": None}

#: Per-child selector cache (one workspace per child, keyed by method).
_SELECTORS: dict[str, Any] = {}


def _set_fork_workspace(workspace) -> None:
    """Stage ``workspace`` for inheritance by soon-to-fork children."""
    _FORK_STATE["workspace"] = workspace
    _SELECTORS.clear()


def _child_selector(method: str):
    selector = _SELECTORS.get(method)
    if selector is None:
        from repro.core.registry import make_selector

        workspace = _FORK_STATE["workspace"]
        if workspace is None:
            raise RuntimeError(
                "worker process has no forked workspace; the process "
                "executor requires the fork start method"
            )
        selector = make_selector(workspace, method)
        # Structures the parent built before forking were inherited; any
        # the parent prepared later are rebuilt here (uncounted, and
        # deterministic, so node ids match the parent's tree exactly).
        selector.prepare()
        _SELECTORS[method] = selector
    return selector


def run_stage_task(
    payload: tuple[str, int, Any, bool, float],
) -> tuple[Any, dict[str, int], dict[str, int], Optional[dict]]:
    """Run one kernel invocation in a worker process.

    Returns ``(kernel output, read counts, write counts, task span as a
    dict or None)`` — everything the driver needs for its stable merge.
    """
    method, stage_index, task, trace_enabled, latency = payload
    selector = _child_selector(method)
    stage = selector.execution_plan()[stage_index]
    kernel = getattr(selector, stage.kernel)
    tstats = IOStats()
    span_dict: Optional[dict] = None
    if trace_enabled:
        ttracer = Tracer()  # private, sinkless: the root is shipped home
        tstats.bind_tracer(ttracer)
        with ttracer.span(f"{stage.name}.task") as span:
            out = kernel(task, tstats)
        span_dict = span.to_dict()
    else:
        out = kernel(task, tstats)
    if latency:
        # Realise the simulated disk latency of this task's page reads
        # inside the worker, so wall-clock time reflects the overlap.
        time.sleep(tstats.total_reads * latency)
    return out, dict(tstats.reads), dict(tstats.writes), span_dict
