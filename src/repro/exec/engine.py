"""The parallel batched query-execution engine.

:class:`QueryEngine` runs any :class:`~repro.core.base.LocationSelector`
that exposes an :meth:`execution_plan` — a list of
:class:`~repro.core.plan.StageSpec` stages, each splitting one traversal
into independent tasks — on a thread or process pool, with I/O
accounting that is **deterministic by construction**:

* the *plan* runs on the driver and charges exactly the page reads the
  serial traversal performs down to the task frontier;
* every *task* records into a private
  :class:`~repro.storage.stats.IOStats` (and, when tracing, a private
  :class:`~repro.obs.trace.Tracer`), so concurrent tasks never contend
  on — or interleave within — shared counters;
* the driver folds the per-task partials back **in task order** (a
  stable reduction).  Page counts are integers, so the folded totals
  equal the serial totals at any worker count; the ``dr`` partials are
  per-task zero-initialised float arrays folded in the same fixed
  order, so every ``dr[p]`` reproduces the exact same float grouping
  regardless of scheduling.

The engine refuses workspaces with a buffer pool: LRU hit/miss state
makes page charges depend on task interleaving, which is exactly the
non-determinism this engine exists to exclude (ablate buffer pools on
the serial path instead).

Simulated-latency realisation: with ``realize_latency=True`` each task
sleeps ``reads x io_latency_s`` *inside its worker*, so wall-clock time
behaves like the paper's disk-bound setting — concurrent tasks overlap
their I/O waits and the measured speedup is genuine, even on a single
CPU.  With the default ``realize_latency=False`` the engine reports the
same modelled ``elapsed_s`` as the serial path (wall CPU + latency per
counted read).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.base import LocationSelector
from repro.core.plan import StageSpec
from repro.core.registry import METHODS, make_selector
from repro.core.types import SelectionResult
from repro.exec.workers import _set_fork_workspace, run_stage_task
from repro.obs.trace import NOOP_TRACER, Span, Tracer
from repro.storage.stats import IOStats

MethodLike = Union[str, LocationSelector]


class BufferPoolWorkspaceError(ValueError):
    """The workspace has an LRU buffer pool, which the engine refuses.

    Warm-pool hit/miss state makes page charges depend on task
    interleaving — exactly the non-determinism the engine exists to
    exclude.  Typed (rather than a bare ``ValueError``) so hosting
    layers such as :mod:`repro.service` can turn it into an actionable
    configuration message instead of an opaque internal error.
    """

    def __init__(self, message: Optional[str] = None):
        super().__init__(
            message
            or "parallel execution requires a workspace without a buffer "
            "pool: LRU hit/miss state makes page charges depend on task "
            "interleaving (run buffer-pool ablations on the serial path)"
        )


class QueryEngine:
    """Runs selection queries over one workspace on a worker pool.

    Parameters
    ----------
    workspace:
        The (buffer-pool-free) workspace all queries share.
    workers:
        Pool size; ``1`` runs every task inline on the driver, which is
        exactly the serial traversal.
    executor:
        ``"thread"`` (default) or ``"process"``.  Threads share the
        in-memory pagers directly; processes inherit them by forking
        (Linux/macOS ``fork`` start method) and return picklable
        partials.
    realize_latency:
        Sleep out each task's simulated page-read latency inside its
        worker (see module docstring).
    task_target:
        Overrides :attr:`LocationSelector.task_target` for every query
        this engine runs (fixed per engine, never derived from
        ``workers``, so the task decomposition — and with it the float
        grouping — is identical at any worker count).
    """

    def __init__(
        self,
        workspace,
        workers: int = 1,
        executor: str = "thread",
        realize_latency: bool = False,
        task_target: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        if getattr(workspace, "buffer_pool", None) is not None:
            raise BufferPoolWorkspaceError()
        if task_target is not None and task_target < 1:
            raise ValueError("task_target must be >= 1")
        self.ws = workspace
        self.workers = workers
        self.executor = executor
        self.realize_latency = realize_latency
        self.task_target = task_target
        self._pool: Optional[Executor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _get_pool(self) -> Executor:
        if self._pool is None:
            if self.executor == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
            else:
                if "fork" not in multiprocessing.get_all_start_methods():
                    raise RuntimeError(
                        "the process executor needs the fork start method "
                        "(workers inherit the in-memory workspace); use "
                        "executor='thread' on this platform"
                    )
                _set_fork_workspace(self.ws)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
        return self._pool

    # ------------------------------------------------------------------
    # Single-query API
    # ------------------------------------------------------------------
    def _resolve(self, method: MethodLike) -> LocationSelector:
        if isinstance(method, LocationSelector):
            if method.ws is not self.ws:
                raise ValueError(
                    "selector belongs to a different workspace than the engine"
                )
            selector = method
        else:
            selector = make_selector(self.ws, method)
        if self.task_target is not None:
            selector.task_target = self.task_target
        return selector

    def run(
        self,
        method: MethodLike,
        tags: Optional[Mapping[str, str]] = None,
    ) -> SelectionResult:
        """Answer one query; the parallel counterpart of ``select()``.

        Resets the workspace's shared I/O counters (like ``select()``)
        and produces the identical location, ``dr`` value and I/O
        accounting at any worker count.  ``tags`` (e.g. a service
        ``trace_id``) are stamped onto the query root span and every
        per-task span when a tracer is attached; they never influence
        execution or accounting.
        """
        selector = self._resolve(method)
        selector.prepare()
        if self.workers > 1:
            self._get_pool()  # fork (if process mode) after structures exist
        ws = self.ws
        ws.reset_stats()
        started = time.perf_counter()
        with ws.tracer.span(f"query.{selector.name}") as root:
            if tags and ws.tracer.enabled:
                root.attrs.update(tags)
            dr = self._execute(selector, ws.stats, ws.tracer, tags)
        wall = time.perf_counter() - started
        return self._package(selector, dr, ws.stats, wall)

    def run_batch(
        self,
        queries: Sequence[MethodLike],
        tags: Optional[Sequence[Optional[Mapping[str, str]]]] = None,
    ) -> list[SelectionResult]:
        """Answer many queries concurrently over the shared workspace.

        Every query gets a *private* I/O accounting and trace (the
        workspace's shared counters are left untouched), so each result
        reports exactly what that query would have cost alone; the
        queries' tasks share one worker pool.  Results come back in
        input order, and — when a tracer is attached — each query's
        span tree is emitted to the workspace tracer's sinks in input
        order as well.  ``tags`` optionally supplies one attribute
        mapping per query (``None`` entries allowed), stamped onto that
        query's root and per-task spans — how the service correlates a
        batch's span trees back to individual requests.
        """
        if tags is not None and len(tags) != len(queries):
            raise ValueError(
                f"tags must match queries: got {len(tags)} for {len(queries)}"
            )
        selectors = [self._resolve(q) for q in queries]
        for selector in selectors:  # build structures before fork/threads
            selector.prepare()
        if self.workers > 1:
            self._get_pool()
        results: list[Optional[SelectionResult]] = [None] * len(selectors)
        roots: list[Optional[Span]] = [None] * len(selectors)
        traced = self.ws.tracer.enabled

        def _drive(i: int) -> None:
            selector = selectors[i]
            qtags = tags[i] if tags is not None else None
            qstats = IOStats()
            qtracer: Tracer | None = None
            if traced:
                qtracer = Tracer()  # sinkless: the root is adopted later
                qstats.bind_tracer(qtracer)
            started = time.perf_counter()
            if qtracer is not None:
                with qtracer.span(f"query.{selector.name}") as root:
                    if qtags:
                        root.attrs.update(qtags)
                    dr = self._execute(selector, qstats, qtracer, qtags)
                roots[i] = root
            else:
                dr = self._execute(selector, qstats, NOOP_TRACER, qtags)
            wall = time.perf_counter() - started
            results[i] = self._package(selector, dr, qstats, wall)

        if len(selectors) > 1 and self.workers > 1:
            with ThreadPoolExecutor(
                max_workers=min(len(selectors), self.workers),
                thread_name_prefix="repro-exec-batch",
            ) as drivers:
                list(drivers.map(_drive, range(len(selectors))))
        else:
            for i in range(len(selectors)):
                _drive(i)
        for root in roots:
            if root is not None:
                self.ws.tracer.adopt(root)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------
    def _package(
        self,
        selector: LocationSelector,
        dr: np.ndarray,
        stats: IOStats,
        wall: float,
    ) -> SelectionResult:
        selector._dr = dr  # select_topk / distance_reductions keep working
        best = int(np.argmax(dr))
        io_total = stats.total_reads
        modelled_io = io_total * self.ws.io_latency_s
        if self.realize_latency:
            elapsed = wall  # I/O waits already happened (overlapped)
            cpu = max(0.0, wall - modelled_io)
        else:
            elapsed = wall + modelled_io
            cpu = wall
        return SelectionResult(
            method=selector.name,
            location=self.ws.potentials[best],
            dr=float(dr[best]),
            elapsed_s=elapsed,
            cpu_s=cpu,
            io_total=io_total,
            io_reads=stats.snapshot(),
            index_pages=selector.index_pages(),
        )

    def _execute(
        self,
        selector: LocationSelector,
        stats: IOStats,
        tracer,
        tags: Optional[Mapping[str, str]] = None,
    ) -> np.ndarray:
        dr = np.zeros(self.ws.n_p, dtype=np.float64)
        latency = self.ws.io_latency_s if self.realize_latency else 0.0
        carry: object = None
        for stage_index, stage in enumerate(selector.execution_plan()):
            with tracer.span(stage.name):
                before = stats.total_reads
                tasks = stage.plan(stats, carry)
                if latency:
                    # The driver performs the pre-fanout reads itself.
                    time.sleep((stats.total_reads - before) * latency)
                outs = self._run_tasks(
                    selector, stage_index, stage, tasks, stats, tracer, latency, tags
                )
                carry = stage.reduce(outs, dr) if stage.reduce is not None else None
        return dr

    def _run_tasks(
        self,
        selector: LocationSelector,
        stage_index: int,
        stage: StageSpec,
        tasks: list,
        stats: IOStats,
        tracer,
        latency: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> list:
        if not tasks:
            return []
        if self.workers <= 1 or len(tasks) == 1:
            # Inline on the driver: literally the serial traversal (same
            # stats, same tracer, same order).
            kernel = getattr(selector, stage.kernel)
            outs = []
            for task in tasks:
                before = stats.total_reads
                outs.append(kernel(task, stats))
                if latency:
                    time.sleep((stats.total_reads - before) * latency)
            return outs
        if self.executor == "thread":
            return self._run_threaded(
                selector, stage, tasks, stats, tracer, latency, tags
            )
        return self._run_forked(
            selector, stage_index, stage, tasks, stats, tracer, latency, tags
        )

    def _run_threaded(
        self,
        selector: LocationSelector,
        stage: StageSpec,
        tasks: list,
        stats: IOStats,
        tracer,
        latency: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> list:
        kernel = getattr(selector, stage.kernel)
        traced = tracer.enabled

        def _one(task):
            tstats = IOStats()
            span: Optional[Span] = None
            if traced:
                ttracer = Tracer()  # private: no span stack is shared
                tstats.bind_tracer(ttracer)
                with ttracer.span(f"{stage.name}.task") as sp:
                    out = kernel(task, tstats)
                span = sp
            else:
                out = kernel(task, tstats)
            if latency:
                time.sleep(tstats.total_reads * latency)
            return out, tstats, span

        # map() preserves task order; the fold below is therefore a
        # stable reduction no matter how the pool interleaved the work.
        results = list(self._get_pool().map(_one, tasks))
        outs = []
        for out, tstats, span in results:
            stats.merge(tstats)
            if span is not None:
                if tags:
                    span.attrs.update(tags)
                tracer.adopt(span)
            outs.append(out)
        return outs

    def _run_forked(
        self,
        selector: LocationSelector,
        stage_index: int,
        stage: StageSpec,
        tasks: list,
        stats: IOStats,
        tracer,
        latency: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> list:
        if selector.name.upper() not in METHODS:
            raise ValueError(
                f"the process executor reconstructs selectors by registry "
                f"name; {selector.name!r} is not a registered method"
            )
        traced = tracer.enabled
        payloads = [
            (selector.name, stage_index, task, traced, latency) for task in tasks
        ]
        results = list(self._get_pool().map(run_stage_task, payloads))
        outs = []
        for out, reads, writes, span_dict in results:
            stats.merge_counts(reads, writes)
            if span_dict is not None:
                span = Span.from_dict(span_dict)
                if tags:  # stamped driver-side: workers stay tag-agnostic
                    span.attrs.update(tags)
                tracer.adopt(span)
            outs.append(out)
        return outs


# ----------------------------------------------------------------------
# Module-level convenience API
# ----------------------------------------------------------------------
def run_query(
    workspace,
    method: MethodLike,
    workers: int = 1,
    executor: str = "thread",
    realize_latency: bool = False,
    task_target: Optional[int] = None,
) -> SelectionResult:
    """One query through a throwaway engine (pool torn down after)."""
    with QueryEngine(
        workspace,
        workers=workers,
        executor=executor,
        realize_latency=realize_latency,
        task_target=task_target,
    ) as engine:
        return engine.run(method)


def run_batch(
    workspace,
    queries: Sequence[MethodLike],
    workers: int = 1,
    executor: str = "thread",
    realize_latency: bool = False,
    task_target: Optional[int] = None,
) -> list[SelectionResult]:
    """Many queries over one workspace through a shared throwaway pool."""
    with QueryEngine(
        workspace,
        workers=workers,
        executor=executor,
        realize_latency=realize_latency,
        task_target=task_target,
    ) as engine:
        return engine.run_batch(queries)
