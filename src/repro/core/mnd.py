"""MND — the maximum NFC distance method (Section VI, Algorithm 5).

The paper's contribution: the pruning power of the NFC method without
its extra index.  The client tree ``R_C^m`` stores, in each parent
entry, one value — the node's *maximum NFC distance* — delimiting a
rounded-rectangular region guaranteed to enclose the NFCs of every
client in the subtree.  Theorem 1 then prunes a node pair
``(N_P, N_C)`` whenever ``minDist(N_C, N_P) >= MND(N_C)``: no potential
location under ``N_P`` can influence any client under ``N_C``.

The traversal mirrors the NFC join exactly, with the intersection
predicate replaced by the MND test; each client-side node carries the
MND stored in its parent entry (the root's MND is derived from its
resident entries at no I/O cost, since roots have no parent entry).
Parallel execution splits the join at a node-pair frontier exactly like
NFC (:mod:`repro.rtree.frontier`), with the carried MND travelling in
the task tuple.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.core.base import LocationSelector
from repro.core.plan import StageSpec
from repro.rtree.columns import branch_columns, leaf_client_columns, leaf_site_columns
from repro.rtree.frontier import expand_frontier
from repro.rtree.node import Node
from repro.storage.stats import IOStats

#: A join task: (R_P node id, R_C^m node id, MND of the client node).
JoinTask = tuple[int, int, float]


class MaximumNFCDistance(LocationSelector):
    """The MND method: MND-pruned join between ``R_P`` and ``R_C^m``."""

    name = "MND"

    def prepare(self) -> None:
        __ = self.ws.mnd_tree
        __ = self.ws.r_p

    def index_pages(self) -> int:
        return self.ws.mnd_tree.size_pages + self.ws.r_p.size_pages

    # ------------------------------------------------------------------
    # Parallel execution protocol
    # ------------------------------------------------------------------
    def execution_plan(self) -> list[StageSpec]:
        return [
            StageSpec(
                name="mnd.join",
                plan=self._plan_join,
                kernel="run_join_task",
                reduce=self._reduce_join,
            )
        ]

    def _plan_join(self, stats: IOStats, carry: object = None) -> list[JoinTask]:
        """The node-pair frontier; charges root + expansion reads."""
        ws = self.ws
        if ws.mnd_tree.num_entries == 0:
            return []
        root_p = ws.r_p.read_node(ws.r_p.root_id, stats=stats)
        root_c = ws.mnd_tree.read_node(ws.mnd_tree.root_id, stats=stats)
        root_mnd = ws.mnd_tree.compute_mnd(root_c)
        return expand_frontier(
            [(root_p.node_id, root_c.node_id, root_mnd)],
            lambda task: self._expand_pair(task, stats),
            target=self.task_target,
        )

    def _expand_pair(
        self, task: JoinTask, stats: IOStats
    ) -> Optional[list[JoinTask]]:
        """One level of Algorithm 5 at ``task`` (None = leaf-leaf)."""
        ws = self.ws
        p_id, c_id, mnd_c = task
        node_p = ws.r_p.node(p_id)  # already charged when the pair was made
        node_c = ws.mnd_tree.node(c_id)
        if node_p.is_leaf and node_c.is_leaf:
            return None
        trace = stats.tracer
        trace.count("join.node_pairs")
        cache = ws.leaf_cache
        out: list[JoinTask] = []
        if node_p.is_leaf:
            c_cols = branch_columns(ws.mnd_tree, node_c, cache)
            descend = (
                kernels.min_dist_rects_rect(c_cols.rects, node_p.mbr()) < c_cols.mnd
            )
            for j in np.flatnonzero(descend):
                e_c = node_c.entries[j]
                ws.mnd_tree.read_node(e_c.child_id, stats=stats)
                out.append((p_id, e_c.child_id, e_c.mnd))
        elif node_c.is_leaf:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            descend = (
                kernels.min_dist_rects_rect(p_cols.rects, node_c.mbr()) < mnd_c
            )
            for i in np.flatnonzero(descend):
                e_p = node_p.entries[i]
                ws.r_p.read_node(e_p.child_id, stats=stats)
                out.append((e_p.child_id, c_id, mnd_c))
        else:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            c_cols = branch_columns(ws.mnd_tree, node_c, cache)
            descend = (
                kernels.pairwise_min_dist_rects(p_cols.rects, c_cols.rects)
                < c_cols.mnd[None, :]
            )
            # argwhere is row-major, matching the serial nested-loop order
            # so every child read is charged in the identical sequence.
            for i, j in np.argwhere(descend):
                e_p = node_p.entries[i]
                e_c = node_c.entries[j]
                ws.r_p.read_node(e_p.child_id, stats=stats)
                ws.mnd_tree.read_node(e_c.child_id, stats=stats)
                out.append((e_p.child_id, e_c.child_id, e_c.mnd))
            pruned = descend.size - int(np.count_nonzero(descend))
            if pruned:
                trace.count("join.pruned_pairs", pruned)
        return out

    def run_join_task(
        self, task: JoinTask, stats: IOStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """The serial join below one frontier pair, into a private partial."""
        ws = self.ws
        p_id, c_id, mnd_c = task
        node_p = ws.r_p.node(p_id)  # pair reads charged by the planner
        node_c = ws.mnd_tree.node(c_id)
        local = np.zeros(ws.n_p, dtype=np.float64)
        self._join(node_p, node_c, mnd_c, local, stats)
        idx = np.flatnonzero(local)
        return idx, local[idx]

    def _reduce_join(
        self, outs: list[tuple[np.ndarray, np.ndarray]], dr: np.ndarray
    ) -> Optional[object]:
        for idx, vals in outs:
            dr[idx] += vals
        return None

    # ------------------------------------------------------------------
    def _compute_distance_reductions(self) -> np.ndarray:
        """The serial path: frontier + inline kernels (same grouping)."""
        ws = self.ws
        stats = ws.stats
        dr = np.zeros(ws.n_p, dtype=np.float64)
        if ws.mnd_tree.num_entries == 0:
            return dr
        with stats.tracer.span("mnd.join"):
            tasks = self._plan_join(stats)
            outs = [self.run_join_task(task, stats) for task in tasks]
            self._reduce_join(outs, dr)
        return dr

    def _join(
        self,
        node_p: Node,
        node_c: Node,
        mnd_c: float,
        dr: np.ndarray,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Algorithm 5: descend where ``minDist < MND`` (Theorem 1)."""
        ws = self.ws
        if stats is None:
            stats = ws.stats
        trace = stats.tracer
        trace.count("join.node_pairs")
        cache = ws.leaf_cache
        if node_p.is_leaf and node_c.is_leaf:
            # Pure-CPU candidate evaluation; the leaf page reads remain
            # attributed to the enclosing descent span.
            with trace.span("mnd.leaf_eval") as sp:
                sp.count("candidates", len(node_p.entries))
                # For point entries minDist(e_c, e_p) is the exact
                # distance, and the leaf-level MND of a client is its
                # dnn — so the paper's line-11 test collapses to the
                # exact influence test dist < dnn, i.e. the clipped
                # weighted reduction kernel over the whole page pair.
                p_cols = leaf_site_columns(ws.r_p, node_p, cache)
                c_cols = leaf_client_columns(ws.mnd_tree, node_c, cache)
                dr[p_cols.ids] += kernels.accumulate_reductions(
                    p_cols.xs,
                    p_cols.ys,
                    c_cols.xs,
                    c_cols.ys,
                    c_cols.dnn,
                    c_cols.weights,
                )
        elif node_p.is_leaf:
            c_cols = branch_columns(ws.mnd_tree, node_c, cache)
            descend = (
                kernels.min_dist_rects_rect(c_cols.rects, node_p.mbr()) < c_cols.mnd
            )
            for j in np.flatnonzero(descend):
                e_c = node_c.entries[j]
                self._join(
                    node_p,
                    ws.mnd_tree.read_node(e_c.child_id, stats=stats),
                    e_c.mnd,
                    dr,
                    stats,
                )
        elif node_c.is_leaf:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            descend = (
                kernels.min_dist_rects_rect(p_cols.rects, node_c.mbr()) < mnd_c
            )
            for i in np.flatnonzero(descend):
                self._join(
                    ws.r_p.read_node(node_p.entries[i].child_id, stats=stats),
                    node_c,
                    mnd_c,
                    dr,
                    stats,
                )
        else:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            c_cols = branch_columns(ws.mnd_tree, node_c, cache)
            descend = (
                kernels.pairwise_min_dist_rects(p_cols.rects, c_cols.rects)
                < c_cols.mnd[None, :]
            )
            # Row-major argwhere keeps the serial nested-loop descent
            # (and read-charge) order.
            for i, j in np.argwhere(descend):
                self._join(
                    ws.r_p.read_node(node_p.entries[i].child_id, stats=stats),
                    ws.mnd_tree.read_node(node_c.entries[j].child_id, stats=stats),
                    node_c.entries[j].mnd,
                    dr,
                    stats,
                )
            pruned = descend.size - int(np.count_nonzero(descend))
            if pruned:
                trace.count("join.pruned_pairs", pruned)

    # ------------------------------------------------------------------
    # Influence-set materialisation (library extension)
    # ------------------------------------------------------------------
    def influence_sets(self) -> dict[int, list[int]]:
        """``IS(p)`` for every potential location, as client-id lists.

        Runs the same MND-pruned join but collects the influenced
        clients instead of only their aggregate reduction; ids are
        sorted for determinism.  Step 1 of the Section III-B framework
        exposed directly — useful when callers need to *notify* the
        affected clients, not just score candidates.
        """
        ws = self.ws
        out: dict[int, list[int]] = {p.sid: [] for p in ws.potentials}
        if ws.mnd_tree.num_entries == 0:
            return out
        node_p = ws.r_p.read_node(ws.r_p.root_id)
        node_c = ws.mnd_tree.read_node(ws.mnd_tree.root_id)
        self._collect_join(node_p, node_c, ws.mnd_tree.compute_mnd(node_c), out)
        for members in out.values():
            members.sort()
        return out

    def _collect_join(
        self,
        node_p: Node,
        node_c: Node,
        mnd_c: float,
        out: dict[int, list[int]],
    ) -> None:
        ws = self.ws
        cache = ws.leaf_cache
        if node_p.is_leaf and node_c.is_leaf:
            p_cols = leaf_site_columns(ws.r_p, node_p, cache)
            c_cols = leaf_client_columns(ws.mnd_tree, node_c, cache)
            influenced = kernels.influence_matrix(
                p_cols.xs, p_cols.ys, c_cols.xs, c_cols.ys, c_cols.dnn
            )
            cids = c_cols.ids.tolist()
            for i, sid in enumerate(p_cols.ids.tolist()):
                members = np.flatnonzero(influenced[i])
                if len(members):
                    out[sid].extend(cids[j] for j in members)
        elif node_p.is_leaf:
            c_cols = branch_columns(ws.mnd_tree, node_c, cache)
            descend = (
                kernels.min_dist_rects_rect(c_cols.rects, node_p.mbr()) < c_cols.mnd
            )
            for j in np.flatnonzero(descend):
                e_c = node_c.entries[j]
                self._collect_join(
                    node_p, ws.mnd_tree.read_node(e_c.child_id), e_c.mnd, out
                )
        elif node_c.is_leaf:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            descend = (
                kernels.min_dist_rects_rect(p_cols.rects, node_c.mbr()) < mnd_c
            )
            for i in np.flatnonzero(descend):
                self._collect_join(
                    ws.r_p.read_node(node_p.entries[i].child_id), node_c, mnd_c, out
                )
        else:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            c_cols = branch_columns(ws.mnd_tree, node_c, cache)
            descend = (
                kernels.pairwise_min_dist_rects(p_cols.rects, c_cols.rects)
                < c_cols.mnd[None, :]
            )
            for i, j in np.argwhere(descend):
                self._collect_join(
                    ws.r_p.read_node(node_p.entries[i].child_id),
                    ws.mnd_tree.read_node(node_c.entries[j].child_id),
                    node_c.entries[j].mnd,
                    out,
                )
