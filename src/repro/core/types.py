"""Core data types shared by all query methods.

``Client`` mirrors the paper's client record: position plus the
precomputed nearest-facility distance ``dnn(c, F)`` "stored with the
client's record" (Section III-B).  ``Site`` is the common shape of
facility and potential-location records.  ``SelectionResult`` carries
the answer together with the measurements every experiment reports:
running time, number of I/Os and index size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.geometry.point import Point


class Site(NamedTuple):
    """A facility or potential location: an id and a position."""

    sid: int
    x: float
    y: float

    @property
    def point(self) -> Point:
        return Point(self.x, self.y)


class Client:
    """A client record: id, position, precomputed ``dnn(c, F)`` and an
    optional importance weight (1.0 = the paper's unweighted setting;
    weighted influence follows the related max-inf literature [2])."""

    __slots__ = ("cid", "x", "y", "dnn", "weight")

    def __init__(self, cid: int, x: float, y: float, dnn: float, weight: float = 1.0):
        self.cid = cid
        self.x = x
        self.y = y
        self.dnn = dnn
        self.weight = weight

    @property
    def point(self) -> Point:
        return Point(self.x, self.y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Client):
            return NotImplemented
        return self.cid == other.cid

    def __hash__(self) -> int:
        return hash(self.cid)

    def __repr__(self) -> str:
        return f"Client({self.cid}, ({self.x:.3f}, {self.y:.3f}), dnn={self.dnn:.3f})"


@dataclass
class SelectionResult:
    """The outcome of one min-dist location selection query.

    ``elapsed_s`` is the simulated running time of the disk-based system
    the paper measures: CPU time plus one I/O latency per page read
    (``Workspace.io_latency_s``).  ``cpu_s`` is the raw in-memory CPU
    time of this reproduction.
    """

    method: str
    location: Site
    dr: float
    elapsed_s: float
    cpu_s: float
    io_total: int
    io_reads: dict[str, int] = field(default_factory=dict)
    index_pages: int = 0

    def __repr__(self) -> str:
        return (
            f"SelectionResult(method={self.method}, location=p{self.location.sid} "
            f"@({self.location.x:.2f},{self.location.y:.2f}), dr={self.dr:.4f}, "
            f"time={self.elapsed_s * 1000:.2f}ms (cpu {self.cpu_s * 1000:.2f}ms), "
            f"io={self.io_total}, index={self.index_pages}p)"
        )
