"""Max-inf location selection — the other family in Table I.

The paper contrasts its *min-dist* objective with the *max-inf* family
([1], [2], [15], [16]): maximise the **number** (or total weight) of
clients influenced rather than their total distance reduction.  With
the influence machinery already in place, the max-inf variant over the
same discrete candidate set is a drop-in: count clients with
``dist(c, p) < dnn(c, F)`` instead of summing their reductions.

The module exposes both the exact counts and a selector reusing the
MND-pruned join, so the two objective families can be compared on the
same instance — they often disagree, which is exactly the distinction
Section II draws (an example is pinned in the tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.mnd import MaximumNFCDistance
from repro.core.types import Site
from repro.core.workspace import Workspace


def influence_counts(ws: Workspace) -> np.ndarray:
    """Weighted influence count per candidate (brute force oracle)."""
    cx = ws.client_xyd[:, 0]
    cy = ws.client_xyd[:, 1]
    dnn = ws.client_xyd[:, 2]
    w = ws.client_w
    out = np.zeros(ws.n_p, dtype=np.float64)
    for i, (px, py) in enumerate(ws.potential_xy):
        d = np.hypot(cx - px, cy - py)
        out[i] = w[d < dnn].sum()
    return out


class MaxInfSelection:
    """Max-inf selection over the discrete candidate set.

    Reuses the MND method's pruned influence-set join (the pruning rule
    is objective-independent: it only reasons about *which* clients a
    candidate can influence).
    """

    def __init__(self, workspace: Workspace):
        self.ws = workspace

    def influence_counts(self) -> np.ndarray:
        """Weighted influence per candidate via the MND join."""
        selector = MaximumNFCDistance(self.ws)
        selector.prepare()
        sets = selector.influence_sets()
        weight_of = {c.cid: c.weight for c in self.ws.clients}
        out = np.zeros(self.ws.n_p, dtype=np.float64)
        for sid, members in sets.items():
            out[sid] = sum(weight_of[cid] for cid in members)
        return out

    def select(self) -> tuple[Site, float]:
        """The candidate influencing the most (weighted) clients; ties
        break to the smallest id."""
        counts = self.influence_counts()
        best = int(np.argmax(counts))
        return self.ws.potentials[best], float(counts[best])
