"""Region clocks: mutation scoping for version-keyed caches.

The service's result cache historically keyed every entry on one
monotonic ``data_version`` that *every* mutation bumps, so under a
write-heavy stream the cache is permanently cold even when most
mutations provably cannot change any answer.  A :class:`RegionClock`
splits that single counter by *what a mutation can actually affect*:

* ``epoch`` — bumps on every mutation (the old ``data_version``
  contract; anything that must observe all mutations keys on this);
* ``select_epoch`` — bumps only when the mutation's **affected region**
  contains at least one potential location.  ``dr(p)`` is a sum over
  clients whose NFC strictly contains ``p`` (Section III of the paper),
  so a mutation whose affected region — the union of the old and new
  NFC bounding boxes of every client whose membership or ``dnn``
  changed — covers no potential leaves the whole ``dr`` vector, and
  hence every ``select``/``partials`` answer, unchanged;
* ``evaluate_epoch`` — bumps whenever any client's membership or
  ``dnn`` changed at all: evaluation reports embed ``n_c`` and the
  NFD sums, which see every client, not just those near a potential.

Facility-set changes with **zero** affected clients bump only
``epoch``: the answer depends on facilities solely through ``dnn``.
(Their I/O metadata can still shift — e.g. QVC reads ``R_F`` — so a
cached result served across such a mutation describes the run that
produced it; the *answer* bytes are unchanged.)

The clock also records the last mutation's region so caches can evict
by intersection (see ``ResultCache.invalidate``) and observers (the
``mindist top`` view) can show what moved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.rect import Rect


def region_covers_any(region: Rect, points_xy: np.ndarray) -> bool:
    """Whether any ``(x, y)`` row of ``points_xy`` falls in ``region``.

    Closed-box containment: a potential exactly on the NFC bounding box
    edge cannot lie *strictly* inside the inscribed circle, so the box
    test is conservative (never misses an affected potential).
    """
    if len(points_xy) == 0:
        return False
    xs = points_xy[:, 0]
    ys = points_xy[:, 1]
    return bool(
        np.any(
            (xs >= region.xmin)
            & (xs <= region.xmax)
            & (ys >= region.ymin)
            & (ys <= region.ymax)
        )
    )


class RegionClock:
    """Per-workspace mutation clock with answer-scoped sub-epochs."""

    __slots__ = ("epoch", "select_epoch", "evaluate_epoch", "last_region")

    def __init__(self) -> None:
        self.epoch = 0
        self.select_epoch = 0
        self.evaluate_epoch = 0
        self.last_region: Optional[Rect] = None

    def advance(
        self,
        region: Optional[Rect],
        *,
        affects_select: bool,
        affects_evaluate: bool,
    ) -> None:
        """Record one mutation.

        ``region`` is the union of the old and new NFC bounding boxes of
        every client whose state changed (``None`` when no client state
        changed — e.g. opening a facility no client is drawn to).
        """
        self.epoch += 1
        if affects_select:
            self.select_epoch += 1
        if affects_evaluate:
            self.evaluate_epoch += 1
        self.last_region = region

    def version_for(self, op: str) -> int:
        """The cache sub-epoch governing one operation's answers."""
        if op in ("select", "partials"):
            return self.select_epoch
        if op == "evaluate":
            return self.evaluate_epoch
        return self.epoch

    def snapshot(self) -> dict:
        """A JSON-friendly view (for ``describe()``/``stats``)."""
        return {
            "epoch": self.epoch,
            "select_epoch": self.select_epoch,
            "evaluate_epoch": self.evaluate_epoch,
            "last_region": list(self.last_region)
            if self.last_region is not None
            else None,
        }

    def __repr__(self) -> str:
        return (
            f"RegionClock(epoch={self.epoch}, select={self.select_epoch}, "
            f"evaluate={self.evaluate_epoch})"
        )
