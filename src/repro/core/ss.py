"""SS — the sequential scan baseline (Algorithm 1).

Block-nested-loop over the potential-location file and the client file:
for every potential-location block, the whole client file is scanned and
each client contributes ``max(dnn(c,F) - dist(c,p), 0)`` to every ``p``
in the block.  With precomputed ``dnn`` this needs no index at all, but
reads the client dataset ``n_p / C_m`` times — the I/O cost
``n_p * n_c / C_m^2`` of Table III.

The per-block-pair distance computation goes through
:func:`repro.kernels.accumulate_reductions` (the columnar batch kernel,
cross-checked against its scalar twin); this changes constants, not the
I/O pattern or the asymptotic CPU cost, both of which the paper
analyses.

The scan decomposes naturally for the execution engine: one task per
``(P-block, C-block)`` pair.  The driver charges each potential block
once at planning time (the serial loop holds it in memory across the
inner scan); each task re-fetches it for free via ``peek_block`` and
charges only its own client-block read.  Per-``p`` accumulation order
across tasks equals the serial inner-loop order, so the reduced ``dr``
is bit-identical to the serial scan.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.core.base import LocationSelector
from repro.core.plan import StageSpec
from repro.storage.stats import IOStats


class SequentialScan(LocationSelector):
    """The sequential scan (SS) method — no pruning, no index."""

    name = "SS"

    def prepare(self) -> None:
        __ = self.ws.client_file
        __ = self.ws.potential_file

    def index_pages(self) -> int:
        return 0  # SS maintains no index (data files are not indexes).

    # ------------------------------------------------------------------
    # Parallel execution protocol
    # ------------------------------------------------------------------
    def execution_plan(self) -> list[StageSpec]:
        return [
            StageSpec(
                name="ss.scan",
                plan=self._plan_scan,
                kernel="run_scan_task",
                reduce=self._reduce_scan,
            )
        ]

    def _plan_scan(self, stats: IOStats, carry: object = None) -> list[tuple]:
        """One task per (P-block, C-block) pair; charges the P reads."""
        ws = self.ws
        tasks: list[tuple[int, int, int]] = []
        n_c_blocks = ws.client_file.num_blocks
        offset = 0
        for p_id in range(ws.potential_file.num_blocks):
            p_block = ws.potential_file.read_block(p_id, stats=stats)
            stats.tracer.count("potential_blocks")
            for c_id in range(n_c_blocks):
                tasks.append((p_id, offset, c_id))
            offset += len(p_block)
        return tasks

    def run_scan_task(
        self, task: tuple[int, int, int], stats: IOStats
    ) -> tuple[int, np.ndarray]:
        """One (P-block, C-block) pairwise evaluation (Algorithm 1 core)."""
        p_id, offset, c_id = task
        ws = self.ws
        p_block = ws.potential_file.peek_block(p_id)  # charged at planning
        px = p_block[:, 0]
        py = p_block[:, 1]
        with stats.tracer.span("ss.client_pass") as sp:
            c_block = ws.client_file.read_block(c_id, stats=stats)
            sp.count("client_blocks")
            # (block of P) x (block of C) weighted clipped reductions.
            acc = kernels.accumulate_reductions(
                px, py, c_block[:, 0], c_block[:, 1], c_block[:, 2], c_block[:, 3]
            )
        return offset, acc

    def _reduce_scan(
        self, outs: list[tuple[int, np.ndarray]], dr: np.ndarray
    ) -> Optional[object]:
        for offset, acc in outs:
            dr[offset : offset + len(acc)] += acc
        return None

    # ------------------------------------------------------------------
    def _compute_distance_reductions(self) -> np.ndarray:
        """The serial path: the same plan/kernel/reduce, run inline."""
        ws = self.ws
        stats = ws.stats
        dr = np.zeros(ws.n_p, dtype=np.float64)
        # Phases: reads of file.P land on "ss.scan" (charged while
        # planning); each (P-block, C-block) evaluation opens its own
        # "ss.client_pass" child span carrying the file.C read.
        with stats.tracer.span("ss.scan"):
            tasks = self._plan_scan(stats)
            outs = [self.run_scan_task(task, stats) for task in tasks]
            self._reduce_scan(outs, dr)
        return dr
