"""SS — the sequential scan baseline (Algorithm 1).

Block-nested-loop over the potential-location file and the client file:
for every potential-location block, the whole client file is scanned and
each client contributes ``max(dnn(c,F) - dist(c,p), 0)`` to every ``p``
in the block.  With precomputed ``dnn`` this needs no index at all, but
reads the client dataset ``n_p / C_m`` times — the I/O cost
``n_p * n_c / C_m^2`` of Table III.

The per-block-pair distance computation is vectorised with numpy; this
changes constants, not the I/O pattern or the asymptotic CPU cost, both
of which the paper analyses.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LocationSelector


class SequentialScan(LocationSelector):
    """The sequential scan (SS) method — no pruning, no index."""

    name = "SS"

    def prepare(self) -> None:
        __ = self.ws.client_file
        __ = self.ws.potential_file

    def index_pages(self) -> int:
        return 0  # SS maintains no index (data files are not indexes).

    def _compute_distance_reductions(self) -> np.ndarray:
        ws = self.ws
        trace = ws.tracer
        dr = np.zeros(ws.n_p, dtype=np.float64)
        offset = 0
        # Phases: reads of file.P land on "ss.scan" (the blocks arrive
        # through the outer iterator); each full client pass is its own
        # child span, so the profile shows file.C reads per pass.
        with trace.span("ss.scan") as scan:
            for p_block in ws.potential_file.iter_blocks():
                scan.count("potential_blocks")
                px = p_block[:, 0]
                py = p_block[:, 1]
                acc = np.zeros(len(p_block), dtype=np.float64)
                with trace.span("ss.client_pass") as sp:
                    for c_block in ws.client_file.iter_blocks():
                        sp.count("client_blocks")
                        cx = c_block[:, 0]
                        cy = c_block[:, 1]
                        dnn = c_block[:, 2]
                        w = c_block[:, 3]
                        # (block of P) x (block of C) pairwise distances.
                        d = np.hypot(
                            px[:, None] - cx[None, :], py[:, None] - cy[None, :]
                        )
                        acc += (
                            np.clip(dnn[None, :] - d, 0.0, None) * w[None, :]
                        ).sum(axis=1)
                dr[offset : offset + len(p_block)] = acc
                offset += len(p_block)
        return dr
