"""The query workspace: datasets, precomputation, files and indexes.

A :class:`Workspace` owns one problem instance (clients, facilities,
potential locations), precomputes ``dnn(c, F)`` once (shared by *all*
methods, as Section III-B prescribes), and lazily materialises every
storage structure any method might need:

========  =====================================================
``client_file``      flat block file of ``(x, y, dnn)`` rows (SS)
``potential_file``   flat block file of ``(x, y)`` rows (SS, QVC)
``r_c``              R-tree over client points (QVC)
``r_f``              R-tree over facility points (QVC)
``r_p``              R-tree over potential locations (NFC, MND)
``rnn_tree``         RNN-tree over NFC MBRs, ``R_C^n`` (NFC)
``mnd_tree``         MND-augmented client tree, ``R_C^m`` (MND)
========  =====================================================

Structures are built through uncounted page accesses; only query-time
reads hit the shared :class:`~repro.storage.stats.IOStats`, matching the
paper's convention of excluding index construction from query cost.
"""

from __future__ import annotations

from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from repro.core.types import Client, Site
from repro.datasets.generators import SpatialInstance
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.knnjoin.grid import nn_join_grid
from repro.knnjoin.nested_loop import nn_join_nested_loop
from repro.knnjoin.rtree_join import nn_join_rtree
from repro.obs.trace import NOOP_TRACER, NoopTracer, Tracer
from repro.rtree.bulk import bulk_load
from repro.rtree.mnd_tree import MNDTree
from repro.rtree.rnn_tree import build_rnn_tree
from repro.rtree.rtree import RTree
from repro.storage.blockfile import BlockFile
from repro.storage.buffer import LRUBufferPool
from repro.storage.leafcache import DecodedLeafCache
from repro.storage.records import CLIENT_RECORD, PAGE_SIZE, POINT_RECORD, RTREE_ENTRY
from repro.storage.stats import IOStats

_JOIN_METHODS = {
    "grid": nn_join_grid,
    "nested_loop": nn_join_nested_loop,
    "rtree": nn_join_rtree,
}


class Workspace:
    """Shared state for running min-dist location selection queries."""

    #: Default simulated latency per page read.  The paper measures wall
    #: time on a 2012 desktop with a spinning disk, where time is
    #: I/O-dominated; 1 ms per 4 KiB page read (a disk with some locality
    #: and caching) recreates that regime.  Set to 0 to study pure CPU.
    DEFAULT_IO_LATENCY_S = 1e-3

    def __init__(
        self,
        instance: SpatialInstance,
        page_size: int = PAGE_SIZE,
        buffer_pool_pages: Optional[int] = None,
        use_bulk_load: bool = True,
        join_method: str = "grid",
        io_latency_s: float = DEFAULT_IO_LATENCY_S,
        precomputed_dnn: Optional[Sequence[float]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if instance.n_f < 1:
            raise ValueError(
                "the min-dist location selection query requires at least one "
                "existing facility (otherwise every NFD is infinite)"
            )
        if instance.n_p < 1:
            raise ValueError("no potential locations to select from")
        if join_method not in _JOIN_METHODS:
            raise ValueError(
                f"unknown join method {join_method!r}; "
                f"expected one of {sorted(_JOIN_METHODS)}"
            )
        self.instance = instance
        self.page_size = page_size
        self.use_bulk_load = use_bulk_load
        self.io_latency_s = io_latency_s
        #: Monotonic dataset-mutation counter.  A static workspace stays
        #: at 0 forever; :class:`~repro.core.dynamic.DynamicWorkspace`
        #: bumps it on every update path, so any result derived from the
        #: dataset (the query service's versioned result cache, decoded
        #: leaf arrays) can key on it and never survive a mutation.
        self.data_version = 0
        self.stats = IOStats()
        self.tracer: Tracer | NoopTracer = NOOP_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)
        self.buffer_pool = (
            LRUBufferPool(buffer_pool_pages) if buffer_pool_pages else None
        )
        # Decoded leaf arrays, shared by all methods and all queries over
        # this workspace (the decode is CPU-only; page reads are charged
        # by the caller before consulting the cache, so io_total never
        # depends on cache state).
        self.leaf_cache = DecodedLeafCache()

        # Precompute dnn(c, F) — shared by every method, including SS.
        # Callers maintaining the join incrementally (e.g. greedy
        # multi-facility selection) can hand the vector in directly.
        if precomputed_dnn is not None:
            if len(precomputed_dnn) != len(instance.clients):
                raise ValueError(
                    "precomputed_dnn length does not match the client count"
                )
            dnn = [float(d) for d in precomputed_dnn]
        else:
            dnn = _JOIN_METHODS[join_method](instance.clients, instance.facilities)
        weights = (
            instance.client_weights
            if instance.client_weights is not None
            else [1.0] * len(instance.clients)
        )
        self.clients: list[Client] = [
            Client(i, p[0], p[1], d, w)
            for i, (p, d, w) in enumerate(zip(instance.clients, dnn, weights))
        ]
        self.facilities: list[Site] = [
            Site(i, p[0], p[1]) for i, p in enumerate(instance.facilities)
        ]
        self.potentials: list[Site] = [
            Site(i, p[0], p[1]) for i, p in enumerate(instance.potentials)
        ]

        # Dense arrays for the vectorised scan baseline and the oracle.
        self.client_xyd = np.array(
            [(c.x, c.y, c.dnn) for c in self.clients], dtype=np.float64
        ).reshape(len(self.clients), 3)
        self.client_w = np.array([c.weight for c in self.clients], dtype=np.float64)
        self.potential_xy = np.array(
            [(s.x, s.y) for s in self.potentials], dtype=np.float64
        ).reshape(len(self.potentials), 2)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def n_c(self) -> int:
        return len(self.clients)

    @property
    def n_f(self) -> int:
        return len(self.facilities)

    @property
    def n_p(self) -> int:
        return len(self.potentials)

    def reset_stats(self) -> None:
        """Clear I/O counters (and cold-start the buffer pool, if any).

        The decoded-leaf cache deliberately survives: it caches a CPU
        artefact, never a charge, so keeping it warm across queries
        cannot perturb I/O accounting.
        """
        self.stats.reset()
        if self.buffer_pool is not None:
            self.buffer_pool.clear()

    def invalidate_leaf_cache(self) -> None:
        """Drop every decoded leaf array (after any data mutation)."""
        self.leaf_cache.clear()

    def bump_data_version(self) -> None:
        """Record a dataset mutation.

        Bumps :attr:`data_version` and drops the decoded-leaf cache, so
        both version-keyed result caches and decoded leaves observe the
        mutation — regardless of which structures the mutation touched
        (in-place ``client.dnn`` updates, for instance, never pass
        through an R-tree insert/delete and so never bump a tree
        version).
        """
        self.data_version += 1
        self.invalidate_leaf_cache()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Tracer) -> None:
        """Route spans and per-span I/O attribution through ``tracer``.

        Every structure charges the shared :class:`IOStats`, so binding
        the tracer there is enough for all files and trees at once.
        """
        self.tracer = tracer
        self.stats.bind_tracer(tracer)

    def detach_tracer(self) -> None:
        """Restore the zero-overhead no-op tracer."""
        self.tracer = NOOP_TRACER
        self.stats.bind_tracer(None)

    @cached_property
    def data_bounds(self) -> "Rect":
        """The instance's declared domain, grown to cover every point.

        CSV-loaded or user-built instances may hold points outside the
        default domain rectangle; clipping regions (the QVC method) must
        never exclude them, so all clipping uses this effective bound.
        """
        bounds = self.instance.domain
        for points in (
            self.instance.clients,
            self.instance.facilities,
            self.instance.potentials,
        ):
            for p in points:
                bounds = bounds.union_point(p)
        return bounds

    # ------------------------------------------------------------------
    # Flat files (SS, QVC)
    # ------------------------------------------------------------------
    @cached_property
    def client_file(self) -> BlockFile:
        """Client records as ``(x, y, dnn, weight)`` rows; the 28-byte
        slot models the paper's unweighted record (weights are an
        extension and ride along without changing the block maths)."""
        data = np.column_stack([self.client_xyd, self.client_w])
        return BlockFile(
            "file.C",
            data,
            CLIENT_RECORD,
            self.stats,
            self.buffer_pool,
            self.page_size,
        )

    @cached_property
    def potential_file(self) -> BlockFile:
        """Potential locations as ``(x, y)`` rows in 20-byte slots."""
        return BlockFile(
            "file.P",
            self.potential_xy,
            POINT_RECORD,
            self.stats,
            self.buffer_pool,
            self.page_size,
        )

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def _build_point_tree(self, name: str, sites: Sequence, layout) -> RTree:
        tree = RTree(
            name,
            self.stats,
            leaf_layout=layout,
            buffer_pool=self.buffer_pool,
            page_size=self.page_size,
        )
        items = [(Rect(s.x, s.y, s.x, s.y), s) for s in sites]
        if self.use_bulk_load:
            bulk_load(tree, items)
        else:
            for mbr, payload in items:
                tree.insert(mbr, payload)
        return tree

    @cached_property
    def r_c(self) -> RTree:
        """``R_C``: R-tree over client points (payloads are Clients).

        Entries are MBR + pointer (the paper: "every entry of R_C stores
        only its MBR and a child node pointer"); the 36-byte layout
        applies at leaves too.
        """
        return self._build_point_tree("R_C", self.clients, RTREE_ENTRY)

    @cached_property
    def r_f(self) -> RTree:
        """``R_F``: R-tree over existing facilities."""
        return self._build_point_tree("R_F", self.facilities, RTREE_ENTRY)

    @cached_property
    def r_p(self) -> RTree:
        """``R_P``: R-tree over potential locations."""
        return self._build_point_tree("R_P", self.potentials, RTREE_ENTRY)

    @cached_property
    def rnn_tree(self) -> RTree:
        """``R_C^n``: the extra RNN-tree required by the NFC method."""
        return build_rnn_tree(
            "R_C^n",
            self.stats,
            self.clients,
            point_of=lambda c: Point(c.x, c.y),
            dnn_of=lambda c: c.dnn,
            buffer_pool=self.buffer_pool,
            page_size=self.page_size,
            use_bulk_load=self.use_bulk_load,
        )

    @cached_property
    def mnd_tree(self) -> MNDTree:
        """``R_C^m``: the MND-augmented client tree of the MND method."""
        tree = MNDTree(
            "R_C^m",
            self.stats,
            radius_of=lambda c: c.dnn,
            buffer_pool=self.buffer_pool,
            page_size=self.page_size,
        )
        items = [(Rect(c.x, c.y, c.x, c.y), c) for c in self.clients]
        if self.use_bulk_load:
            bulk_load(tree, items)
        else:
            for mbr, payload in items:
                tree.insert(mbr, payload)
        return tree

    def __repr__(self) -> str:
        return (
            f"Workspace({self.instance.name!r}, n_c={self.n_c}, n_f={self.n_f}, "
            f"n_p={self.n_p})"
        )
