"""The common interface of all query methods.

Every method follows the solution framework of Section III-B — identify
influence sets, accumulate distance reductions, return the argmax — so
the base class owns the selection/measurement protocol and subclasses
implement a single hook, ``_compute_distance_reductions``.

Design note (DESIGN.md §2): the paper's pseudocode compares partial
``dr`` values against ``optLoc`` inside leaf-level loops, which is
incorrect whenever an influence set spans multiple client leaves; the
methods here accumulate the full ``dr`` vector during the traversal and
take the argmax at the end, preserving the traversal (and hence I/O
pattern) while guaranteeing correctness.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.types import SelectionResult, Site
from repro.core.workspace import Workspace
from repro.rtree.frontier import DEFAULT_TASK_TARGET

if TYPE_CHECKING:
    from repro.core.plan import StageSpec


class LocationSelector(ABC):
    """Abstract base of SS, QVC, NFC and MND."""

    #: Method name as used in the paper's figures.
    name: ClassVar[str] = "?"

    #: How many tasks the parallel plan aims to split a traversal into.
    #: Changing it regroups the ordered float reduction (still
    #: deterministic per value, and I/O totals are unaffected), so the
    #: engine keeps it fixed across worker counts.
    task_target: int = DEFAULT_TASK_TARGET

    def __init__(self, workspace: Workspace):
        self.ws = workspace
        self._dr: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _compute_distance_reductions(self) -> np.ndarray:
        """``dr(p)`` for every potential location (the method's core)."""

    def execution_plan(self) -> list["StageSpec"]:
        """The method's traversal as task-splittable stages.

        Consumed by :mod:`repro.exec`; the serial :meth:`select` path
        does not require it, so auxiliary selectors may leave it
        unimplemented.
        """
        raise NotImplementedError(
            f"{self.name} does not expose a parallel execution plan"
        )

    def prepare(self) -> None:
        """Materialise the structures this method queries.

        Called (implicitly by :meth:`select`, or explicitly by the
        experiment harness) so that index construction never pollutes
        query-time measurements.
        """

    def index_pages(self) -> int:
        """Total index size in pages — the paper's index-size metric."""
        return 0

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def select(self) -> SelectionResult:
        """Run the query: returns the best potential location with
        measurements (wall time, I/Os, index size)."""
        self.prepare()
        self.ws.reset_stats()
        started = time.perf_counter()
        with self.ws.tracer.span(f"query.{self.name}"):
            dr = self._compute_distance_reductions()
        cpu = time.perf_counter() - started
        self._dr = dr
        best = int(np.argmax(dr))  # ties resolve to the smallest id
        io_total = self.ws.stats.total_reads
        return SelectionResult(
            method=self.name,
            location=self.ws.potentials[best],
            dr=float(dr[best]),
            # Simulated wall time of the paper's disk-based setting: CPU
            # plus one page-read latency per counted I/O.
            elapsed_s=cpu + io_total * self.ws.io_latency_s,
            cpu_s=cpu,
            io_total=io_total,
            io_reads=self.ws.stats.snapshot(),
            index_pages=self.index_pages(),
        )

    def select_topk(self, k: int) -> list[tuple[Site, float]]:
        """The ``k`` best potential locations by distance reduction.

        A natural extension of the query (cf. top-k influential location
        selection, CIKM 2011 [16]); every method supports it for free
        because all of them materialise the full ``dr`` vector.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._dr is None:
            self.select()
        assert self._dr is not None
        k = min(k, len(self._dr))
        # Sort by (-dr, id) for a deterministic ranking.
        order = np.lexsort((np.arange(len(self._dr)), -self._dr))[:k]
        return [(self.ws.potentials[int(i)], float(self._dr[int(i)])) for i in order]

    def distance_reductions(self) -> np.ndarray:
        """The full ``dr`` vector from the last run (read-only copy)."""
        if self._dr is None:
            self.select()
        assert self._dr is not None
        return self._dr.copy()
