"""Dynamic workspace updates — incremental-first.

Section VI motivates the MND method with dynamic environments: "In
dynamic environments, insertions and deletions on data occur
frequently.  Maintaining two indexes on the dataset C makes database
management ... more complicated".  ``DynamicWorkspace`` extends
:class:`~repro.core.workspace.Workspace` with live updates that keep
every materialised structure consistent **in place**:

* **client arrival/departure** — the ``dnn`` comes from one grid NN
  lookup (:class:`~repro.knnjoin.incremental.DnnMaintainer`), the dense
  arrays gain/lose one row, and the point enters/leaves ``R_C``, the
  RNN-tree (with its NFC square) and the MND tree (whose augmentation
  is maintained by the tree's own hooks);
* **facility opening/closing** — the maintainer finds the affected
  clients with one vectorised pass; exactly those clients' NFCs move:
  they are deleted and reinserted in the RNN- and MND-trees with their
  new radii (exact MBR tightening via the trees' refresh hooks), their
  ``dnn`` column updates in place, and ``R_F`` gains/loses one entry —
  no structure is rebuilt.

Every distance uses the grid join's ``sqrt(dx*dx + dy*dy)`` formula,
so the maintained state is **bit-identical** to a from-scratch rebuild
after any mutation stream (the ``repro.churn`` parity twin asserts
this).  Facility ids are minted by a counter and never reused — a
closure leaves a hole instead of renumbering, which is what lets
``R_F`` shed one entry instead of being dropped wholesale.

Each mutation also publishes its **affected region** — the union of
the old and new NFC bounding boxes of every client whose state changed
— to the workspace :class:`~repro.core.regions.RegionClock`, which
bumps the ``select``/``evaluate`` sub-epochs only when the region can
actually change those answers.  Version-keyed result caches key on the
sub-epochs, so spatially disjoint mutations leave them warm.

Flat files are still rebuilt lazily (they are scan structures;
rebuilding is exactly what a real system's extent map does on append);
``data_bounds`` is maintained incrementally and re-derived only when a
boundary point departs.
"""

from __future__ import annotations

from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from repro.core.regions import RegionClock, region_covers_any
from repro.core.types import Client, Site
from repro.core.workspace import Workspace
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.knnjoin.incremental import DnnMaintainer
from repro.rtree.mnd_tree import MNDTree
from repro.rtree.rtree import RTree


class DynamicWorkspace(Workspace):
    """A workspace supporting incremental client and facility updates."""

    # Structures rebuilt lazily after a mutation that touches them
    # (cheap scans; the dense arrays and trees update in place).
    _LAZY = ("client_file", "potential_file", "data_bounds")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Mutation clock with answer-scoped sub-epochs; caches key on
        #: :meth:`RegionClock.version_for` instead of ``data_version``.
        self.region_clock = RegionClock()

    # ------------------------------------------------------------------
    # Incremental maintenance plumbing
    # ------------------------------------------------------------------
    @property
    def maintainer(self) -> DnnMaintainer:
        """The lazily-built incremental NN-join engine, seeded from the
        workspace's current state (so precomputed ``dnn`` vectors — e.g.
        shard tiles — are honoured bit-for-bit)."""
        m = self.__dict__.get("_dnn_maintainer")
        if m is None:
            m = DnnMaintainer(
                [Point(c.x, c.y) for c in self.clients],
                [Point(f.x, f.y) for f in self.facilities],
                dnn=self.client_xyd[:, 2],
            )
            self.__dict__["_dnn_maintainer"] = m
        return m

    def _invalidate(self, *names: str) -> None:
        """Drop lazily-rebuilt structures (flat files / bounds)."""
        for name in names:
            self.__dict__.pop(name, None)

    def _note_mutation(
        self, region: Optional[Rect], *, client_state_changed: bool
    ) -> None:
        """Publish one mutation: bump ``data_version`` (every mutation,
        the legacy contract) and advance the region clock's sub-epochs
        by what the mutation can actually affect."""
        self.data_version += 1
        affects_select = region is not None and region_covers_any(
            region, self.potential_xy
        )
        self.region_clock.advance(
            region,
            affects_select=affects_select,
            affects_evaluate=client_state_changed,
        )

    def _grow_bounds(self, p: Point) -> None:
        """Keep a materialised ``data_bounds`` exact under insertion."""
        bounds = self.__dict__.get("data_bounds")
        if bounds is not None:
            self.__dict__["data_bounds"] = bounds.union_point(p)

    def _shrink_bounds(self, x: float, y: float) -> None:
        """Re-derive ``data_bounds`` lazily only when a boundary point
        departs (an interior removal cannot move the MBR)."""
        bounds = self.__dict__.get("data_bounds")
        if bounds is not None and (
            x in (bounds.xmin, bounds.xmax) or y in (bounds.ymin, bounds.ymax)
        ):
            del self.__dict__["data_bounds"]

    # ------------------------------------------------------------------
    # Trees: bind the scoped leaf cache on construction
    # ------------------------------------------------------------------
    @cached_property
    def r_c(self) -> RTree:
        tree = Workspace.r_c.func(self)
        tree.bind_leaf_cache(self.leaf_cache)
        return tree

    @cached_property
    def r_f(self) -> RTree:
        tree = Workspace.r_f.func(self)
        tree.bind_leaf_cache(self.leaf_cache)
        return tree

    @cached_property
    def rnn_tree(self) -> RTree:
        tree = Workspace.rnn_tree.func(self)
        tree.bind_leaf_cache(self.leaf_cache)
        return tree

    @cached_property
    def mnd_tree(self) -> MNDTree:
        tree = Workspace.mnd_tree.func(self)
        tree.bind_leaf_cache(self.leaf_cache)
        return tree

    # ------------------------------------------------------------------
    # Client updates
    # ------------------------------------------------------------------
    def _take_client_id(self) -> int:
        """A fresh, never-reused client id (removals leave holes)."""
        counter = self.__dict__.get("_cid_counter")
        if counter is None:
            counter = max((c.cid for c in self.clients), default=-1) + 1
        self.__dict__["_cid_counter"] = counter + 1
        return counter

    def add_client(
        self, point: Point | tuple[float, float], weight: float = 1.0
    ) -> Client:
        """A new client arrives; returns its record (with fresh dnn)."""
        if weight < 0:
            raise ValueError("client weights must be non-negative")
        p = Point(*point)
        dnn = self.maintainer.add_client(p)
        client = Client(self._take_client_id(), p[0], p[1], dnn, weight)
        self.clients.append(client)
        if self.instance.client_weights is None and weight != 1.0:
            # The instance's implicit all-ones weights become explicit the
            # first time a weighted client arrives, so a from-scratch
            # rebuild over the instance reproduces this workspace exactly.
            self.instance.client_weights = [1.0] * len(self.instance.clients)
        self.instance.clients.append(p)
        if self.instance.client_weights is not None:
            self.instance.client_weights.append(float(weight))
        self.client_xyd = np.vstack(
            [self.client_xyd, np.array([[p[0], p[1], dnn]], dtype=np.float64)]
        )
        self.client_w = np.append(self.client_w, float(weight))
        self._invalidate("client_file")
        self._grow_bounds(p)

        point_rect = Rect.from_point(p)
        nfc_mbr = Circle(p, dnn).mbr()
        if "r_c" in self.__dict__:
            self.r_c.insert(point_rect, client)
        if "rnn_tree" in self.__dict__:
            self.rnn_tree.insert(nfc_mbr, client)
        if "mnd_tree" in self.__dict__:
            self.mnd_tree.insert(point_rect, client)
        self._note_mutation(nfc_mbr, client_state_changed=True)
        return client

    def remove_client(self, client: Client) -> None:
        """A client departs; all client structures drop it."""
        try:
            index = self.clients.index(client)
        except ValueError:
            raise ValueError(f"unknown client {client!r}") from None
        self.maintainer.remove_client(index)
        del self.clients[index]
        del self.instance.clients[index]
        if self.instance.client_weights is not None:
            del self.instance.client_weights[index]
        self.client_xyd = np.delete(self.client_xyd, index, axis=0)
        self.client_w = np.delete(self.client_w, index)
        self._invalidate("client_file")
        self._shrink_bounds(client.x, client.y)

        point_rect = Rect(client.x, client.y, client.x, client.y)
        nfc_mbr = Circle(Point(client.x, client.y), client.dnn).mbr()
        if "r_c" in self.__dict__:
            assert self.r_c.delete(point_rect, client)
        if "rnn_tree" in self.__dict__:
            assert self.rnn_tree.delete(nfc_mbr, client)
        if "mnd_tree" in self.__dict__:
            assert self.mnd_tree.delete(point_rect, client)
        self._note_mutation(nfc_mbr, client_state_changed=True)

    # ------------------------------------------------------------------
    # Facility updates
    # ------------------------------------------------------------------
    def _take_facility_id(self) -> int:
        """A fresh, never-reused facility id (closures leave holes, so
        ``R_F`` entries stay valid and shed incrementally)."""
        counter = self.__dict__.get("_sid_counter")
        if counter is None:
            counter = max((f.sid for f in self.facilities), default=-1) + 1
        self.__dict__["_sid_counter"] = counter + 1
        return counter

    def add_facility(self, point: Point | tuple[float, float]) -> Site:
        """A facility opens: affected clients' dnn (and NFCs) shrink."""
        p = Point(*point)
        # Materialise the maintainer from the *pre-mutation* facility
        # set before the lists change underneath its lazy constructor.
        maintainer = self.maintainer
        site = Site(self._take_facility_id(), p[0], p[1])
        self.facilities.append(site)
        self.instance.facilities.append(p)
        self._grow_bounds(p)
        if "r_f" in self.__dict__:
            self.r_f.insert(Rect.from_point(p), site)

        indices, old_dnn, new_dnn = maintainer.open_facility(p)
        region = self._apply_dnn_changes(indices, old_dnn, new_dnn)
        self._note_mutation(region, client_state_changed=len(indices) > 0)
        return site

    def remove_facility(self, site: Site) -> None:
        """A facility closes: its clients fall back to the runner-up."""
        if len(self.facilities) <= 1:
            raise ValueError("cannot remove the last facility")
        try:
            index = self.facilities.index(site)
        except ValueError:
            raise ValueError(f"unknown facility {site!r}") from None
        maintainer = self.maintainer  # build from pre-mutation state
        del self.facilities[index]
        del self.instance.facilities[index]
        if "r_f" in self.__dict__:
            assert self.r_f.delete(Rect(site.x, site.y, site.x, site.y), site)
        self._shrink_bounds(site.x, site.y)

        indices, old_dnn, new_dnn = maintainer.close_facility(
            Point(site.x, site.y)
        )
        region = self._apply_dnn_changes(indices, old_dnn, new_dnn)
        self._note_mutation(region, client_state_changed=len(indices) > 0)

    def _apply_dnn_changes(
        self,
        indices: Sequence[int],
        old_dnn: Sequence[float],
        new_dnn: Sequence[float],
    ) -> Optional[Rect]:
        """Move the given clients' NFCs to their new radii, keeping every
        radius-dependent structure consistent in place.  Returns the
        union of the affected old∪new NFC boxes (the mutation region),
        or None when nothing changed."""
        if len(indices) == 0:
            return None
        region: Optional[Rect] = None
        touched: list[tuple[Rect, Client]] = []
        for i, old, radius in zip(indices, old_dnn, new_dnn):
            client = self.clients[int(i)]
            point = Point(client.x, client.y)
            point_rect = Rect(client.x, client.y, client.x, client.y)
            old_mbr = Circle(point, float(old)).mbr()
            new_mbr = Circle(point, float(radius)).mbr()
            both = old_mbr.union(new_mbr)
            region = both if region is None else region.union(both)
            if "rnn_tree" in self.__dict__:
                assert self.rnn_tree.delete(old_mbr, client)
            if "mnd_tree" in self.__dict__:
                # Delete while the old radius is still in effect so the
                # condense step recomputes consistent MNDs, then update
                # and reinsert.
                assert self.mnd_tree.delete(point_rect, client)
            client.dnn = float(radius)
            if "rnn_tree" in self.__dict__:
                self.rnn_tree.insert(new_mbr, client)
            if "mnd_tree" in self.__dict__:
                self.mnd_tree.insert(point_rect, client)
            touched.append((point_rect, client))
        self.client_xyd[np.asarray(indices, dtype=np.intp), 2] = np.asarray(
            new_dnn, dtype=np.float64
        )
        self._invalidate("client_file")
        if "r_c" in self.__dict__:
            # R_C's leaf columns include dnn; the in-place update never
            # passes through an insert/delete, so dirty those leaves
            # explicitly.
            self.r_c.touch_data_entries(touched)
        return region
