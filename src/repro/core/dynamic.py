"""Dynamic workspace updates.

Section VI motivates the MND method with dynamic environments: "In
dynamic environments, insertions and deletions on data occur
frequently.  Maintaining two indexes on the dataset C makes database
management ... more complicated".  ``DynamicWorkspace`` extends
:class:`~repro.core.workspace.Workspace` with live updates that keep
every materialised structure consistent:

* **client arrival/departure** — the point enters/leaves ``R_C``, the
  RNN-tree (with its NFC square) and the MND tree (whose augmentation
  is maintained by the tree's own hooks);
* **facility opening/closing** — the ``dnn`` of affected clients
  changes, which *moves their NFCs*: those clients are deleted and
  reinserted in the RNN- and MND-trees with their new radii, and ``R_F``
  is updated.

Flat files and dense arrays are rebuilt lazily (they are scan
structures; rebuilding is exactly what a real system's extent map does
on append).  After any update sequence, all four methods answer the
refreshed query correctly — the test-suite checks this against the
brute-force oracle, and the MND tree passes full validation.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Client, Site
from repro.core.workspace import Workspace
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class DynamicWorkspace(Workspace):
    """A workspace supporting client and facility updates."""

    # Structures rebuilt lazily after any mutation (cheap scans/arrays).
    _LAZY = ("client_file", "potential_file", "data_bounds")

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _invalidate(self, *names: str) -> None:
        """Drop lazily-built structures and record the mutation.

        Every update path (client arrival/departure, facility
        opening/closing, radius moves) funnels through at least one
        ``_invalidate`` call, so bumping the workspace data version here
        guarantees no mutation can ever serve stale derived state: the
        decoded-leaf cache is cleared (structural tree changes already
        version it, but in-place ``client.dnn`` updates never touch an
        R-tree) and version-keyed result caches — e.g. the query
        service's — stop matching.  The clear is cheap: decodes rebuild
        lazily, costing CPU only, never I/O.
        """
        for name in names:
            self.__dict__.pop(name, None)
        self.bump_data_version()

    def _refresh_client_arrays(self) -> None:
        self.client_xyd = np.array(
            [(c.x, c.y, c.dnn) for c in self.clients], dtype=np.float64
        ).reshape(len(self.clients), 3)
        self.client_w = np.array([c.weight for c in self.clients], dtype=np.float64)
        self._invalidate("client_file", "data_bounds")

    # ------------------------------------------------------------------
    # Client updates
    # ------------------------------------------------------------------
    def _take_client_id(self) -> int:
        """A fresh, never-reused client id (removals leave holes)."""
        counter = self.__dict__.get("_cid_counter")
        if counter is None:
            counter = max((c.cid for c in self.clients), default=-1) + 1
        self.__dict__["_cid_counter"] = counter + 1
        return counter

    def add_client(
        self, point: Point | tuple[float, float], weight: float = 1.0
    ) -> Client:
        """A new client arrives; returns its record (with fresh dnn)."""
        if weight < 0:
            raise ValueError("client weights must be non-negative")
        p = Point(*point)
        dnn = min(p.distance_to(Point(f.x, f.y)) for f in self.facilities)
        client = Client(self._take_client_id(), p[0], p[1], dnn, weight)
        self.clients.append(client)
        self.instance.clients.append(p)
        self._refresh_client_arrays()

        point_rect = Rect(client.x, client.y, client.x, client.y)
        if "r_c" in self.__dict__:
            self.r_c.insert(point_rect, client)
        if "rnn_tree" in self.__dict__:
            self.rnn_tree.insert(Circle(p, client.dnn).mbr(), client)
        if "mnd_tree" in self.__dict__:
            self.mnd_tree.insert(point_rect, client)
        return client

    def remove_client(self, client: Client) -> None:
        """A client departs; all client structures drop it."""
        try:
            index = self.clients.index(client)
        except ValueError:
            raise ValueError(f"unknown client {client!r}") from None
        del self.clients[index]
        del self.instance.clients[index]
        self._refresh_client_arrays()

        point_rect = Rect(client.x, client.y, client.x, client.y)
        if "r_c" in self.__dict__:
            assert self.r_c.delete(point_rect, client)
        if "rnn_tree" in self.__dict__:
            nfc_mbr = Circle(Point(client.x, client.y), client.dnn).mbr()
            assert self.rnn_tree.delete(nfc_mbr, client)
        if "mnd_tree" in self.__dict__:
            assert self.mnd_tree.delete(point_rect, client)

    # ------------------------------------------------------------------
    # Facility updates
    # ------------------------------------------------------------------
    def add_facility(self, point: Point | tuple[float, float]) -> Site:
        """A facility opens: affected clients' dnn (and NFCs) shrink."""
        p = Point(*point)
        site = Site(len(self.facilities), p[0], p[1])
        self.facilities.append(site)
        self.instance.facilities.append(p)
        self._invalidate("data_bounds")
        if "r_f" in self.__dict__:
            self.r_f.insert(Rect(p[0], p[1], p[0], p[1]), site)

        affected = [c for c in self.clients if Point(c.x, c.y).distance_to(p) < c.dnn]
        self._update_client_radii(
            affected, [Point(c.x, c.y).distance_to(p) for c in affected]
        )
        return site

    def remove_facility(self, site: Site) -> None:
        """A facility closes: its clients fall back to the runner-up."""
        if len(self.facilities) <= 1:
            raise ValueError("cannot remove the last facility")
        try:
            index = self.facilities.index(site)
        except ValueError:
            raise ValueError(f"unknown facility {site!r}") from None
        del self.facilities[index]
        del self.instance.facilities[index]
        # Re-number to keep Site ids == list positions.
        self.facilities = [Site(i, s.x, s.y) for i, s in enumerate(self.facilities)]
        self._invalidate("r_f", "data_bounds")

        closed = Point(site.x, site.y)
        affected: list[Client] = []
        new_radii: list[float] = []
        for c in self.clients:
            if abs(Point(c.x, c.y).distance_to(closed) - c.dnn) <= 1e-9:
                affected.append(c)
                new_radii.append(
                    min(
                        Point(c.x, c.y).distance_to(Point(f.x, f.y))
                        for f in self.facilities
                    )
                )
        self._update_client_radii(affected, new_radii)

    def _update_client_radii(
        self, clients: list[Client], new_radii: list[float]
    ) -> None:
        """Move the given clients' NFCs to their new radii, keeping the
        radius-dependent indexes consistent."""
        for client, radius in zip(clients, new_radii):
            point = Point(client.x, client.y)
            point_rect = Rect(client.x, client.y, client.x, client.y)
            if "rnn_tree" in self.__dict__:
                old_mbr = Circle(point, client.dnn).mbr()
                assert self.rnn_tree.delete(old_mbr, client)
            if "mnd_tree" in self.__dict__:
                # Delete while the old radius is still in effect so the
                # condense step recomputes consistent MNDs, then update
                # and reinsert.
                assert self.mnd_tree.delete(point_rect, client)
            client.dnn = radius
            if "rnn_tree" in self.__dict__:
                self.rnn_tree.insert(Circle(point, radius).mbr(), client)
            if "mnd_tree" in self.__dict__:
                self.mnd_tree.insert(point_rect, client)
        if clients:
            self._refresh_client_arrays()
