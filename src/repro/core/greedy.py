"""Greedy multi-facility selection — an extension of the paper's query.

The paper selects *one* location; real planning (its urban-development
motivation) adds facilities over time.  ``select_sequence`` answers the
natural follow-up: choose ``k`` locations from ``P``, one at a time, each
time running the min-dist location selection query against the *updated*
facility set and maintaining ``dnn(c, F)`` incrementally (exactly the
amortised-maintenance regime Section VII-A assumes).

Greedy selection is the standard approach for this monotone objective:
each step is optimal given the facilities already built.  (The k-median
style joint optimum is NP-hard; the paper's query is the greedy step.)
"""

from __future__ import annotations

from typing import Sequence

from repro.core.registry import make_selector
from repro.core.types import SelectionResult, Site
from repro.core.workspace import Workspace
from repro.datasets.generators import SpatialInstance
from repro.geometry.point import Point
from repro.knnjoin.incremental import DnnMaintainer


def select_sequence(
    instance: SpatialInstance,
    k: int,
    method: str = "MND",
) -> list[SelectionResult]:
    """Greedily choose ``k`` locations from ``instance.potentials``.

    Returns one :class:`~repro.core.types.SelectionResult` per step, in
    selection order; each step's ``dr`` is measured against the facility
    set including all previously selected locations.  Selected locations
    leave the candidate pool.  ``k`` is clamped to the candidate count.

    Location ids in the results refer to the *original* potential list.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    maintainer = DnnMaintainer(instance.clients, instance.facilities)
    remaining: list[tuple[int, Point]] = [
        (i, Point(*p)) for i, p in enumerate(instance.potentials)
    ]
    results: list[SelectionResult] = []
    for __ in range(min(k, len(remaining))):
        step_instance = SpatialInstance(
            name=f"{instance.name}#greedy{len(results)}",
            clients=instance.clients,
            facilities=list(maintainer.facilities),
            potentials=[p for __, p in remaining],
            domain=instance.domain,
        )
        # Reuse the incrementally maintained dnn vector instead of a
        # fresh join: one initial join + k cheap updates for the whole
        # sequence (Section VII-A's amortised-maintenance regime).
        ws = Workspace(step_instance, precomputed_dnn=maintainer.distances)
        result = make_selector(ws, method).select()
        local_id = result.location.sid
        original_id, chosen = remaining.pop(local_id)
        maintainer.add_facility(chosen)
        results.append(
            SelectionResult(
                method=result.method,
                location=Site(original_id, chosen[0], chosen[1]),
                dr=result.dr,
                elapsed_s=result.elapsed_s,
                cpu_s=result.cpu_s,
                io_total=result.io_total,
                io_reads=result.io_reads,
                index_pages=result.index_pages,
            )
        )
    return results


def coverage_curve(results: Sequence[SelectionResult]) -> list[float]:
    """Cumulative distance reduction after each greedy step."""
    out: list[float] = []
    acc = 0.0
    for r in results:
        acc += r.dr
        out.append(acc)
    return out
