"""The min-dist location selection query — public API.

Quick one-call usage::

    from repro.core import select_location
    result = select_location(clients, facilities, potentials)  # MND method
    print(result.location, result.dr)

Full control::

    from repro.core import Workspace, MaximumNFCDistance
    from repro.datasets import make_instance
    ws = Workspace(make_instance(10_000, 500, 500, rng=7))
    result = MaximumNFCDistance(ws).select()

All four methods of the paper are exposed; they answer the same query
and differ in cost and in which indexes they require:

==========  ==============================  =======================
method      class                           indexes
==========  ==============================  =======================
``"SS"``    :class:`SequentialScan`         none
``"QVC"``   :class:`QuasiVoronoiCell`       ``R_C``, ``R_F``
``"NFC"``   :class:`NearestFacilityCircle`  ``R_C``, ``R_C^n``, ``R_P``
``"MND"``   :class:`MaximumNFCDistance`     ``R_C^m``, ``R_P``
==========  ==============================  =======================
"""

from __future__ import annotations

from typing import Iterable

from repro.core.base import LocationSelector
from repro.core.closure import closure_damages, select_closure
from repro.core.continuous import ContinuousSelection
from repro.core.maxinf import MaxInfSelection
from repro.core.diskmode import DiskWorkspace, persist_indexes
from repro.core.dynamic import DynamicWorkspace
from repro.core.evaluate import compare_locations, evaluate_location
from repro.core.greedy import coverage_curve, select_sequence
from repro.core.mnd import MaximumNFCDistance
from repro.core.nfc import NearestFacilityCircle
from repro.core.plan import StageSpec
from repro.core.qvc import QuasiVoronoiCell
from repro.core.ss import SequentialScan
from repro.core.types import Client, SelectionResult, Site
from repro.core.workspace import Workspace
from repro.datasets.generators import SpatialInstance
from repro.geometry.point import Point

from repro.core.registry import METHODS, make_selector


def select_location(
    clients: Iterable[tuple[float, float]],
    facilities: Iterable[tuple[float, float]],
    potentials: Iterable[tuple[float, float]],
    method: str = "MND",
    client_weights: Iterable[float] | None = None,
) -> SelectionResult:
    """Answer one min-dist location selection query in a single call.

    Builds a throwaway workspace around plain ``(x, y)`` coordinate
    iterables and runs the chosen method (MND, the paper's recommended
    method, by default).  ``client_weights`` optionally scales each
    client's contribution (default: unweighted).
    """
    instance = SpatialInstance(
        name="adhoc",
        clients=[Point(*c) for c in clients],
        facilities=[Point(*f) for f in facilities],
        potentials=[Point(*p) for p in potentials],
        client_weights=list(client_weights) if client_weights is not None else None,
    )
    return make_selector(Workspace(instance), method).select()


__all__ = [
    "Client",
    "closure_damages",
    "ContinuousSelection",
    "MaxInfSelection",
    "compare_locations",
    "DiskWorkspace",
    "DynamicWorkspace",
    "evaluate_location",
    "persist_indexes",
    "coverage_curve",
    "select_closure",
    "select_sequence",
    "LocationSelector",
    "METHODS",
    "MaximumNFCDistance",
    "NearestFacilityCircle",
    "QuasiVoronoiCell",
    "SelectionResult",
    "SequentialScan",
    "Site",
    "StageSpec",
    "Workspace",
    "make_selector",
    "select_location",
]
