"""The min-dist facility closure query — the mirror extension.

The paper selects where to *open* a facility; planners equally often
must decide which facility to *close* (budget cuts, lease expiry) while
hurting clients the least.  Closing facility ``f`` increases the NFD of
exactly the clients whose nearest facility is ``f``; each such client
falls back to its *second*-nearest facility.  The damage of closing
``f`` is therefore

    ``damage(f) = sum over {c : NN(c) = f} ( dnn2(c) - dnn(c) )``

where ``dnn2`` is the distance to the second-nearest facility, and the
query returns the facility with minimum damage.  The machinery mirrors
the selection query: a 2-NN join plays the role of the ``dnn``
precomputation, and the same argmin-over-aggregates framework applies.

Requires at least two facilities (closing the last one leaves clients
stranded with infinite NFD).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.types import Site
from repro.geometry.point import Point
from repro.knnjoin.grid import FacilityGrid


def second_nearest_distances(
    clients: Sequence[Point], facilities: Sequence[Point]
) -> tuple[list[int], list[float], list[float]]:
    """Per client: index of its nearest facility, ``dnn`` and ``dnn2``.

    The 2-NN join is computed with the facility grid: the nearest
    facility comes from the ring search; removing it from consideration
    and re-querying yields the runner-up exactly.
    """
    if len(facilities) < 2:
        raise ValueError("the closure query requires at least two facilities")
    points = [Point(*f) for f in facilities]
    index_of: dict[Point, list[int]] = {}
    for i, f in enumerate(points):
        index_of.setdefault(f, []).append(i)
    grid = FacilityGrid(points)

    nearest_idx: list[int] = []
    dnn: list[float] = []
    dnn2: list[float] = []
    for c in clients:
        c = Point(*c)
        (d1, f1), (d2, __) = grid.nearest_two(c)
        twins = index_of[f1]
        if len(twins) > 1:
            # A co-located duplicate serves as the runner-up at the
            # same distance: closing either does no damage.
            d2 = d1
        nearest_idx.append(twins[0])
        dnn.append(d1)
        dnn2.append(d2)
    return nearest_idx, dnn, dnn2


def closure_damages(
    clients: Sequence[Point], facilities: Sequence[Point]
) -> np.ndarray:
    """``damage(f)`` for every facility."""
    nearest_idx, dnn, dnn2 = second_nearest_distances(clients, facilities)
    damages = np.zeros(len(facilities), dtype=np.float64)
    for f_idx, d1, d2 in zip(nearest_idx, dnn, dnn2):
        damages[f_idx] += d2 - d1
    return damages


def select_closure(
    clients: Sequence[Point], facilities: Sequence[Point]
) -> tuple[Site, float]:
    """The facility whose closure raises the total NFD the least.

    Ties break toward the smallest facility id.
    """
    damages = closure_damages(clients, facilities)
    best = int(np.argmin(damages))
    f = Point(*facilities[best])
    return Site(best, f[0], f[1]), float(damages[best])
