"""Brute-force reference implementations (correctness oracles).

These bypass all storage and index structures and evaluate the problem
definitions directly on dense arrays.  The test-suite pins every query
method to them; they are *not* baselines in the paper's sense (that is
the SS method) but ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Site
from repro.core.workspace import Workspace
from repro.geometry.point import Point


def distance_reductions(ws: Workspace) -> np.ndarray:
    """``dr(p)`` for every potential location, straight from Definition 2:
    ``dr(p) = sum over c in IS(p) of (dnn(c,F) - dist(c,p))``."""
    cx = ws.client_xyd[:, 0]
    cy = ws.client_xyd[:, 1]
    dnn = ws.client_xyd[:, 2]
    w = ws.client_w
    out = np.zeros(ws.n_p, dtype=np.float64)
    for i, (px, py) in enumerate(ws.potential_xy):
        d = np.hypot(cx - px, cy - py)
        out[i] = (np.clip(dnn - d, 0.0, None) * w).sum()
    return out


def influence_set(ws: Workspace, p: Site) -> list[int]:
    """Indices of the clients in ``IS(p)`` (strict inequality, Def. in
    Section III-A)."""
    cx = ws.client_xyd[:, 0]
    cy = ws.client_xyd[:, 1]
    dnn = ws.client_xyd[:, 2]
    d = np.hypot(cx - p.x, cy - p.y)
    return [int(i) for i in np.nonzero(d < dnn)[0]]


def select(ws: Workspace) -> tuple[Site, float]:
    """The optimal potential location and its distance reduction.

    Ties are broken toward the smallest potential-location id, the
    convention all methods in this library follow.
    """
    dr = distance_reductions(ws)
    best = int(np.argmax(dr))
    return ws.potentials[best], float(dr[best])


def objective_sum(ws: Workspace, extra: Site | Point | None = None) -> float:
    """The raw objective: ``sum over c of dnn(c, F u {extra})``.

    Evaluated without any precomputation — an independent cross-check
    that ``argmax dr`` and ``argmin sum-of-NFD`` agree (Definition 1 vs
    Definition 2).
    """
    cx = np.fromiter((c[0] for c in ws.instance.clients), dtype=np.float64)
    cy = np.fromiter((c[1] for c in ws.instance.clients), dtype=np.float64)
    best = np.full(len(cx), np.inf)
    sites: list[tuple[float, float]] = [(f.x, f.y) for f in ws.facilities]
    if extra is not None:
        ex, ey = (extra.x, extra.y) if isinstance(extra, Site) else (extra[0], extra[1])
        sites.append((ex, ey))
    for fx, fy in sites:
        np.minimum(best, np.hypot(cx - fx, cy - fy), out=best)
    return float(best.sum())
