"""Single-location evaluation reports.

Decision support rarely stops at "which candidate wins": planners want
to know *what a specific candidate would do*.  ``evaluate_location``
produces a full report for one potential location — its influence set,
distance reduction, and the average-NFD before/after — using the same
precomputed ``dnn`` machinery as the query methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Site
from repro.core.workspace import Workspace


@dataclass(frozen=True)
class LocationReport:
    """What establishing a facility at one candidate would achieve."""

    location: Site
    #: Client indices that would switch to the new facility.
    influenced_clients: tuple[int, ...]
    #: Total distance reduction ``dr(p)``.
    dr: float
    #: Average client-to-nearest-facility distance before / after.
    avg_nfd_before: float
    avg_nfd_after: float
    #: Largest single-client improvement.
    max_client_gain: float

    @property
    def influence_count(self) -> int:
        return len(self.influenced_clients)

    def format(self) -> str:
        return (
            f"candidate p{self.location.sid} at "
            f"({self.location.x:.2f}, {self.location.y:.2f}):\n"
            f"  clients influenced : {self.influence_count}\n"
            f"  distance reduction : {self.dr:.4f}\n"
            f"  avg NFD            : {self.avg_nfd_before:.4f} -> "
            f"{self.avg_nfd_after:.4f}\n"
            f"  best single gain   : {self.max_client_gain:.4f}"
        )


def evaluate_location(ws: Workspace, location: Site | int) -> LocationReport:
    """Evaluate one potential location (by ``Site`` or by id)."""
    if isinstance(location, int):
        try:
            site = ws.potentials[location]
        except IndexError:
            raise ValueError(
                f"no potential location with id {location} "
                f"(have 0..{ws.n_p - 1})"
            ) from None
    else:
        site = location

    if ws.n_c == 0:
        return LocationReport(
            location=site,
            influenced_clients=(),
            dr=0.0,
            avg_nfd_before=0.0,
            avg_nfd_after=0.0,
            max_client_gain=0.0,
        )

    cx = ws.client_xyd[:, 0]
    cy = ws.client_xyd[:, 1]
    dnn = ws.client_xyd[:, 2]
    dist = np.hypot(cx - site.x, cy - site.y)
    gain = np.clip(dnn - dist, 0.0, None)
    influenced = np.nonzero(dist < dnn)[0]

    before = float(dnn.sum())
    after = before - float(gain.sum())
    return LocationReport(
        location=site,
        influenced_clients=tuple(int(i) for i in influenced),
        dr=float(gain.sum()),
        avg_nfd_before=before / ws.n_c,
        avg_nfd_after=after / ws.n_c,
        max_client_gain=float(gain.max()) if len(gain) else 0.0,
    )


def compare_locations(ws: Workspace, ids: list[int]) -> list[LocationReport]:
    """Reports for several candidates, best first."""
    reports = [evaluate_location(ws, i) for i in ids]
    reports.sort(key=lambda r: (-r.dr, r.location.sid))
    return reports
