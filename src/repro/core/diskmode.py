"""Running queries against persisted (on-disk) indexes.

``persist_indexes`` freezes a workspace's query structures into binary
page files; ``DiskWorkspace`` reopens them read-only and duck-types
enough of :class:`~repro.core.workspace.Workspace` for all four paper
methods (SS, QVC, NFC, MND) to run unmodified — every node or block
fetched is decoded from real file bytes and counted as an I/O, making
this the closest simulation of the paper's disk-resident setting.

Persisted per workspace (``manifest.json`` records the layout):

========================  ==========================================
``r_c_m.pages``           ``R_C^m`` — MND-augmented client tree
``r_p.pages``             ``R_P`` — potential-location tree
``r_c.pages``             ``R_C`` — client point tree (QVC)
``r_f.pages``             ``R_F`` — facility tree (QVC)
``r_c_n.pages``           ``R_C^n`` — RNN-tree over NFCs (NFC)
``file_c.pages``          the flat client file (SS)
``file_p.pages``          the flat potential file (SS, QVC)
========================  ==========================================

Three backends serve the same files with identical answers and
identical I/O accounting (see ``repro.bench.scale`` for the
measurements):

* ``DiskWorkspace(..., mapped=False)`` over v1 (row) files — per-read
  ``seek``/``read`` syscalls, packed-record decode;
* ``mapped=True`` over v1 — zero-copy ``mmap`` views, packed decode;
* ``mapped=True`` over v2 (``leaf_format="columns"``) files — zero-copy
  views *and* zero decode: leaf pages are already the column blocks the
  batch kernels consume.

Typical flow::

    paths = persist_indexes(ws, directory, leaf_format="columns")
    frozen = DiskWorkspace(paths, stats=IOStats(), mapped=True)
    result = MaximumNFCDistance(frozen).select()   # answers from disk
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from functools import cached_property
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.types import Site
from repro.core.workspace import Workspace
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.rtree.persist import DiskRTree, save_rtree
from repro.storage.buffer import LRUBufferPool
from repro.storage.codecs import ClientCodec, SiteCodec
from repro.storage.diskblocks import DiskBlockFile, save_block_file
from repro.storage.leafcache import DecodedLeafCache
from repro.storage.records import CLIENT_RECORD, POINT_RECORD, PAGE_SIZE
from repro.storage.stats import IOStats

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class PersistedIndexes:
    """File locations of a frozen query workspace.

    The first four fields are the original MND-only persistence; the
    optional tail (default ``None``) is the full-workspace layout that
    lets every method run from disk.  A ``DiskWorkspace`` over an
    MND-only record still supports the MND method — touching any other
    structure raises with a pointer to ``persist_indexes``.
    """

    directory: Path
    mnd_tree_path: Path
    r_p_path: Path
    n_p: int
    r_c_path: Optional[Path] = None
    r_f_path: Optional[Path] = None
    rnn_tree_path: Optional[Path] = None
    client_file_path: Optional[Path] = None
    potential_file_path: Optional[Path] = None
    n_c: Optional[int] = None
    n_f: Optional[int] = None
    #: Effective data bounds ``(xmin, ymin, xmax, ymax)`` — the QVC
    #: clipping domain.  JSON float repr round-trips doubles exactly.
    bounds: Optional[tuple[float, float, float, float]] = None
    #: Leaf/block encoding of every page file: "rows" (v1) or "columns" (v2).
    leaf_format: str = "rows"


_PATH_FIELDS = (
    "mnd_tree_path",
    "r_p_path",
    "r_c_path",
    "r_f_path",
    "rnn_tree_path",
    "client_file_path",
    "potential_file_path",
)


def persist_indexes(
    ws: Workspace,
    directory: str | Path,
    leaf_format: str = "rows",
    full: bool = True,
) -> PersistedIndexes:
    """Serialise a workspace's query structures to ``directory``.

    With ``full`` (the default) every structure the four methods touch
    is written, plus a ``manifest.json`` so :func:`load_persisted` can
    reopen the directory without the source workspace; ``full=False``
    reproduces the original MND-only pair.  ``leaf_format="columns"``
    writes v2 (structure-of-arrays) leaf and block pages throughout.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    mnd_path = directory / "r_c_m.pages"
    r_p_path = directory / "r_p.pages"
    save_rtree(ws.mnd_tree, mnd_path, ClientCodec(), leaf_format=leaf_format)
    save_rtree(ws.r_p, r_p_path, SiteCodec(), leaf_format=leaf_format)
    if not full:
        return PersistedIndexes(
            directory=directory,
            mnd_tree_path=mnd_path,
            r_p_path=r_p_path,
            n_p=ws.n_p,
            leaf_format=leaf_format,
        )
    r_c_path = directory / "r_c.pages"
    r_f_path = directory / "r_f.pages"
    rnn_path = directory / "r_c_n.pages"
    file_c_path = directory / "file_c.pages"
    file_p_path = directory / "file_p.pages"
    save_rtree(ws.r_c, r_c_path, ClientCodec(), leaf_format=leaf_format)
    save_rtree(ws.r_f, r_f_path, SiteCodec(), leaf_format=leaf_format)
    save_rtree(ws.rnn_tree, rnn_path, ClientCodec(), leaf_format=leaf_format)
    # Block capacities are the *logical* per-page record counts of the
    # in-memory layouts, which pins block counts (and io_total) to the
    # memory workspace exactly.
    client_matrix = np.column_stack([ws.client_xyd, ws.client_w])
    save_block_file(
        file_c_path,
        client_matrix,
        CLIENT_RECORD.capacity(PAGE_SIZE),
        block_format=leaf_format,
    )
    save_block_file(
        file_p_path,
        ws.potential_xy,
        POINT_RECORD.capacity(PAGE_SIZE),
        block_format=leaf_format,
    )
    bounds = ws.data_bounds
    indexes = PersistedIndexes(
        directory=directory,
        mnd_tree_path=mnd_path,
        r_p_path=r_p_path,
        n_p=ws.n_p,
        r_c_path=r_c_path,
        r_f_path=r_f_path,
        rnn_tree_path=rnn_path,
        client_file_path=file_c_path,
        potential_file_path=file_p_path,
        n_c=ws.n_c,
        n_f=ws.n_f,
        bounds=(bounds.xmin, bounds.ymin, bounds.xmax, bounds.ymax),
        leaf_format=leaf_format,
    )
    _write_manifest(indexes)
    return indexes


def _write_manifest(indexes: PersistedIndexes) -> None:
    payload = {}
    for field in fields(PersistedIndexes):
        value = getattr(indexes, field.name)
        if field.name == "directory":
            continue
        if field.name in _PATH_FIELDS and value is not None:
            value = Path(value).name  # manifest stays relocatable
        if isinstance(value, tuple):
            value = list(value)
        payload[field.name] = value
    (indexes.directory / MANIFEST_NAME).write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def load_persisted(directory: str | Path) -> PersistedIndexes:
    """Reopen a persisted directory from its ``manifest.json``."""
    directory = Path(directory)
    manifest = directory / MANIFEST_NAME
    if not manifest.exists():
        raise FileNotFoundError(
            f"{manifest}: no manifest — was this directory written by "
            "persist_indexes(..., full=True)?"
        )
    payload = json.loads(manifest.read_text())
    kwargs = {"directory": directory}
    for field in fields(PersistedIndexes):
        if field.name == "directory":
            continue
        value = payload.get(field.name)
        if field.name in _PATH_FIELDS and value is not None:
            value = directory / value
        if field.name == "bounds" and value is not None:
            value = tuple(value)
        kwargs[field.name] = value
    return PersistedIndexes(**kwargs)


class DiskWorkspace:
    """A read-only workspace view over persisted indexes.

    Exposes every attribute the four methods touch — trees, flat files,
    ``potentials``, ``data_bounds``, ``stats``, ``leaf_cache``,
    ``io_latency_s`` — with each structure opened lazily on first use
    (the MND pair eagerly, to keep the original validation behaviour).
    ``mapped=True`` serves every page file through one ``mmap`` each
    (zero-copy reads); accounting is identical either way.  Mutating
    accessors do not exist.
    """

    def __init__(
        self,
        indexes: PersistedIndexes,
        stats: Optional[IOStats] = None,
        buffer_pool: Optional[LRUBufferPool] = None,
        io_latency_s: float = Workspace.DEFAULT_IO_LATENCY_S,
        mapped: bool = False,
    ):
        self.indexes = indexes
        self.stats = stats or IOStats()
        self.tracer = NOOP_TRACER
        self.buffer_pool = buffer_pool
        self.io_latency_s = io_latency_s
        self.mapped = mapped
        self.leaf_cache = DecodedLeafCache()
        self.mnd_tree = DiskRTree(
            "R_C^m",
            indexes.mnd_tree_path,
            ClientCodec(),
            self.stats,
            buffer_pool,
            radius_of=lambda c: c.dnn,
            mapped=mapped,
        )
        self.r_p = DiskRTree(
            "R_P",
            indexes.r_p_path,
            SiteCodec(),
            self.stats,
            buffer_pool,
            mapped=mapped,
        )
        # Rebuild the candidate table from the R_P leaves (ids are the
        # original candidate ids, so ordering by id restores it).
        sites = [entry.payload for entry in self.r_p.iter_leaf_entries()]
        sites.sort(key=lambda s: s.sid)
        self.potentials: list[Site] = sites
        if len(self.potentials) != indexes.n_p:
            raise ValueError(
                f"persisted R_P holds {len(self.potentials)} candidates, "
                f"metadata promises {indexes.n_p}"
            )

    # ------------------------------------------------------------------
    # Lazily opened structures (QVC / NFC / SS)
    # ------------------------------------------------------------------
    def _require(self, path: Optional[Path], what: str) -> Path:
        if path is None:
            raise ValueError(
                f"persisted workspace at {self.indexes.directory} carries no "
                f"{what}; re-persist with persist_indexes(..., full=True)"
            )
        return path

    @cached_property
    def r_c(self) -> DiskRTree:
        """``R_C``: the client point tree (QVC)."""
        return DiskRTree(
            "R_C",
            self._require(self.indexes.r_c_path, "R_C tree"),
            ClientCodec(),
            self.stats,
            self.buffer_pool,
            mapped=self.mapped,
        )

    @cached_property
    def r_f(self) -> DiskRTree:
        """``R_F``: the facility tree (QVC quadrant NN queries)."""
        return DiskRTree(
            "R_F",
            self._require(self.indexes.r_f_path, "R_F tree"),
            SiteCodec(),
            self.stats,
            self.buffer_pool,
            mapped=self.mapped,
        )

    @cached_property
    def rnn_tree(self) -> DiskRTree:
        """``R_C^n``: the RNN-tree over NFC circles (NFC method).

        Leaf entry MBRs are the squares around each client's NFC —
        reconstructed from the payload on decode (v1) or from the
        columns (v2, ``leaf_shape="circle"``), bit-identical to the
        in-memory tree.
        """
        return DiskRTree(
            "R_C^n",
            self._require(self.indexes.rnn_tree_path, "RNN-tree"),
            ClientCodec(),
            self.stats,
            self.buffer_pool,
            leaf_mbr=lambda c: Circle(Point(c.x, c.y), c.dnn).mbr(),
            mapped=self.mapped,
            leaf_shape="circle",
        )

    @cached_property
    def client_file(self) -> DiskBlockFile:
        """``file.C``: the flat client file of the SS scan."""
        return DiskBlockFile(
            "file.C",
            self._require(self.indexes.client_file_path, "client block file"),
            self.stats,
            self.buffer_pool,
            mapped=self.mapped,
        )

    @cached_property
    def potential_file(self) -> DiskBlockFile:
        """``file.P``: the flat potential-location file (SS, QVC)."""
        return DiskBlockFile(
            "file.P",
            self._require(self.indexes.potential_file_path, "potential block file"),
            self.stats,
            self.buffer_pool,
            mapped=self.mapped,
        )

    @cached_property
    def data_bounds(self) -> Rect:
        """The effective clipping domain (QVC), from the manifest."""
        if self.indexes.bounds is None:
            raise ValueError(
                f"persisted workspace at {self.indexes.directory} carries no "
                "data bounds; re-persist with persist_indexes(..., full=True)"
            )
        return Rect(*self.indexes.bounds)

    # ------------------------------------------------------------------
    @property
    def n_p(self) -> int:
        return len(self.potentials)

    @property
    def n_c(self) -> int:
        if self.indexes.n_c is None:
            raise ValueError("persisted workspace predates full persistence")
        return self.indexes.n_c

    @property
    def n_f(self) -> int:
        if self.indexes.n_f is None:
            raise ValueError("persisted workspace predates full persistence")
        return self.indexes.n_f

    def reset_stats(self) -> None:
        self.stats.reset()
        if self.buffer_pool is not None:
            self.buffer_pool.clear()

    def invalidate_leaf_cache(self) -> None:
        self.leaf_cache.clear()

    def attach_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self.stats.bind_tracer(tracer)

    def detach_tracer(self) -> None:
        self.tracer = NOOP_TRACER
        self.stats.bind_tracer(None)

    def close(self) -> None:
        self.mnd_tree.close()
        self.r_p.close()
        # Only structures that were actually opened.
        for attr in ("r_c", "r_f", "rnn_tree", "client_file", "potential_file"):
            opened = self.__dict__.get(attr)
            if opened is not None:
                opened.close()

    def __enter__(self) -> "DiskWorkspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
