"""Running queries against persisted (on-disk) indexes.

``persist_indexes`` freezes a workspace's MND-method structures
(``R_C^m`` and ``R_P``) into binary page files; ``DiskWorkspace``
reopens them read-only and duck-types just enough of
:class:`~repro.core.workspace.Workspace` for the MND method to run
unmodified — every node fetched is decoded from real file bytes and
counted as an I/O, making this the closest simulation of the paper's
disk-resident setting.

Typical flow::

    paths = persist_indexes(ws, directory)
    frozen = DiskWorkspace(paths, stats=IOStats())
    result = MaximumNFCDistance(frozen).select()   # answers from disk
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.types import Site
from repro.core.workspace import Workspace
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.rtree.persist import DiskRTree, save_rtree
from repro.storage.buffer import LRUBufferPool
from repro.storage.codecs import ClientCodec, SiteCodec
from repro.storage.leafcache import DecodedLeafCache
from repro.storage.stats import IOStats


@dataclass(frozen=True)
class PersistedIndexes:
    """File locations of a frozen query workspace."""

    directory: Path
    mnd_tree_path: Path
    r_p_path: Path
    n_p: int


def persist_indexes(ws: Workspace, directory: str | Path) -> PersistedIndexes:
    """Serialise the MND method's indexes to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    mnd_path = directory / "r_c_m.pages"
    r_p_path = directory / "r_p.pages"
    save_rtree(ws.mnd_tree, mnd_path, ClientCodec())
    save_rtree(ws.r_p, r_p_path, SiteCodec())
    return PersistedIndexes(
        directory=directory,
        mnd_tree_path=mnd_path,
        r_p_path=r_p_path,
        n_p=ws.n_p,
    )


class DiskWorkspace:
    """A read-only workspace view over persisted indexes.

    Exposes the attributes the MND method touches: ``mnd_tree``,
    ``r_p``, ``potentials``, ``n_p``, ``stats``, ``io_latency_s`` and
    ``reset_stats``.  Mutating accessors do not exist; building other
    methods' structures is deliberately unsupported (persist those
    separately if needed).
    """

    def __init__(
        self,
        indexes: PersistedIndexes,
        stats: Optional[IOStats] = None,
        buffer_pool: Optional[LRUBufferPool] = None,
        io_latency_s: float = Workspace.DEFAULT_IO_LATENCY_S,
    ):
        self.stats = stats or IOStats()
        self.tracer = NOOP_TRACER
        self.buffer_pool = buffer_pool
        self.io_latency_s = io_latency_s
        self.leaf_cache = DecodedLeafCache()
        self.mnd_tree = DiskRTree(
            "R_C^m",
            indexes.mnd_tree_path,
            ClientCodec(),
            self.stats,
            buffer_pool,
            radius_of=lambda c: c.dnn,
        )
        self.r_p = DiskRTree(
            "R_P", indexes.r_p_path, SiteCodec(), self.stats, buffer_pool
        )
        # Rebuild the candidate table from the R_P leaves (ids are the
        # original candidate ids, so ordering by id restores it).
        sites = [entry.payload for entry in self.r_p.iter_leaf_entries()]
        sites.sort(key=lambda s: s.sid)
        self.potentials: list[Site] = sites
        if len(self.potentials) != indexes.n_p:
            raise ValueError(
                f"persisted R_P holds {len(self.potentials)} candidates, "
                f"metadata promises {indexes.n_p}"
            )

    @property
    def n_p(self) -> int:
        return len(self.potentials)

    def reset_stats(self) -> None:
        self.stats.reset()
        if self.buffer_pool is not None:
            self.buffer_pool.clear()

    def invalidate_leaf_cache(self) -> None:
        self.leaf_cache.clear()

    def attach_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self.stats.bind_tracer(tracer)

    def detach_tracer(self) -> None:
        self.tracer = NOOP_TRACER
        self.stats.bind_tracer(None)

    def close(self) -> None:
        self.mnd_tree.close()
        self.r_p.close()

    def __enter__(self) -> "DiskWorkspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
