"""Continuous min-dist location selection.

The paper's applications ask the query *frequently* over changing data
("the min-dist location selection is usually performed frequently.
Therefore, we formulate the problem as the following query").  When
updates arrive faster than full re-evaluations are affordable, the
``dr`` vector itself can be maintained incrementally:

* a **client arrival/departure** changes ``dr(p)`` by that client's own
  contribution ``w * max(dnn(c) - dist(c, p), 0)`` — one vectorised
  pass over the candidates;
* a **facility opening** shrinks some clients' ``dnn``; each affected
  client's contribution to every candidate is re-based from its old to
  its new radius — one pass over candidates per affected client;
* a **facility closing** symmetrically grows radii.

``ContinuousSelection`` wraps a :class:`~repro.core.dynamic.DynamicWorkspace`,
applies the update *and* the delta maintenance together, and serves
``best()`` / ``top(k)`` in O(n_p) from the maintained vector.  The
test-suite pins the maintained vector against fresh oracle evaluations
after arbitrary update storms.
"""

from __future__ import annotations

import numpy as np

from repro.core import naive
from repro.core.dynamic import DynamicWorkspace
from repro.core.types import Client, Site
from repro.geometry.point import Point


class ContinuousSelection:
    """Maintains ``dr(p)`` for all candidates under live updates."""

    def __init__(self, workspace: DynamicWorkspace):
        self.ws = workspace
        self._px = workspace.potential_xy[:, 0].copy()
        self._py = workspace.potential_xy[:, 1].copy()
        self._dr = naive.distance_reductions(workspace)
        #: Number of incremental delta applications performed.
        self.updates_applied = 0

    # ------------------------------------------------------------------
    # Contribution helpers
    # ------------------------------------------------------------------
    def _contribution(self, x: float, y: float, radius: float, weight: float):
        """One client's contribution vector across all candidates."""
        d = np.hypot(self._px - x, self._py - y)
        return np.clip(radius - d, 0.0, None) * weight

    # ------------------------------------------------------------------
    # Updates (mutate the workspace AND maintain the vector)
    # ------------------------------------------------------------------
    def add_client(
        self, point: Point | tuple[float, float], weight: float = 1.0
    ) -> Client:
        client = self.ws.add_client(point, weight)
        self._dr += self._contribution(client.x, client.y, client.dnn, client.weight)
        self.updates_applied += 1
        return client

    def remove_client(self, client: Client) -> None:
        self.ws.remove_client(client)
        self._dr -= self._contribution(client.x, client.y, client.dnn, client.weight)
        self.updates_applied += 1

    def add_facility(self, point: Point | tuple[float, float]) -> Site:
        old_radii = {c.cid: c.dnn for c in self.ws.clients}
        site = self.ws.add_facility(point)
        self._rebase_changed(old_radii)
        self.updates_applied += 1
        return site

    def remove_facility(self, site: Site) -> None:
        old_radii = {c.cid: c.dnn for c in self.ws.clients}
        self.ws.remove_facility(site)
        self._rebase_changed(old_radii)
        self.updates_applied += 1

    def _rebase_changed(self, old_radii: dict[int, float]) -> None:
        for c in self.ws.clients:
            old = old_radii[c.cid]
            if old != c.dnn:
                self._dr -= self._contribution(c.x, c.y, old, c.weight)
                self._dr += self._contribution(c.x, c.y, c.dnn, c.weight)

    # ------------------------------------------------------------------
    # Queries (O(n_p) from the maintained vector)
    # ------------------------------------------------------------------
    def distance_reductions(self) -> np.ndarray:
        return self._dr.copy()

    def best(self) -> tuple[Site, float]:
        """The current winner (ties to the smallest id)."""
        idx = int(np.argmax(self._dr))
        return self.ws.potentials[idx], float(self._dr[idx])

    def top(self, k: int) -> list[tuple[Site, float]]:
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self._dr))
        order = np.lexsort((np.arange(len(self._dr)), -self._dr))[:k]
        return [(self.ws.potentials[int(i)], float(self._dr[int(i)])) for i in order]

    def verify(self, atol: float = 1e-6) -> bool:
        """Compare the maintained vector against a fresh evaluation."""
        fresh = naive.distance_reductions(self.ws)
        return bool(np.allclose(self._dr, fresh, atol=atol))
