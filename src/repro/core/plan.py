"""The task-splittable execution protocol of the query methods.

Each method exposes its traversal as a list of :class:`StageSpec`
stages.  A stage is planned on the driver (``plan`` charges the reads
the serial code performs *before* fanning out — potential-file blocks,
join roots, frontier expansion), executed as independent tasks (the
``kernel`` selector method, which charges every deeper read to a
task-private :class:`~repro.storage.stats.IOStats`), and folded back in
task order (``reduce``, which also threads a carry value between
stages — QVC's AIR groups feed its window stage).

The contract that keeps results byte-identical at any worker count:

* **task lists are deterministic** — planning depends only on the
  workspace and the task-target, never on workers or timing;
* **kernels are pure** w.r.t. shared state — they write only their own
  partials and charge only their own stats;
* **reduction is ordered** — partials merge in task order, and because
  each partial starts from zero while serial accumulation visits the
  same contributions in the same grouping, IEEE-754 addition produces
  bit-identical ``dr`` values;
* **I/O is placement-invariant** — a page is charged by whoever the
  *serial* code had read it: moving work between driver and tasks never
  creates or removes a charge, so merged totals equal serial totals
  exactly.

Kernels are referenced by *method name* (a string) so a process pool
can look them up on its own unpickled selector instead of pickling
bound methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.rtree.frontier import DEFAULT_TASK_TARGET

__all__ = ["DEFAULT_TASK_TARGET", "StageSpec"]


@dataclass(frozen=True)
class StageSpec:
    """One stage of a method's parallel execution plan.

    ``plan(stats, carry) -> list[task]`` runs on the driver; tasks must
    be plain picklable data (node ids, coordinates, offsets).
    ``kernel`` names a selector method ``(task, stats) -> out``.
    ``reduce(outs, dr) -> carry`` folds task outputs (in task order)
    into the shared ``dr`` vector and returns the next stage's carry.
    """

    name: str
    plan: Callable[[Any, Any], list]
    kernel: str
    reduce: Optional[Callable[[list, Any], Any]] = None
