"""Method registry: paper names to selector classes."""

from __future__ import annotations

from typing import Type

from repro.core.base import LocationSelector
from repro.core.mnd import MaximumNFCDistance
from repro.core.nfc import NearestFacilityCircle
from repro.core.qvc import QuasiVoronoiCell
from repro.core.ss import SequentialScan
from repro.core.workspace import Workspace

#: All methods by their paper names.
METHODS: dict[str, Type[LocationSelector]] = {
    "SS": SequentialScan,
    "QVC": QuasiVoronoiCell,
    "NFC": NearestFacilityCircle,
    "MND": MaximumNFCDistance,
}


def make_selector(workspace: Workspace, method: str) -> LocationSelector:
    """Instantiate a method by its paper name (case-insensitive)."""
    cls = METHODS.get(method.upper())
    if cls is None:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(METHODS)}"
        )
    return cls(workspace)
