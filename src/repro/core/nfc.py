"""NFC — the nearest facility circle method (Section V, Algorithm 4).

A client ``c`` belongs to ``IS(p)`` iff ``p`` lies strictly inside
``NFC(c)``, the circle centred at ``c`` with radius ``dnn(c, F)``.
The method therefore spatial-joins the potential-location tree ``R_P``
with the RNN-tree ``R_C^n`` that indexes the (square) MBRs of all NFCs:
a synchronized depth-first traversal descends into every node pair whose
MBRs intersect, and at the leaves reconstructs each NFC from its square
MBR — the centre is the client, half the edge length is ``dnn(c, F)`` —
to test ``dist(c, p) < dnn(c, F)`` and accumulate the reduction.

The price of this efficiency is the *extra index*: ``R_C^n`` must be
maintained alongside ``R_C``, the drawback that motivates the MND method.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LocationSelector
from repro.rtree.node import Node


class NearestFacilityCircle(LocationSelector):
    """The NFC method: R-tree join between ``R_P`` and the RNN-tree."""

    name = "NFC"

    def prepare(self) -> None:
        __ = self.ws.r_c  # the client database index, maintained regardless
        __ = self.ws.rnn_tree
        __ = self.ws.r_p

    def index_pages(self) -> int:
        return (
            self.ws.r_c.size_pages
            + self.ws.rnn_tree.size_pages
            + self.ws.r_p.size_pages
        )

    # ------------------------------------------------------------------
    def _compute_distance_reductions(self) -> np.ndarray:
        ws = self.ws
        dr = np.zeros(ws.n_p, dtype=np.float64)
        self._leaf_cache: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        if ws.rnn_tree.num_entries == 0:
            return dr
        with ws.tracer.span("nfc.join"):
            node_p = ws.r_p.read_node(ws.r_p.root_id)
            node_c = ws.rnn_tree.read_node(ws.rnn_tree.root_id)
            self._join(node_p, node_c, dr)
        return dr

    def _join(self, node_p: Node, node_c: Node, dr: np.ndarray) -> None:
        """Algorithm 4: descend into intersecting node pairs."""
        ws = self.ws
        trace = ws.tracer
        trace.count("join.node_pairs")
        if node_p.is_leaf and node_c.is_leaf:
            # Candidate evaluation is pure CPU (both leaves are already
            # in memory), so it gets its own span; the page reads stay
            # attributed to the enclosing descent.
            with trace.span("nfc.leaf_eval") as sp:
                sp.count("candidates", len(node_p.entries))
                cx, cy, radius, w = self._leaf_arrays(node_c)
                for e_p in node_p.entries:
                    site = e_p.payload
                    reduction = radius - np.hypot(cx - site.x, cy - site.y)
                    positive = reduction > 0.0
                    if positive.any():
                        dr[site.sid] += float((reduction[positive] * w[positive]).sum())
        elif node_p.is_leaf:
            mbr_p = node_p.mbr()
            for e_c in node_c.entries:
                if e_c.mbr.intersects(mbr_p):
                    self._join(node_p, ws.rnn_tree.read_node(e_c.child_id), dr)
        elif node_c.is_leaf:
            mbr_c = node_c.mbr()
            for e_p in node_p.entries:
                if e_p.mbr.intersects(mbr_c):
                    self._join(ws.r_p.read_node(e_p.child_id), node_c, dr)
        else:
            pruned = 0
            for e_p in node_p.entries:
                for e_c in node_c.entries:
                    if e_p.mbr.intersects(e_c.mbr):
                        self._join(
                            ws.r_p.read_node(e_p.child_id),
                            ws.rnn_tree.read_node(e_c.child_id),
                            dr,
                        )
                    else:
                        pruned += 1
            if pruned:
                trace.count("join.pruned_pairs", pruned)

    def _leaf_arrays(
        self, node: Node
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Centres and radii of the NFCs in a leaf, reconstructed from
        their square MBRs (lines 12–13 of Algorithm 4), plus the client
        weights read from the records."""
        cached = self._leaf_cache.get(node.node_id)
        if cached is None:
            n = len(node.entries)
            cx = np.fromiter(
                ((e.mbr.xmin + e.mbr.xmax) / 2.0 for e in node.entries), np.float64, n
            )
            cy = np.fromiter(
                ((e.mbr.ymin + e.mbr.ymax) / 2.0 for e in node.entries), np.float64, n
            )
            radius = np.fromiter(
                ((e.mbr.xmax - e.mbr.xmin) / 2.0 for e in node.entries), np.float64, n
            )
            w = np.fromiter((e.payload.weight for e in node.entries), np.float64, n)
            cached = (cx, cy, radius, w)
            self._leaf_cache[node.node_id] = cached
        return cached
