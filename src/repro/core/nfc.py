"""NFC — the nearest facility circle method (Section V, Algorithm 4).

A client ``c`` belongs to ``IS(p)`` iff ``p`` lies strictly inside
``NFC(c)``, the circle centred at ``c`` with radius ``dnn(c, F)``.
The method therefore spatial-joins the potential-location tree ``R_P``
with the RNN-tree ``R_C^n`` that indexes the (square) MBRs of all NFCs:
a synchronized depth-first traversal descends into every node pair whose
MBRs intersect, and at the leaves reconstructs each NFC from its square
MBR — the centre is the client, half the edge length is ``dnn(c, F)`` —
to test ``dist(c, p) < dnn(c, F)`` and accumulate the reduction.

The price of this efficiency is the *extra index*: ``R_C^n`` must be
maintained alongside ``R_C``, the drawback that motivates the MND method.

For the execution engine the join splits at a node-pair frontier
(:mod:`repro.rtree.frontier`): the driver expands the top of the
synchronized traversal — charging child reads exactly where the serial
recursion would — and each frontier pair becomes an independent task
running the ordinary recursion below it.  Frontier order equals serial
DFS order, so the ordered reduction reproduces serial float grouping
bit for bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.core.base import LocationSelector
from repro.core.plan import StageSpec
from repro.rtree.columns import branch_columns, leaf_site_columns, nfc_leaf_columns
from repro.rtree.frontier import expand_frontier
from repro.rtree.node import Node
from repro.storage.stats import IOStats

#: A join task: (R_P node id, client-tree node id).  Both nodes' reads
#: are charged by whoever materialised the pair (the planner for
#: frontier pairs, the kernel recursion below).
JoinTask = tuple[int, int]


class NearestFacilityCircle(LocationSelector):
    """The NFC method: R-tree join between ``R_P`` and the RNN-tree."""

    name = "NFC"

    def prepare(self) -> None:
        __ = self.ws.r_c  # the client database index, maintained regardless
        __ = self.ws.rnn_tree
        __ = self.ws.r_p

    def index_pages(self) -> int:
        return (
            self.ws.r_c.size_pages
            + self.ws.rnn_tree.size_pages
            + self.ws.r_p.size_pages
        )

    # ------------------------------------------------------------------
    # Parallel execution protocol
    # ------------------------------------------------------------------
    def execution_plan(self) -> list[StageSpec]:
        return [
            StageSpec(
                name="nfc.join",
                plan=self._plan_join,
                kernel="run_join_task",
                reduce=self._reduce_join,
            )
        ]

    def _plan_join(self, stats: IOStats, carry: object = None) -> list[JoinTask]:
        """The node-pair frontier; charges root + expansion reads."""
        ws = self.ws
        if ws.rnn_tree.num_entries == 0:
            return []
        root_p = ws.r_p.read_node(ws.r_p.root_id, stats=stats)
        root_c = ws.rnn_tree.read_node(ws.rnn_tree.root_id, stats=stats)
        return expand_frontier(
            [(root_p.node_id, root_c.node_id)],
            lambda pair: self._expand_pair(pair, stats),
            target=self.task_target,
        )

    def _expand_pair(
        self, pair: JoinTask, stats: IOStats
    ) -> Optional[list[JoinTask]]:
        """One level of Algorithm 4 at ``pair``, as child pairs.

        Mirrors :meth:`_join` exactly: the same predicate tests in the
        same order, the same child reads (charged per qualifying pair,
        as the serial recursion re-reads them), the same counters.
        Returns None for leaf-leaf pairs, which stay frontier tasks.
        """
        ws = self.ws
        node_p = ws.r_p.node(pair[0])  # already charged when pair was made
        node_c = ws.rnn_tree.node(pair[1])
        if node_p.is_leaf and node_c.is_leaf:
            return None
        trace = stats.tracer
        trace.count("join.node_pairs")
        cache = ws.leaf_cache
        out: list[JoinTask] = []
        if node_p.is_leaf:
            c_cols = branch_columns(ws.rnn_tree, node_c, cache)
            descend = kernels.rects_intersect_rect(c_cols.rects, node_p.mbr())
            for j in np.flatnonzero(descend):
                e_c = node_c.entries[j]
                ws.rnn_tree.read_node(e_c.child_id, stats=stats)
                out.append((pair[0], e_c.child_id))
        elif node_c.is_leaf:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            descend = kernels.rects_intersect_rect(p_cols.rects, node_c.mbr())
            for i in np.flatnonzero(descend):
                e_p = node_p.entries[i]
                ws.r_p.read_node(e_p.child_id, stats=stats)
                out.append((e_p.child_id, pair[1]))
        else:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            c_cols = branch_columns(ws.rnn_tree, node_c, cache)
            descend = kernels.rect_intersect_matrix(p_cols.rects, c_cols.rects)
            # Row-major argwhere keeps the serial nested-loop descent
            # (and read-charge) order.
            for i, j in np.argwhere(descend):
                ws.r_p.read_node(node_p.entries[i].child_id, stats=stats)
                ws.rnn_tree.read_node(node_c.entries[j].child_id, stats=stats)
                out.append((node_p.entries[i].child_id, node_c.entries[j].child_id))
            pruned = descend.size - int(np.count_nonzero(descend))
            if pruned:
                trace.count("join.pruned_pairs", pruned)
        return out

    def run_join_task(
        self, task: JoinTask, stats: IOStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """The serial join below one frontier pair, into a private partial."""
        ws = self.ws
        node_p = ws.r_p.node(task[0])  # pair reads charged by the planner
        node_c = ws.rnn_tree.node(task[1])
        local = np.zeros(ws.n_p, dtype=np.float64)
        self._join(node_p, node_c, local, stats)
        idx = np.flatnonzero(local)
        return idx, local[idx]

    def _reduce_join(
        self, outs: list[tuple[np.ndarray, np.ndarray]], dr: np.ndarray
    ) -> Optional[object]:
        for idx, vals in outs:
            dr[idx] += vals
        return None

    # ------------------------------------------------------------------
    def _compute_distance_reductions(self) -> np.ndarray:
        """The serial path: frontier + inline kernels (same grouping)."""
        ws = self.ws
        stats = ws.stats
        dr = np.zeros(ws.n_p, dtype=np.float64)
        if ws.rnn_tree.num_entries == 0:
            return dr
        with stats.tracer.span("nfc.join"):
            tasks = self._plan_join(stats)
            outs = [self.run_join_task(task, stats) for task in tasks]
            self._reduce_join(outs, dr)
        return dr

    def _join(
        self,
        node_p: Node,
        node_c: Node,
        dr: np.ndarray,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Algorithm 4: descend into intersecting node pairs."""
        ws = self.ws
        if stats is None:
            stats = ws.stats
        trace = stats.tracer
        trace.count("join.node_pairs")
        cache = ws.leaf_cache
        if node_p.is_leaf and node_c.is_leaf:
            # Candidate evaluation is pure CPU (both leaves are already
            # in memory), so it gets its own span; the page reads stay
            # attributed to the enclosing descent.  The NFC circles come
            # back reconstructed from their square MBRs (lines 12–13 of
            # Algorithm 4) with the radius in the ``dnn`` column, so the
            # strict-containment test is the same clipped-reduction
            # kernel every other method uses.
            with trace.span("nfc.leaf_eval") as sp:
                sp.count("candidates", len(node_p.entries))
                p_cols = leaf_site_columns(ws.r_p, node_p, cache)
                c_cols = nfc_leaf_columns(ws.rnn_tree, node_c, cache)
                dr[p_cols.ids] += kernels.accumulate_reductions(
                    p_cols.xs,
                    p_cols.ys,
                    c_cols.xs,
                    c_cols.ys,
                    c_cols.dnn,
                    c_cols.weights,
                )
        elif node_p.is_leaf:
            c_cols = branch_columns(ws.rnn_tree, node_c, cache)
            descend = kernels.rects_intersect_rect(c_cols.rects, node_p.mbr())
            for j in np.flatnonzero(descend):
                child = ws.rnn_tree.read_node(node_c.entries[j].child_id, stats=stats)
                self._join(node_p, child, dr, stats)
        elif node_c.is_leaf:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            descend = kernels.rects_intersect_rect(p_cols.rects, node_c.mbr())
            for i in np.flatnonzero(descend):
                self._join(
                    ws.r_p.read_node(node_p.entries[i].child_id, stats=stats),
                    node_c,
                    dr,
                    stats,
                )
        else:
            p_cols = branch_columns(ws.r_p, node_p, cache)
            c_cols = branch_columns(ws.rnn_tree, node_c, cache)
            descend = kernels.rect_intersect_matrix(p_cols.rects, c_cols.rects)
            # Row-major argwhere keeps the serial nested-loop descent
            # (and read-charge) order.
            for i, j in np.argwhere(descend):
                self._join(
                    ws.r_p.read_node(node_p.entries[i].child_id, stats=stats),
                    ws.rnn_tree.read_node(node_c.entries[j].child_id, stats=stats),
                    dr,
                    stats,
                )
            pruned = descend.size - int(np.count_nonzero(descend))
            if pruned:
                trace.count("join.pruned_pairs", pruned)
