"""QVC — the quasi-Voronoi cell method (Section IV, Algorithms 2–3).

For every potential location ``p``:

1. find the nearest facility in each of the four quadrants around ``p``
   with one incremental best-first NN stream over ``R_F``;
2. intersect the bisector half-planes (clipped to the data space) to
   obtain the quasi-Voronoi cell ``QVC(p)``, whose MBR is the
   *approximate influence region* ``AIR(p)``;
3. batch the ``AIR``s of one potential-location block into a single
   simultaneous window query on ``R_C`` (Algorithm 3), testing
   ``dist(p, c) < dnn(c, F)`` at the leaves.

Any client satisfying the leaf test is genuinely in ``IS(p)`` (it lies
in ``p``'s Voronoi cell over ``F ∪ {p}`` which the QVC encloses), so no
AIR containment re-check is needed — exactly the paper's Algorithm 3.

Edge cases the pseudocode leaves implicit:

* a quadrant with no facility contributes no bisector; the cell is then
  bounded by the data-space rectangle on that side;
* a facility coincident with ``p`` makes ``IS(p)`` empty (no client can
  be strictly closer to ``p`` than to that facility), so ``p`` is
  skipped with ``dr(p) = 0``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import LocationSelector
from repro.core.types import Site
from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.rtree.nn import incremental_nearest
from repro.rtree.node import Node


class QuasiVoronoiCell(LocationSelector):
    """The QVC method: quadrant NNs + batched window queries."""

    name = "QVC"

    def prepare(self) -> None:
        __ = self.ws.r_c
        __ = self.ws.r_f
        __ = self.ws.potential_file

    def index_pages(self) -> int:
        return self.ws.r_c.size_pages + self.ws.r_f.size_pages

    # ------------------------------------------------------------------
    def quadrant_nearest_facilities(self, p: Point) -> list[Optional[Site]]:
        """The NN facility per quadrant around ``p`` (None when empty).

        A single best-first stream serves all four quadrants: facilities
        arrive in distance order and fill their quadrant's slot; the
        stream stops once every quadrant is served (Section IV: "retrieve
        the NNs until each quadrant has one").
        """
        found: list[Optional[Site]] = [None, None, None, None]
        missing = 4
        for __, site in incremental_nearest(self.ws.r_f, p):
            quad = Point(site.x, site.y).quadrant_relative_to(p)
            if found[quad] is None:
                found[quad] = site
                missing -= 1
                if missing == 0:
                    break
        return found

    def air(self, p: Point) -> Optional[Rect]:
        """``AIR(p)``: the MBR of the quasi-Voronoi cell of ``p``.

        Returns None when ``IS(p)`` is provably empty (a facility sits
        exactly on ``p``).
        """
        halfplanes = []
        for site in self.quadrant_nearest_facilities(p):
            if site is None:
                continue
            f = Point(site.x, site.y)
            if f == p:
                return None
            halfplanes.append(bisector_halfplane(p, f))
        # Clip against the effective data bounds, not the nominal domain:
        # clients outside the declared domain must stay coverable.
        cell = ConvexPolygon.from_rect(self.ws.data_bounds).clip_all(halfplanes)
        if cell.is_empty():  # numerically degenerate cell
            return Rect.from_point(p)
        return cell.mbr()

    # ------------------------------------------------------------------
    def _compute_distance_reductions(self) -> np.ndarray:
        ws = self.ws
        dr = np.zeros(ws.n_p, dtype=np.float64)
        self._leaf_cache: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        root_id = ws.r_c.root_id
        trace = ws.tracer
        offset = 0
        # Algorithm 2: process P block by block; each block's AIRs run as
        # one simultaneous window query down R_C.  Phases per block:
        # "qvc.air" (quadrant NNs over R_F + cell clipping) and
        # "qvc.window" (the batched window query over R_C); file.P block
        # reads land on the enclosing "qvc.blocks" span.
        with trace.span("qvc.blocks"):
            for p_block in ws.potential_file.iter_blocks():
                group: list[tuple[int, float, float, Rect]] = []
                with trace.span("qvc.air") as sp:
                    for row, (px, py) in enumerate(p_block):
                        air = self.air(Point(float(px), float(py)))
                        if air is not None:
                            group.append((offset + row, float(px), float(py), air))
                        else:
                            sp.count("empty_cells")
                    sp.count("cells", len(group))
                if group:
                    with trace.span("qvc.window"):
                        self._window_query(root_id, group, dr)
                offset += len(p_block)
        return dr

    def _window_query(
        self,
        node_id: int,
        group: list[tuple[int, float, float, Rect]],
        dr: np.ndarray,
    ) -> None:
        """Algorithm 3: one traversal of ``R_C`` shared by a whole block."""
        node = self.ws.r_c.read_node(node_id)
        trace = self.ws.tracer
        trace.count("window.nodes")
        if node.is_leaf:
            trace.count("window.leaf_evals", len(group))
            cx, cy, dnn, w = self._leaf_arrays(node)
            for pid, px, py, __ in group:
                reduction = dnn - np.hypot(cx - px, cy - py)
                positive = reduction > 0.0
                if positive.any():
                    dr[pid] += float((reduction[positive] * w[positive]).sum())
            return
        for entry in node.entries:
            surviving = [g for g in group if g[3].intersects(entry.mbr)]
            if surviving:
                self._window_query(entry.child_id, surviving, dr)

    def _leaf_arrays(
        self, node: Node
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        cached = self._leaf_cache.get(node.node_id)
        if cached is None:
            clients = [e.payload for e in node.entries]
            n = len(clients)
            cached = (
                np.fromiter((c.x for c in clients), np.float64, n),
                np.fromiter((c.y for c in clients), np.float64, n),
                np.fromiter((c.dnn for c in clients), np.float64, n),
                np.fromiter((c.weight for c in clients), np.float64, n),
            )
            self._leaf_cache[node.node_id] = cached
        return cached
