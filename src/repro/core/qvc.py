"""QVC — the quasi-Voronoi cell method (Section IV, Algorithms 2–3).

For every potential location ``p``:

1. find the nearest facility in each of the four quadrants around ``p``
   with one incremental best-first NN stream over ``R_F``;
2. intersect the bisector half-planes (clipped to the data space) to
   obtain the quasi-Voronoi cell ``QVC(p)``, whose MBR is the
   *approximate influence region* ``AIR(p)``;
3. batch the ``AIR``s of one potential-location block into a single
   simultaneous window query on ``R_C`` (Algorithm 3), testing
   ``dist(p, c) < dnn(c, F)`` at the leaves.

Any client satisfying the leaf test is genuinely in ``IS(p)`` (it lies
in ``p``'s Voronoi cell over ``F ∪ {p}`` which the QVC encloses), so no
AIR containment re-check is needed — exactly the paper's Algorithm 3.

Edge cases the pseudocode leaves implicit:

* a quadrant with no facility contributes no bisector; the cell is then
  bounded by the data-space rectangle on that side;
* a facility coincident with ``p`` makes ``IS(p)`` empty (no client can
  be strictly closer to ``p`` than to that facility), so ``p`` is
  skipped with ``dr(p) = 0``.

For the execution engine the method splits into two stages: AIR
construction (chunks of potential locations; independent best-first NN
streams over ``R_F``) and the batched window queries (one task per
potential block; blocks touch disjoint ``p`` ids, so windows commute
exactly).  Both the I/O multiset and each ``p``'s accumulation order
match the serial interleaving, keeping results byte-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.core.base import LocationSelector
from repro.core.plan import StageSpec
from repro.core.types import Site
from repro.geometry.halfplane import bisector_halfplane
from repro.geometry.point import Point
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.kernels.columnar import RectColumns
from repro.rtree.columns import branch_columns, leaf_client_columns
from repro.rtree.nn import incremental_nearest
from repro.storage.stats import IOStats

#: Potential locations per AIR task.  Fixed (worker-independent) so the
#: task list — and with it the merged trace shape — is deterministic.
AIR_CHUNK = 16


class QuasiVoronoiCell(LocationSelector):
    """The QVC method: quadrant NNs + batched window queries."""

    name = "QVC"

    def prepare(self) -> None:
        __ = self.ws.r_c
        __ = self.ws.r_f
        __ = self.ws.potential_file

    def index_pages(self) -> int:
        return self.ws.r_c.size_pages + self.ws.r_f.size_pages

    # ------------------------------------------------------------------
    def quadrant_nearest_facilities(
        self, p: Point, stats: Optional[IOStats] = None
    ) -> list[Optional[Site]]:
        """The NN facility per quadrant around ``p`` (None when empty).

        A single best-first stream serves all four quadrants: facilities
        arrive in distance order and fill their quadrant's slot; the
        stream stops once every quadrant is served (Section IV: "retrieve
        the NNs until each quadrant has one").
        """
        found: list[Optional[Site]] = [None, None, None, None]
        missing = 4
        for __, site in incremental_nearest(self.ws.r_f, p, stats=stats):
            quad = Point(site.x, site.y).quadrant_relative_to(p)
            if found[quad] is None:
                found[quad] = site
                missing -= 1
                if missing == 0:
                    break
        return found

    def air(self, p: Point, stats: Optional[IOStats] = None) -> Optional[Rect]:
        """``AIR(p)``: the MBR of the quasi-Voronoi cell of ``p``.

        Returns None when ``IS(p)`` is provably empty (a facility sits
        exactly on ``p``).
        """
        halfplanes = []
        for site in self.quadrant_nearest_facilities(p, stats=stats):
            if site is None:
                continue
            f = Point(site.x, site.y)
            if f == p:
                return None
            halfplanes.append(bisector_halfplane(p, f))
        # Clip against the effective data bounds, not the nominal domain:
        # clients outside the declared domain must stay coverable.
        cell = ConvexPolygon.from_rect(self.ws.data_bounds).clip_all(halfplanes)
        if cell.is_empty():  # numerically degenerate cell
            return Rect.from_point(p)
        return cell.mbr()

    # ------------------------------------------------------------------
    # Parallel execution protocol
    # ------------------------------------------------------------------
    def execution_plan(self) -> list[StageSpec]:
        return [
            StageSpec(
                name="qvc.blocks",
                plan=self._plan_air,
                kernel="run_air_task",
                reduce=self._reduce_air,
            ),
            StageSpec(
                name="qvc.window",
                plan=self._plan_windows,
                kernel="run_window_task",
                reduce=self._reduce_windows,
            ),
        ]

    def _plan_air(self, stats: IOStats, carry: object = None) -> list[tuple]:
        """Chunked AIR tasks; charges the potential-file block reads."""
        ws = self.ws
        tasks: list[tuple[int, list[tuple[int, float, float]]]] = []
        offset = 0
        for block_id in range(ws.potential_file.num_blocks):
            p_block = ws.potential_file.read_block(block_id, stats=stats)
            for start in range(0, len(p_block), AIR_CHUNK):
                rows = [
                    (offset + start + i, float(px), float(py))
                    for i, (px, py) in enumerate(p_block[start : start + AIR_CHUNK])
                ]
                tasks.append((block_id, rows))
            offset += len(p_block)
        return tasks

    def run_air_task(
        self, task: tuple[int, list[tuple[int, float, float]]], stats: IOStats
    ) -> tuple[int, list[tuple[int, float, float, Rect]]]:
        """AIR construction for one chunk of potential locations."""
        block_id, rows = task
        group: list[tuple[int, float, float, Rect]] = []
        with stats.tracer.span("qvc.air") as sp:
            for pid, px, py in rows:
                air = self.air(Point(px, py), stats=stats)
                if air is not None:
                    group.append((pid, px, py, air))
                else:
                    sp.count("empty_cells")
            sp.count("cells", len(group))
        return block_id, group

    def _reduce_air(
        self, outs: list[tuple[int, list]], dr: np.ndarray
    ) -> dict[int, list]:
        """Reassemble per-block AIR groups (tasks arrive in chunk order)."""
        groups: dict[int, list[tuple[int, float, float, Rect]]] = {}
        for block_id, group in outs:
            groups.setdefault(block_id, []).extend(group)
        return groups

    def _plan_windows(
        self, stats: IOStats, carry: dict[int, list]
    ) -> list[tuple[int, list]]:
        """One window-query task per non-empty potential block."""
        return [
            (block_id, carry[block_id])
            for block_id in sorted(carry)
            if carry[block_id]
        ]

    def run_window_task(
        self, task: tuple[int, list], stats: IOStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """The batched window query of one block (Algorithm 3)."""
        __, group = task
        local = np.zeros(self.ws.n_p, dtype=np.float64)
        with stats.tracer.span("qvc.window"):
            self._window_query(self.ws.r_c.root_id, group, local, stats)
        idx = np.flatnonzero(local)
        return idx, local[idx]

    def _reduce_windows(
        self, outs: list[tuple[np.ndarray, np.ndarray]], dr: np.ndarray
    ) -> Optional[object]:
        for idx, vals in outs:
            dr[idx] += vals
        return None

    # ------------------------------------------------------------------
    def _compute_distance_reductions(self) -> np.ndarray:
        """The serial path: the same plan/kernels, run inline.

        The serial loop interleaved AIR construction and window queries
        per block; running all AIRs first is charge- and value-identical
        (blocks touch disjoint ``p`` ids, and the best-first NN streams
        are independent per ``p``).
        """
        ws = self.ws
        stats = ws.stats
        dr = np.zeros(ws.n_p, dtype=np.float64)
        # Phases per block: "qvc.air" (quadrant NNs over R_F + cell
        # clipping) and "qvc.window" (the batched window query over R_C);
        # file.P block reads land on the enclosing "qvc.blocks" span.
        with stats.tracer.span("qvc.blocks"):
            air_tasks = self._plan_air(stats)
            air_outs = [self.run_air_task(task, stats) for task in air_tasks]
            groups = self._reduce_air(air_outs, dr)
            window_tasks = self._plan_windows(stats, groups)
            window_outs = [self.run_window_task(task, stats) for task in window_tasks]
            self._reduce_windows(window_outs, dr)
        return dr

    def _window_query(
        self,
        node_id: int,
        group: list[tuple[int, float, float, Rect]],
        dr: np.ndarray,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Algorithm 3: one traversal of ``R_C`` shared by a whole block."""
        node = self.ws.r_c.read_node(node_id, stats=stats)
        trace = (stats if stats is not None else self.ws.stats).tracer
        trace.count("window.nodes")
        cache = self.ws.leaf_cache
        n = len(group)
        if node.is_leaf:
            trace.count("window.leaf_evals", n)
            c_cols = leaf_client_columns(self.ws.r_c, node, cache)
            pids = np.fromiter((g[0] for g in group), np.intp, n)
            px = np.fromiter((g[1] for g in group), np.float64, n)
            py = np.fromiter((g[2] for g in group), np.float64, n)
            dr[pids] += kernels.accumulate_reductions(
                px, py, c_cols.xs, c_cols.ys, c_cols.dnn, c_cols.weights
            )
            return
        airs = RectColumns.from_rects(g[3] for g in group)
        node_cols = branch_columns(self.ws.r_c, node, cache)
        overlap = kernels.rect_intersect_matrix(airs, node_cols.rects)
        for j, entry in enumerate(node.entries):
            rows = np.flatnonzero(overlap[:, j])
            if len(rows):
                surviving = [group[i] for i in rows]
                self._window_query(entry.child_id, surviving, dr, stats)
