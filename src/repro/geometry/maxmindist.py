"""Maximum NFC distance (MND) computation — Section VI-A of the paper.

The MND of an R-tree node ``N`` is the largest ``minDist`` from the node's
MBR to any point on the boundary of an NFC (leaf node) or of a child's MND
region (non-leaf node).  Computing it literally would require maximising a
piecewise function; Theorems 2 and 3 reduce it to checking four *candidate
furthest points* (CFPs) per child, which collapses to the closed-form
arithmetic implemented here.

Every region handled by the MND method has the same shape: a *rounded
rectangle* obtained by expanding an inner rectangle ``B`` by a radius
``r`` (for a client's NFC the inner rectangle is the degenerate rectangle
at the client; for a child node's MND region it is the child's MBR and
``r`` is the child's MND).  The functions below therefore take ``(B, r)``
pairs.

All formulas assume the inner rectangle is contained in the enclosing MBR
``M`` — which always holds inside an R-tree, where a node's MBR covers its
children.  Results are clamped at zero: a region entirely inside ``M``
contributes nothing.
"""

from __future__ import annotations

import math

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def max_min_dist_region_rect(inner: Rect, radius: float, m: Rect) -> float:
    """``maxMinDist`` from the rounded rectangle ``(inner, radius)`` to ``M``.

    This is Equation (1) of the paper generalised to both the leaf case
    (``inner`` degenerate at a client, ``radius = dnn(c, F)``) and the
    non-leaf case (``inner`` a child MBR, ``radius`` the child's MND).
    Requires ``inner ⊆ m``; the result is the largest distance from a
    boundary point of the region to ``m``, or 0 when the region lies
    entirely inside ``m``.
    """
    return max(
        0.0,
        m.xmin - (inner.xmin - radius),
        (inner.xmax + radius) - m.xmax,
        m.ymin - (inner.ymin - radius),
        (inner.ymax + radius) - m.ymax,
    )


def max_min_dist_circle_rect(circle: Circle, m: Rect) -> float:
    """``maxMinDist`` from a circle's boundary to ``M`` (Theorem 2 case).

    The circle's centre must lie inside ``m``.
    """
    return max_min_dist_region_rect(Rect.from_point(circle.center), circle.radius, m)


def mnd_of_circles(circles: list[Circle], m: Rect) -> float:
    """MND of a leaf node: the max ``maxMinDist`` over its clients' NFCs."""
    best = 0.0
    for circle in circles:
        value = max_min_dist_circle_rect(circle, m)
        if value > best:
            best = value
    return best


def mnd_of_regions(regions: list[tuple[Rect, float]], m: Rect) -> float:
    """MND of a non-leaf node from its children's ``(MBR, MND)`` pairs."""
    best = 0.0
    for inner, radius in regions:
        value = max_min_dist_region_rect(inner, radius, m)
        if value > best:
            best = value
    return best


def max_min_dist_bruteforce(
    inner: Rect, radius: float, m: Rect, samples: int = 4096
) -> float:
    """Reference implementation that samples the region boundary densely.

    Used only by the test-suite to validate the closed-form computation:
    the boundary of the rounded rectangle ``(inner, radius)`` is traced
    (four straight edges plus four quarter arcs) and the largest sampled
    ``minDist`` to ``m`` is returned.  This is a lower bound converging to
    the true maximum as ``samples`` grows.
    """
    boundary: list[Point] = []
    # Four straight edges, offset outward from the inner rectangle.
    n_edge = max(2, samples // 8)
    for i in range(n_edge + 1):
        t = i / n_edge
        x = inner.xmin + t * (inner.xmax - inner.xmin)
        boundary.append(Point(x, inner.ymax + radius))
        boundary.append(Point(x, inner.ymin - radius))
        y = inner.ymin + t * (inner.ymax - inner.ymin)
        boundary.append(Point(inner.xmax + radius, y))
        boundary.append(Point(inner.xmin - radius, y))
    # Four quarter arcs around the corners.
    corner_centers = inner.corners()
    start_angles = (math.pi, 1.5 * math.pi, 0.0, 0.5 * math.pi)
    n_arc = max(2, samples // 8)
    for (cx, cy), start in zip(corner_centers, start_angles):
        for i in range(n_arc + 1):
            theta = start + (i / n_arc) * (math.pi / 2.0)
            boundary.append(
                Point(cx + radius * math.cos(theta), cy + radius * math.sin(theta))
            )
    return max(m.min_dist_point(p) for p in boundary)
