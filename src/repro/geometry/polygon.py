"""Convex polygons via half-plane clipping (Sutherland–Hodgman).

The QVC method needs one polygon operation: start from the data-space
rectangle and clip it successively with the bisector half-planes.  The
result is always convex, so a simple Sutherland–Hodgman clip against each
half-plane suffices.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class ConvexPolygon:
    """A convex polygon given by its vertices in order.

    May be *empty* (no vertices) after clipping with incompatible
    half-planes; degenerate polygons (segments/points) are representable
    and behave consistently for MBR computation.
    """

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[Point]):
        self.vertices: tuple[Point, ...] = tuple(Point(*v) for v in vertices)

    @classmethod
    def from_rect(cls, rect: Rect) -> "ConvexPolygon":
        return cls(rect.corners())

    def is_empty(self) -> bool:
        return not self.vertices

    def clip(self, hp: HalfPlane) -> "ConvexPolygon":
        """The polygon intersected with the half-plane ``hp``."""
        if not self.vertices:
            return self
        kept: list[Point] = []
        n = len(self.vertices)
        violations = [hp.signed_violation(v) for v in self.vertices]
        # Inside-tolerance scaled to the constraint terms: vertices
        # produced by an earlier clip sit *on* the boundary with rounding
        # noise proportional to |a*x| + |b*y| + |c|, which for
        # domain-sized coordinates dwarfs any fixed absolute epsilon.
        tolerances = [
            1e-9 * (abs(hp.a * v[0]) + abs(hp.b * v[1]) + abs(hp.c) + 1.0)
            for v in self.vertices
        ]
        for i in range(n):
            j = (i + 1) % n
            cur, nxt = self.vertices[i], self.vertices[j]
            cur_v, nxt_v = violations[i], violations[j]
            cur_in = cur_v <= tolerances[i]
            nxt_in = nxt_v <= tolerances[j]
            if cur_in:
                kept.append(cur)
            if cur_in != nxt_in:
                # The edge crosses the boundary: add the intersection
                # point, clamped to the segment so a near-parallel edge
                # cannot extrapolate to a far-away spurious vertex.
                t = min(1.0, max(0.0, cur_v / (cur_v - nxt_v)))
                kept.append(
                    Point(
                        cur[0] + t * (nxt[0] - cur[0]),
                        cur[1] + t * (nxt[1] - cur[1]),
                    )
                )
        return ConvexPolygon(kept)

    def clip_all(self, halfplanes: Sequence[HalfPlane]) -> "ConvexPolygon":
        poly = self
        for hp in halfplanes:
            poly = poly.clip(hp)
            if poly.is_empty():
                break
        return poly

    def mbr(self) -> Rect:
        """The MBR of the polygon; raises ``ValueError`` when empty."""
        if not self.vertices:
            raise ValueError("empty polygon has no MBR")
        return Rect.from_points(self.vertices)

    def contains_point(self, p: Point, eps: float = 1e-9) -> bool:
        """Point-in-convex-polygon test (boundary counts as inside).

        Works for vertices in either orientation by checking that the
        point is on a consistent side of every edge.
        """
        n = len(self.vertices)
        if n == 0:
            return False
        if n == 1:
            return (
                abs(p[0] - self.vertices[0][0]) <= eps
                and abs(p[1] - self.vertices[0][1]) <= eps
            )
        sign = 0
        for i in range(n):
            ax, ay = self.vertices[i]
            bx, by = self.vertices[(i + 1) % n]
            cross = (bx - ax) * (p[1] - ay) - (by - ay) * (p[0] - ax)
            if cross > eps:
                if sign < 0:
                    return False
                sign = 1
            elif cross < -eps:
                if sign > 0:
                    return False
                sign = -1
        return True

    def area(self) -> float:
        """Unsigned polygon area (shoelace formula)."""
        n = len(self.vertices)
        if n < 3:
            return 0.0
        acc = 0.0
        for i in range(n):
            ax, ay = self.vertices[i]
            bx, by = self.vertices[(i + 1) % n]
            acc += ax * by - bx * ay
        return abs(acc) / 2.0
