"""Axis-aligned rectangles (MBRs).

Rectangles serve three roles in the reproduction:

* minimum bounding rectangles of R-tree nodes and entries,
* window-query ranges (the ``AIR(p)`` of the QVC method),
* the data-space domain used by generators and half-plane clipping.

``Rect`` is a ``NamedTuple`` of ``(xmin, ymin, xmax, ymax)`` so it is
immutable, hashable and cheap to unpack in join loops.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple

from repro.geometry.point import Point


class Rect(NamedTuple):
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, p: Point) -> "Rect":
        """The degenerate rectangle covering a single point."""
        return cls(p[0], p[1], p[0], p[1])

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The MBR of a non-empty collection of points."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("Rect.from_points requires at least one point")
        xmin = xmax = first[0]
        ymin = ymax = first[1]
        for x, y in it:
            if x < xmin:
                xmin = x
            elif x > xmax:
                xmax = x
            if y < ymin:
                ymin = y
            elif y > ymax:
                ymax = y
        return cls(xmin, ymin, xmax, ymax)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            xmin, ymin, xmax, ymax = next(it)
        except StopIteration:
            raise ValueError("Rect.union_all requires at least one rect")
        for r in it:
            if r[0] < xmin:
                xmin = r[0]
            if r[1] < ymin:
                ymin = r[1]
            if r[2] > xmax:
                xmax = r[2]
            if r[3] > ymax:
                ymax = r[3]
        return cls(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, the R*-tree ``margin`` measure."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def is_valid(self) -> bool:
        """True when the rectangle is non-degenerate (xmin<=xmax, ymin<=ymax)."""
        return self.xmin <= self.xmax and self.ymin <= self.ymax

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        return self.xmin <= p[0] <= self.xmax and self.ymin <= p[1] <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    # ------------------------------------------------------------------
    # Combinations
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def union_point(self, p: Point) -> "Rect":
        return Rect(
            min(self.xmin, p[0]),
            min(self.ymin, p[1]),
            max(self.xmax, p[0]),
            max(self.ymax, p[1]),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (Guttman's criterion)."""
        return self.union(other).area - self.area

    def expanded(self, delta: float) -> "Rect":
        """The rectangle grown by ``delta`` on every side (Minkowski sum
        with a square); used to express MND regions conservatively."""
        return Rect(
            self.xmin - delta, self.ymin - delta, self.xmax + delta, self.ymax + delta
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_dist_point(self, p: Point) -> float:
        """``minDist(p, M)``: distance from a point to the rectangle.

        Zero when the point lies inside or on the boundary.
        """
        dx = 0.0
        if p[0] < self.xmin:
            dx = self.xmin - p[0]
        elif p[0] > self.xmax:
            dx = p[0] - self.xmax
        dy = 0.0
        if p[1] < self.ymin:
            dy = self.ymin - p[1]
        elif p[1] > self.ymax:
            dy = p[1] - self.ymax
        if dx == 0.0:
            return dy
        if dy == 0.0:
            return dx
        return math.hypot(dx, dy)

    def min_dist_sq_point(self, p: Point) -> float:
        """Squared ``minDist(p, M)``; preferred in best-first NN heaps."""
        dx = 0.0
        if p[0] < self.xmin:
            dx = self.xmin - p[0]
        elif p[0] > self.xmax:
            dx = p[0] - self.xmax
        dy = 0.0
        if p[1] < self.ymin:
            dy = self.ymin - p[1]
        elif p[1] > self.ymax:
            dy = p[1] - self.ymax
        return dx * dx + dy * dy

    def min_dist_rect(self, other: "Rect") -> float:
        """``minDist(M1, M2)``: smallest distance between any two points of
        the rectangles; zero when they intersect."""
        dx = 0.0
        if other.xmax < self.xmin:
            dx = self.xmin - other.xmax
        elif other.xmin > self.xmax:
            dx = other.xmin - self.xmax
        dy = 0.0
        if other.ymax < self.ymin:
            dy = self.ymin - other.ymax
        elif other.ymin > self.ymax:
            dy = other.ymin - self.ymax
        if dx == 0.0:
            return dy
        if dy == 0.0:
            return dx
        return math.hypot(dx, dy)

    def max_dist_point(self, p: Point) -> float:
        """``maxDist(p, M)``: distance from a point to the farthest corner."""
        dx = max(abs(p[0] - self.xmin), abs(p[0] - self.xmax))
        dy = max(abs(p[1] - self.ymin), abs(p[1] - self.ymax))
        return math.hypot(dx, dy)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corner points, counter-clockwise from the lower-left."""
        return (
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        )
