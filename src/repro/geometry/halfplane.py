"""Half-planes and perpendicular bisectors.

The quasi-Voronoi cell of a potential location ``p`` (Section IV) is the
intersection of at most four half-planes, each bounded by the perpendicular
bisector between ``p`` and the nearest facility in one quadrant, and each
containing ``p``.  A half-plane is stored in implicit form

    ``a*x + b*y <= c``

with ``(a, b)`` the outward direction (pointing away from the kept side).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.geometry.point import Point


class HalfPlane(NamedTuple):
    """The closed half-plane ``a*x + b*y <= c``."""

    a: float
    b: float
    c: float

    def contains(self, p: Point, eps: float = 1e-9) -> bool:
        """Whether ``p`` lies in the half-plane (with tolerance ``eps``)."""
        return self.a * p[0] + self.b * p[1] <= self.c + eps

    def signed_violation(self, p: Point) -> float:
        """``a*x + b*y - c``: negative inside, positive outside.

        Not a Euclidean distance unless ``(a, b)`` is a unit vector; used
        only for sign tests and for interpolation during clipping.
        """
        return self.a * p[0] + self.b * p[1] - self.c


def bisector_halfplane(p: Point, f: Point) -> HalfPlane:
    """The half-plane of points at least as close to ``p`` as to ``f``.

    ``dist(x, p) <= dist(x, f)`` expands to the linear constraint
    ``2*(f - p) . x <= |f|^2 - |p|^2``.  Raises ``ValueError`` for
    coincident points, for which the bisector is undefined.
    """
    if p == f:
        raise ValueError("bisector undefined for coincident points")
    a = 2.0 * (f[0] - p[0])
    b = 2.0 * (f[1] - p[1])
    c = f[0] * f[0] + f[1] * f[1] - p[0] * p[0] - p[1] * p[1]
    return HalfPlane(a, b, c)
