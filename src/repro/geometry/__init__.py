"""Planar geometry kernel used by every other subsystem.

The module provides exactly the primitives the paper's algorithms need:

* :class:`~repro.geometry.point.Point` — 2-D points (clients, facilities,
  potential locations are all points in the Euclidean plane).
* :class:`~repro.geometry.rect.Rect` — axis-aligned rectangles, used as
  R-tree minimum bounding rectangles (MBRs) and window-query ranges.
* :class:`~repro.geometry.circle.Circle` — nearest-facility circles (NFCs).
* :class:`~repro.geometry.halfplane.HalfPlane` and
  :func:`~repro.geometry.halfplane.bisector_halfplane` — perpendicular
  bisectors used to build quasi-Voronoi cells.
* :class:`~repro.geometry.polygon.ConvexPolygon` — convex cells produced by
  half-plane clipping.
* :func:`~repro.geometry.maxmindist.max_min_dist_circle_rect` — the
  candidate-furthest-point computation of Theorems 2 and 3, the heart of
  the MND method.
"""

from repro.geometry.circle import Circle
from repro.geometry.halfplane import HalfPlane, bisector_halfplane
from repro.geometry.maxmindist import (
    max_min_dist_bruteforce,
    max_min_dist_circle_rect,
    mnd_of_circles,
    mnd_of_regions,
)
from repro.geometry.point import Point, dist, dist_sq
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect

__all__ = [
    "Circle",
    "ConvexPolygon",
    "HalfPlane",
    "Point",
    "Rect",
    "bisector_halfplane",
    "dist",
    "dist_sq",
    "max_min_dist_bruteforce",
    "max_min_dist_circle_rect",
    "mnd_of_circles",
    "mnd_of_regions",
]
