"""Circles — used for nearest-facility circles (NFCs).

The NFC of a client ``c`` is the circle centred at ``c`` whose radius is
``dnn(c, F)``, the distance to ``c``'s nearest existing facility.  A
potential location ``p`` reduces the NFD of ``c`` exactly when ``p`` lies
strictly inside ``NFC(c)`` (Section V of the paper).
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Circle(NamedTuple):
    """A circle given by its centre and radius."""

    center: Point
    radius: float

    def mbr(self) -> Rect:
        """The (square) minimum bounding rectangle of the circle.

        The RNN-tree of the NFC method stores exactly these MBRs; because
        they are squares, the radius can be recovered as half the edge
        length and the centre as the MBR centre — the arithmetic used at
        the leaves of Algorithm 4.
        """
        cx, cy = self.center
        r = self.radius
        return Rect(cx - r, cy - r, cx + r, cy + r)

    def contains_point(self, p: Point, strict: bool = True) -> bool:
        """Whether ``p`` is inside the circle.

        ``strict`` matches the paper's ``dist(c, p) < dnn(c, F)``: a point
        exactly on the boundary yields no distance reduction and is
        excluded by default.
        """
        dx = p[0] - self.center[0]
        dy = p[1] - self.center[1]
        d_sq = dx * dx + dy * dy
        r_sq = self.radius * self.radius
        if strict:
            return d_sq < r_sq
        return d_sq <= r_sq

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether the circle and rectangle share at least one point."""
        return rect.min_dist_point(self.center) <= self.radius

    def point_at_angle(self, theta: float) -> Point:
        """The boundary point at angle ``theta`` (radians, from +x axis)."""
        return Point(
            self.center[0] + self.radius * math.cos(theta),
            self.center[1] + self.radius * math.sin(theta),
        )

    def candidate_furthest_points(self) -> tuple[Point, Point, Point, Point]:
        """The four CFPs of Section VI-A: the intersections of the
        horizontal and vertical lines through the centre with the circle,
        i.e. the axis-extreme boundary points."""
        cx, cy = self.center
        r = self.radius
        return (
            Point(cx - r, cy),
            Point(cx + r, cy),
            Point(cx, cy + r),
            Point(cx, cy - r),
        )
