"""Points and distance helpers.

All data objects in the paper (clients, facilities, potential locations)
are points in the Euclidean plane, and the optimisation function is built
from pairwise L2 distances.  ``Point`` is a ``NamedTuple`` so instances are
plain tuples: hot loops can unpack them without attribute-access overhead
and they hash/compare structurally.
"""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """A point in the 2-D Euclidean plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def quadrant_relative_to(self, origin: "Point") -> int:
        """Quadrant (0..3) of this point in a frame centred at ``origin``.

        Quadrants follow the usual counter-clockwise convention with axes
        parallel to the original axes, exactly as in the QVC construction
        (Section IV of the paper).  Points on a positive axis belong to the
        lower-numbered adjacent quadrant; the origin itself maps to 0.
        """
        right = self.x >= origin.x
        top = self.y >= origin.y
        if right and top:
            return 0
        if not right and top:
            return 1
        if not right and not top:
            return 2
        return 3


def dist(a: Point, b: Point) -> float:
    """Euclidean distance between two points (free-function form)."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def dist_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy
