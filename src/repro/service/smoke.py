"""Service smoke check (run in CI as ``python -m repro.service.smoke``).

Boots a real server on an ephemeral port and drives it over TCP:

1. **parity** — for every method, the batched-over-the-wire answer
   (location, ``dr``, ``io_total``, per-structure reads) equals the
   serial in-process ``select()`` on an identical workspace, and a
   repeated request is served from the cache with the same bytes;
2. **admission** — with a one-slot queue and a long batch window, a
   burst of selections produces at least one explicit ``queue_full``
   rejection and no hung request;
3. **invalidation** — a workspace mutation between two identical
   requests bumps the served ``data_version`` and forces recomputation;
4. **graceful shutdown** — a drain-stop completes with every accepted
   request answered.

Exits non-zero on the first violated invariant.
"""

from __future__ import annotations

import sys
import threading

from repro.core import DynamicWorkspace, METHODS, Workspace, make_selector
from repro.datasets.generators import make_instance
from repro.service import (
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    serve_in_thread,
)

SMOKE_SEED = 11
SMOKE_SIZES = dict(n_c=800, n_f=40, n_p=60)


def _fingerprint(result) -> tuple:
    return (
        result.location.sid,
        result.location.x,
        result.location.y,
        result.dr,
        result.io_total,
        dict(result.io_reads),
    )


def check_parity_and_cache(host: str, port: int, expected: dict) -> list[str]:
    failures = []
    with ServiceClient(host, port) as client:
        methods = sorted(METHODS)
        batched = client.select_many(methods)  # pipelined -> micro-batched
        for method, answer in zip(methods, batched):
            if _fingerprint(answer.result) != expected[method]:
                failures.append(f"{method}: wire result differs from select()")
            if answer.cached:
                failures.append(f"{method}: first request claimed a cache hit")
        if not any(a.batch_size and a.batch_size > 1 for a in batched):
            failures.append("pipelined burst never coalesced into a micro-batch")
        for method in methods:
            answer = client.select(method)
            if not answer.cached:
                failures.append(f"{method}: repeat was not served from cache")
            if _fingerprint(answer.result) != expected[method]:
                failures.append(f"{method}: cached result differs from select()")
    return failures


def check_concurrent_clients(host: str, port: int, expected: dict) -> list[str]:
    failures: list[str] = []
    lock = threading.Lock()

    def _worker(method: str) -> None:
        try:
            with ServiceClient(host, port) as client:
                answer = client.select(method, no_cache=True)
            if _fingerprint(answer.result) != expected[method]:
                with lock:
                    failures.append(f"{method}: concurrent result differs")
        except Exception as exc:  # noqa: BLE001 — collected, not raised
            with lock:
                failures.append(f"{method}: concurrent request failed: {exc}")

    threads = [
        threading.Thread(target=_worker, args=(m,))
        for m in sorted(METHODS) * 3
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    return failures


def check_invalidation(host: str, port: int) -> list[str]:
    failures = []
    with ServiceClient(host, port) as client:
        before = client.select("MND")
        if not before.cached:
            pass  # cold here is fine; what matters is the flip below
        client.update("add_facility", point=[250.0, 250.0])
        after = client.select("MND")
        if after.data_version <= before.data_version:
            failures.append("update did not bump the served data_version")
        if after.cached:
            failures.append("post-update request was served from a stale cache")
    return failures


def check_queue_full() -> list[str]:
    """A one-slot queue under a pipelined burst must reject explicitly."""
    ws = DynamicWorkspace(make_instance(rng=SMOKE_SEED, **SMOKE_SIZES))
    config = ServiceConfig(max_pending=1, batch_window_s=0.25, workers=1)
    failures = []
    with serve_in_thread({"default": ws}, config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            rejected = 0
            try:
                client.select_many(["MND"] * 6, no_cache=True)
            except QueueFullError:
                rejected += 1
            if not rejected:
                failures.append(
                    "six pipelined selects against a one-slot queue were all "
                    "admitted — admission control is not bounding"
                )
    return failures


def main() -> int:
    instance = make_instance(rng=SMOKE_SEED, **SMOKE_SIZES)
    reference = Workspace(make_instance(rng=SMOKE_SEED, **SMOKE_SIZES))
    expected = {
        m: _fingerprint(make_selector(reference, m).select()) for m in METHODS
    }

    failures: list[str] = []
    ws = DynamicWorkspace(instance)
    handle = serve_in_thread(
        {"default": ws}, ServiceConfig(workers=2, batch_window_s=0.05)
    )
    print(f"service smoke: serving on {handle.host}:{handle.port}")
    try:
        failures += check_parity_and_cache(handle.host, handle.port, expected)
        failures += check_concurrent_clients(handle.host, handle.port, expected)
        failures += check_invalidation(handle.host, handle.port)
    finally:
        handle.stop()  # graceful drain; raises if the thread hangs
    print("service smoke: drain-stop completed")
    failures += check_queue_full()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"service smoke: OK ({len(METHODS)} methods, parity/batch/cache/"
          "admission/drain all verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
