"""The asyncio query service: admission, micro-batching, caching.

:class:`QueryService` hosts one or more named workspaces behind a TCP
server speaking the newline-delimited JSON protocol of
:mod:`repro.service.protocol`.  Per hosted workspace:

* an :class:`~repro.service.admission.AdmissionQueue` bounds how much
  work may be outstanding (explicit ``queue_full`` rejection, per-
  request deadlines, graceful drain);
* a **micro-batcher** pulls admitted ``select`` tickets off the queue,
  holds the batch open for a short collection window, coalesces
  duplicate requests, and executes the whole batch through one
  :meth:`~repro.exec.engine.QueryEngine.run_batch` call — so concurrent
  requests share the engine's worker pool and the workspace's decoded-
  leaf cache instead of queueing behind one another serially.  Results
  are byte-identical to serial in-process ``select()`` at any worker
  count (the engine's determinism contract), which is what makes the
  result cache sound in the first place;
* ``update`` tickets travel the *same* queue, so a mutation is strictly
  ordered against the selections admitted around it: batch formation
  stops at an update, the preceding batch executes, then the mutation
  runs alone (bumping ``data_version``), then batching resumes.

Finished results land in the shared version-keyed
:class:`~repro.service.cache.ResultCache`; a repeated request at an
unchanged version is answered on the connection handler without ever
being admitted.  For a :class:`DynamicWorkspace` the governing version
is not ``data_version`` but the region clock's per-operation sub-epoch
(:class:`~repro.core.regions.RegionClock`): a mutation whose affected
region misses every potential location leaves ``select``/``partials``
answers cached, and a facility mutation that changes no client leaves
``evaluate`` answers cached too — the cache stays *warm* under
spatially disjoint churn instead of starting cold after every write.

Every request is handled as its own task, so a single connection may
pipeline many requests (responses re-associate by ``id``) — that is
also how one client makes a micro-batch happen on purpose.

Every request also runs under a :class:`~repro.obs.live.RequestTrace`
(when :class:`~repro.service.telemetry.TelemetryConfig` is enabled, the
default): the client's ``trace_id`` — or a server-minted one — is
echoed on the response, correlated across the admission-wait, batch-
assembly, engine-execution and cache-lookup spans, propagated into the
engine's per-task span ``attrs``, and recoverable afterwards through
the ``trace`` op.  Telemetry never changes what a query computes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core import METHODS, make_selector
from repro.core.dynamic import DynamicWorkspace
from repro.core.evaluate import evaluate_location
from repro.exec import BufferPoolWorkspaceError, QueryEngine
from repro.obs.openmetrics import CONTENT_TYPE
from repro.obs.registry import REGISTRY
from repro.obs.sinks import CallbackSink
from repro.obs.trace import Span, Tracer
from repro.service.admission import AdmissionQueue, Ticket
from repro.service.cache import ResultCache
from repro.service.telemetry import ServiceTelemetry, TelemetryConfig
from repro.service.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    BadRequestError,
    DeadlineExceededError,
    ServiceError,
    ShuttingDownError,
    UnknownMethodError,
    UnknownWorkspaceError,
    UnsupportedError,
    decode,
    encode,
    error_response,
    ok_response,
    selection_to_wire,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`QueryService`."""

    #: Admission bound per workspace (queued + in-flight requests).
    max_pending: int = 64
    #: How long the batcher holds a micro-batch open after its first
    #: ticket arrives.  Zero still batches whatever is already queued.
    batch_window_s: float = 0.002
    #: Largest micro-batch handed to one ``run_batch`` call.
    max_batch: int = 16
    #: Engine worker-pool size shared by each workspace's batches.
    workers: int = 2
    #: Engine executor kind (``"thread"`` or ``"process"``).
    executor: str = "thread"
    #: Deadline applied to requests that do not carry ``timeout_s``.
    default_timeout_s: Optional[float] = 30.0
    #: Result-cache capacity (entries, LRU beyond it); 0 disables.
    cache_entries: int = 1024
    #: How long :meth:`QueryService.shutdown` waits for the queues to
    #: drain before abandoning stragglers.
    drain_timeout_s: float = 10.0
    #: Live-telemetry configuration (tracing, windows, exporters).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)


class WorkspaceHost:
    """One hosted workspace: engine + admission queue + micro-batcher."""

    def __init__(
        self,
        name: str,
        workspace,
        config: ServiceConfig,
        cache: ResultCache,
        telemetry: Optional[ServiceTelemetry] = None,
    ):
        self.name = name
        self.workspace = workspace
        self.config = config
        self.cache = cache
        self.telemetry = telemetry
        try:
            self.engine = QueryEngine(
                workspace, workers=config.workers, executor=config.executor
            )
        except BufferPoolWorkspaceError as exc:
            raise BufferPoolWorkspaceError(
                f"workspace {name!r} cannot be served: {exc}"
            ) from None
        #: Engine span roots of the current batch, in query order.  Safe
        #: as plain state: one batch runs at a time per workspace, and
        #: the list is cleared before / drained after each run_batch.
        self._roots: list[Span] = []
        if telemetry is not None and telemetry.enabled:
            workspace.attach_tracer(Tracer([CallbackSink(self._roots.append)]))
        self.queue = AdmissionQueue(name, config.max_pending)
        self._task: Optional[asyncio.Task] = None
        self._batches = REGISTRY.counter("service.batches")
        self._batch_size = REGISTRY.histogram("service.batch.size")
        self._coalesced = REGISTRY.counter("service.coalesced")
        self._expired = REGISTRY.counter("service.expired")
        self._latency = REGISTRY.histogram("service.select.latency_s")
        #: Cumulative result-cache entries dropped / kept alive across
        #: this workspace's mutations — the observable cache warmth.
        self._cache_dropped = 0
        self._cache_survived = 0

    # ------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        return getattr(self.workspace, "data_version", 0)

    def version_for(self, op: str) -> int:
        """The cache-key version governing ``op``'s answers.

        Dynamic workspaces expose the region clock's per-op sub-epoch;
        static workspaces (no clock) fall back to ``data_version``.
        """
        clock = getattr(self.workspace, "region_clock", None)
        if clock is not None:
            return clock.version_for(op)
        return self.data_version

    def live_versions(self) -> dict[str, int]:
        return {
            op: self.version_for(op) for op in ("select", "partials", "evaluate")
        }

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._batch_loop(), name=f"svc-batcher-{self.name}"
        )

    async def stop(self) -> None:
        """Cancel the batcher and fail anything still queued."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while True:
            ticket = await self.queue.get_nowait_or_wait(0)
            if ticket is None:
                break
            ticket.fail(
                ShuttingDownError(
                    f"workspace {self.name!r} shut down before this request ran"
                )
            )
            self.queue.finish(ticket)
        self.engine.close()

    # ------------------------------------------------------------------
    # The micro-batch loop
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        carried: Optional[Ticket] = None
        while True:
            ticket = carried if carried is not None else await self.queue.get()
            carried = None
            # When the ticket was picked off the queue: the boundary
            # between its admission-wait and batch-assembly spans.
            ticket.meta.setdefault("picked_at", loop.time())
            if self._discard_if_dead(ticket, loop.time()):
                continue
            if ticket.op != "select":
                await self._run_single(ticket)
                continue
            batch = [ticket]
            window_end = loop.time() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                nxt = await self.queue.get_nowait_or_wait(window_end - loop.time())
                if nxt is None:
                    break
                nxt.meta.setdefault("picked_at", loop.time())
                if self._discard_if_dead(nxt, loop.time()):
                    continue
                if nxt.op != "select":
                    # A mutation: close the batch here so queue order is
                    # preserved — selects admitted before it see the old
                    # version, selects after it the new one.
                    carried = nxt
                    break
                batch.append(nxt)
            await self._run_selects(batch)

    def _discard_if_dead(self, ticket: Ticket, now: float) -> bool:
        """Retire a cancelled/expired ticket without executing it."""
        if ticket.cancelled:
            self.queue.finish(ticket)
            return True
        if ticket.expired(now):
            ticket.fail(
                DeadlineExceededError(
                    f"request deadline passed after "
                    f"{now - ticket.enqueued_at:.3f}s in the queue"
                )
            )
            self._expired.inc()
            self.queue.finish(ticket)
            return True
        return False

    async def _run_selects(self, batch: list[Ticket]) -> None:
        loop = asyncio.get_running_loop()
        live = [t for t in batch if not self._discard_if_dead(t, loop.time())]
        if not live:
            return
        version = self.data_version
        key_version = self.version_for("select")
        # Coalesce duplicates: one engine execution answers every ticket
        # asking the same question of the same snapshot.
        groups: dict[tuple, list[Ticket]] = {}
        for ticket in live:
            key = self.cache.key(
                self.name, key_version, "select", {"method": ticket.params["method"]}
            )
            groups.setdefault(key, []).append(ticket)
        self._coalesced.inc(len(live) - len(groups))
        keys = list(groups)
        methods = [groups[key][0].params["method"] for key in keys]
        started = loop.time()
        traced = self.telemetry is not None and self.telemetry.enabled
        tags: Optional[list] = None
        if traced:
            # Admission wait ended when the batcher picked the ticket;
            # everything between that and the engine call is assembly.
            for ticket in live:
                trace = ticket.meta.get("trace")
                if trace is None:
                    continue
                picked = ticket.meta.get("picked_at", started)
                trace.add_span("admission", picked - ticket.enqueued_at)
                trace.add_span("batch", started - picked)
            # One tag set per engine query: the first traced ticket of
            # each coalesced group lends its id to the shared span tree.
            tags = []
            for key in keys:
                group_traces = [
                    t.meta["trace"]
                    for t in groups[key]
                    if t.meta.get("trace") is not None
                ]
                tags.append(
                    {"trace_id": group_traces[0].trace_id}
                    if group_traces
                    else None
                )
            self._roots.clear()
        try:
            results = await asyncio.to_thread(self.engine.run_batch, methods, tags)
        except Exception as exc:  # noqa: BLE001 — surfaced to every caller
            error = (
                exc
                if isinstance(exc, ServiceError)
                else ServiceError(f"engine failure: {exc}")
            )
            for ticket in live:
                ticket.fail(error)
                self.queue.finish(ticket)
            return
        execute_s = loop.time() - started
        roots = list(self._roots) if traced else []
        self._roots.clear()
        self._batches.inc()
        self._batch_size.observe(len(live))
        for index, (key, result) in enumerate(zip(keys, results)):
            wire = selection_to_wire(result)
            engine_tree = (
                roots[index].to_dict() if index < len(roots) else None
            )
            for ticket in groups[key]:
                if not ticket.params.get("no_cache"):
                    self.cache.put(key, wire)
                trace = ticket.meta.get("trace")
                if trace is not None:
                    trace.batch_size = len(live)
                    extra: dict[str, Any] = {
                        "coalesced_with": len(groups[key]) - 1
                    }
                    if engine_tree is not None:
                        extra["engine"] = engine_tree
                    trace.add_span("execute", execute_s, **extra)
                ticket.resolve(
                    {
                        "result": wire,
                        "cached": False,
                        "batch_size": len(live),
                        "data_version": version,
                        "queue_wait_s": started - ticket.enqueued_at,
                    }
                )
                self._latency.observe(loop.time() - ticket.enqueued_at)
                self.queue.finish(ticket)

    # ------------------------------------------------------------------
    # Non-batched operations (updates, evaluations)
    # ------------------------------------------------------------------
    async def _run_single(self, ticket: Ticket) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        trace = ticket.meta.get("trace")
        if trace is not None:
            picked = ticket.meta.get("picked_at", started)
            trace.add_span("admission", picked - ticket.enqueued_at)
        try:
            if ticket.op == "update":
                payload = await asyncio.to_thread(self._apply_update, ticket.params)
                # Keyed staleness already protects correctness; the
                # eager drop reclaims the dead epochs' memory now, and
                # the survivor count makes cache warmth observable.
                dropped, survived = self.cache.invalidate(
                    self.name,
                    live_version=self.data_version,
                    live_versions=self.live_versions(),
                )
                self._cache_dropped += dropped
                self._cache_survived += survived
            elif ticket.op == "evaluate":
                payload = await asyncio.to_thread(self._apply_evaluate, ticket.params)
            elif ticket.op == "partials":
                payload = await asyncio.to_thread(self._apply_partials, ticket.params)
            else:
                raise BadRequestError(f"unknown queued operation {ticket.op!r}")
            if trace is not None:
                trace.add_span("execute", loop.time() - started)
            ticket.resolve(payload)
        except ServiceError as exc:
            ticket.fail(exc)
        except Exception as exc:  # noqa: BLE001 — surfaced to the caller
            ticket.fail(ServiceError(f"{ticket.op} failure: {exc}"))
        finally:
            self.queue.finish(ticket)

    def _apply_update(self, params: dict) -> dict:
        ws = self.workspace
        if not isinstance(ws, DynamicWorkspace):
            raise UnsupportedError(
                f"workspace {self.name!r} is static; serve a DynamicWorkspace "
                "to accept updates"
            )
        action = params.get("action")
        clock = getattr(ws, "region_clock", None)
        before = clock.snapshot() if clock is not None else None
        if action == "add_client":
            point = _point_param(params)
            client = ws.add_client(point, weight=float(params.get("weight", 1.0)))
            detail: dict[str, Any] = {"cid": client.cid, "dnn": client.dnn}
        elif action == "remove_client":
            cid = params.get("cid")
            matches = [c for c in ws.clients if c.cid == cid]
            if not matches:
                raise BadRequestError(f"no client with cid {cid!r}")
            ws.remove_client(matches[0])
            detail = {"cid": cid}
        elif action == "add_facility":
            point = _point_param(params)
            site = ws.add_facility(point)
            detail = {"sid": site.sid}
        elif action == "remove_facility":
            sid = params.get("sid")
            matches = [s for s in ws.facilities if s.sid == sid]
            if not matches:
                raise BadRequestError(f"no facility with sid {sid!r}")
            ws.remove_facility(matches[0])
            detail = {"sid": sid}
        else:
            raise BadRequestError(
                f"unknown update action {action!r}; expected add_client, "
                "remove_client, add_facility or remove_facility"
            )
        detail.update(
            {
                "action": action,
                "data_version": self.data_version,
                "n_c": ws.n_c,
                "n_f": ws.n_f,
                "n_p": ws.n_p,
            }
        )
        if clock is not None and before is not None:
            after = clock.snapshot()
            # Which answer classes this mutation actually aged — a shard
            # coordinator folds these flags into its own logical epochs.
            detail["select_changed"] = (
                after["select_epoch"] != before["select_epoch"]
            )
            detail["evaluate_changed"] = (
                after["evaluate_epoch"] != before["evaluate_epoch"]
            )
            detail["region"] = after["last_region"]
        return {"result": detail, "data_version": self.data_version}

    def _apply_evaluate(self, params: dict) -> dict:
        ids = params.get("ids")
        if not isinstance(ids, list) or not all(isinstance(i, int) for i in ids):
            raise BadRequestError("evaluate needs 'ids': a list of candidate ids")
        version = self.data_version
        reports = []
        for candidate in ids:
            try:
                report = evaluate_location(self.workspace, candidate)
            except ValueError as exc:
                raise BadRequestError(str(exc)) from None
            # Additive companions of the averages, so a shard
            # coordinator can fold per-tile reports exactly (sums in
            # tile order, averages recomputed from the folded sums).
            # evaluate_location derives its averages from exactly these
            # sums, so recomputing them here is bit-faithful.
            nfd_before = float(self.workspace.client_xyd[:, 2].sum())
            reports.append(
                {
                    "sid": report.location.sid,
                    "x": report.location.x,
                    "y": report.location.y,
                    "influence_count": report.influence_count,
                    "dr": report.dr,
                    "avg_nfd_before": report.avg_nfd_before,
                    "avg_nfd_after": report.avg_nfd_after,
                    "max_client_gain": report.max_client_gain,
                    "n_c": self.workspace.n_c,
                    "nfd_sum_before": nfd_before,
                    "nfd_sum_after": nfd_before - report.dr,
                }
            )
        payload = {"result": reports, "cached": False, "data_version": version}
        key = self.cache.key(
            self.name, self.version_for("evaluate"), "evaluate", {"ids": ids}
        )
        self.cache.put(key, payload)
        return payload

    def _apply_partials(self, params: dict) -> dict:
        """One method's full ``dr`` vector plus I/O snapshot.

        The scatter half of the shard coordinator's exact merge
        (:mod:`repro.shard.merge`): the engine runs the method over this
        workspace alone and the *whole* distance-reduction vector
        crosses the wire (floats round-trip exactly), so the
        coordinator's tile-order fold reproduces the serial reference
        bit for bit.  Generic — any hosted workspace can answer it.
        """
        method = params["method"]
        version = self.data_version
        selector = make_selector(self.workspace, method)
        result = self.engine.run(selector)
        dr = selector.distance_reductions()
        payload = {
            "result": {
                "method": result.method,
                "tile_id": getattr(self.workspace, "tile_id", -1),
                "n_p": len(dr),
                "dr": [float(v) for v in dr],
                "io_total": result.io_total,
                "io_reads": dict(result.io_reads),
                "index_pages": result.index_pages,
                "elapsed_s": result.elapsed_s,
                "cpu_s": result.cpu_s,
            },
            "cached": False,
            "data_version": version,
        }
        key = self.cache.key(
            self.name, self.version_for("partials"), "partials", {"method": method}
        )
        self.cache.put(key, payload)
        return payload

    def describe(self) -> dict:
        ws = self.workspace
        info = {
            "n_c": ws.n_c,
            "n_f": ws.n_f,
            "n_p": ws.n_p,
            "data_version": self.data_version,
            "dynamic": isinstance(ws, DynamicWorkspace),
            "pending": self.queue.pending,
            "queue_depth": self.queue.depth,
            "max_pending": self.queue.max_pending,
            "engine_workers": self.engine.workers,
        }
        clock = getattr(ws, "region_clock", None)
        if clock is not None:
            info["region_clock"] = clock.snapshot()
        retained = self._cache_dropped + self._cache_survived
        info["cache_survival"] = (
            self._cache_survived / retained if retained else None
        )
        return info


def _point_param(params: dict) -> tuple[float, float]:
    point = params.get("point")
    if (
        not isinstance(point, (list, tuple))
        or len(point) != 2
        or not all(isinstance(v, (int, float)) for v in point)
    ):
        raise BadRequestError("update needs 'point': [x, y]")
    return (float(point[0]), float(point[1]))


class QueryService:
    """The long-lived service: hosts, dispatch and the TCP front end."""

    def __init__(
        self,
        workspaces: dict[str, Any],
        config: Optional[ServiceConfig] = None,
    ):
        if not workspaces:
            raise ValueError("a service needs at least one named workspace")
        self.config = config or ServiceConfig()
        # Telemetry first: it upgrades the shared registry metrics to
        # their windowed variants *before* the cache, queues and hosts
        # fetch handles, so their increments feed the rolling windows.
        self.telemetry = ServiceTelemetry(self.config.telemetry)
        self.cache = ResultCache(self.config.cache_entries)
        self.hosts = {
            name: WorkspaceHost(name, ws, self.config, self.cache, self.telemetry)
            for name, ws in workspaces.items()
        }
        self._server: Optional[asyncio.base_events.Server] = None
        #: Bound (host, port) of the plain-HTTP metrics listener, once
        #: started (None when the listener is not configured).
        self.metrics_address: Optional[tuple[str, int]] = None
        self._draining = False
        self._started_at = time.monotonic()
        self._requests = {
            op: REGISTRY.counter(f"service.requests.{op}") for op in OPERATIONS
        }
        self._connections = REGISTRY.gauge("service.connections")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the TCP server and start the batchers; returns the
        actual (host, port) — pass port 0 for an ephemeral one."""
        for workspace_host in self.hosts.values():
            workspace_host.start()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self.metrics_address = await self.telemetry.start_exporters(host)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain, then tear everything down.

        With ``drain=True`` (the default) every already-admitted request
        still gets its response before the batchers stop; new requests
        are rejected with ``shutting_down`` the moment the drain begins.
        """
        self._draining = True
        for host in self.hosts.values():
            host.queue.close()
        if drain:
            for host in self.hosts.values():
                await host.queue.drain(self.config.drain_timeout_s)
        for host in self.hosts.values():
            await host.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.telemetry.stop_exporters()
        self.metrics_address = None

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.inc()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # One task per request: pipelined requests on one
                # connection run concurrently (and so can micro-batch).
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connections.dec()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        try:
            message = decode(line)
            request_id = message.get("id")
            response = await self.handle_request(message)
        except ServiceError as exc:
            response = error_response(request_id, exc)
            trace_id = getattr(exc, "trace_id", None)
            if trace_id is not None:
                response["trace_id"] = trace_id
        except Exception as exc:  # noqa: BLE001 — protocol must answer
            response = error_response(request_id, ServiceError(str(exc)))
        async with write_lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # the caller went away; nothing left to tell them

    # ------------------------------------------------------------------
    # Dispatch (also the in-process API the tests exercise directly)
    # ------------------------------------------------------------------
    async def handle_request(self, message: dict) -> dict:
        """One request dict in, one response dict out.

        The whole request runs under one :class:`RequestTrace` (when
        telemetry is on): successful responses echo its ``trace_id``,
        failed ones carry it on the raised :class:`ServiceError` so the
        connection handler can still echo it.
        """
        trace = self.telemetry.begin(message)
        try:
            response = await self._dispatch(message, trace)
        except ServiceError as exc:
            self.telemetry.finish(trace, outcome=exc.code)
            if trace is not None:
                exc.trace_id = trace.trace_id
            raise
        except Exception:
            self.telemetry.finish(trace, outcome="internal")
            raise
        self.telemetry.finish(trace)
        if trace is not None:
            response.setdefault("trace_id", trace.trace_id)
        return response

    async def _dispatch(self, message: dict, trace) -> dict:
        request_id = message.get("id")
        op = message.get("op")
        if op not in OPERATIONS:
            raise BadRequestError(
                f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}"
            )
        self._requests[op].inc()
        if op == "health":
            return ok_response(request_id, self._health())
        if op == "stats":
            return ok_response(request_id, self._stats(message))
        if op == "metrics":
            return ok_response(
                request_id,
                {
                    "content_type": CONTENT_TYPE,
                    "body": self.telemetry.render_metrics(),
                },
            )
        if op == "trace":
            return ok_response(request_id, self.telemetry.trace_payload(message))
        host = self._resolve_host(message)
        if op == "select":
            return await self._handle_select(request_id, host, message, trace)
        if op == "partials":
            return await self._handle_partials(request_id, host, message, trace)
        if op == "evaluate":
            params = {"ids": message.get("ids")}
            started = time.perf_counter()
            cached = self.cache.get(
                self.cache.key(
                    host.name, host.version_for("evaluate"), "evaluate", params
                )
            )
            if trace is not None:
                trace.add_span(
                    "cache", time.perf_counter() - started, hit=cached is not None
                )
            if cached is not None:
                if trace is not None:
                    trace.cached = True
                response = dict(cached)
                response["cached"] = True
                return ok_response(request_id, response["result"], **{
                    k: v for k, v in response.items() if k != "result"
                })
            payload = await self._admit_and_wait(
                host, "evaluate", params, message, trace
            )
            return ok_response(request_id, payload["result"], **{
                k: v for k, v in payload.items() if k != "result"
            })
        # op == "update"
        params = {
            k: v
            for k, v in message.items()
            if k not in ("id", "op", "workspace", "trace_id")
        }
        payload = await self._admit_and_wait(host, "update", params, message, trace)
        return ok_response(request_id, payload["result"], **{
            k: v for k, v in payload.items() if k != "result"
        })

    def _resolve_host(self, message: dict) -> WorkspaceHost:
        name = message.get("workspace", "default")
        host = self.hosts.get(name)
        if host is None:
            raise UnknownWorkspaceError(
                f"unknown workspace {name!r}; serving: {', '.join(sorted(self.hosts))}"
            )
        return host

    async def _handle_select(
        self, request_id: Any, host: WorkspaceHost, message: dict, trace=None
    ) -> dict:
        method = message.get("method", "MND")
        if not isinstance(method, str) or method.upper() not in METHODS:
            raise UnknownMethodError(
                f"unknown method {method!r}; expected one of "
                f"{', '.join(sorted(METHODS))}"
            )
        method = method.upper()
        if trace is not None:
            trace.method = method
        no_cache = bool(message.get("no_cache", False))
        if not no_cache:
            key = self.cache.key(
                host.name, host.version_for("select"), "select", {"method": method}
            )
            started = time.perf_counter()
            cached = self.cache.get(key)
            if trace is not None:
                trace.add_span(
                    "cache", time.perf_counter() - started, hit=cached is not None
                )
            if cached is not None:
                if trace is not None:
                    trace.cached = True
                return ok_response(
                    request_id,
                    cached,
                    cached=True,
                    data_version=host.data_version,
                )
        payload = await self._admit_and_wait(
            host, "select", {"method": method, "no_cache": no_cache}, message, trace
        )
        return ok_response(request_id, payload["result"], **{
            k: v for k, v in payload.items() if k != "result"
        })

    async def _handle_partials(
        self, request_id: Any, host: WorkspaceHost, message: dict, trace=None
    ) -> dict:
        method = message.get("method", "MND")
        if not isinstance(method, str) or method.upper() not in METHODS:
            raise UnknownMethodError(
                f"unknown method {method!r}; expected one of "
                f"{', '.join(sorted(METHODS))}"
            )
        method = method.upper()
        if trace is not None:
            trace.method = method
        key = self.cache.key(
            host.name, host.version_for("partials"), "partials", {"method": method}
        )
        started = time.perf_counter()
        cached = self.cache.get(key)
        if trace is not None:
            trace.add_span(
                "cache", time.perf_counter() - started, hit=cached is not None
            )
        if cached is not None:
            if trace is not None:
                trace.cached = True
            response = dict(cached)
            response["cached"] = True
            return ok_response(request_id, response["result"], **{
                k: v for k, v in response.items() if k != "result"
            })
        payload = await self._admit_and_wait(
            host, "partials", {"method": method}, message, trace
        )
        return ok_response(request_id, payload["result"], **{
            k: v for k, v in payload.items() if k != "result"
        })

    async def _admit_and_wait(
        self, host: WorkspaceHost, op: str, params: dict, message: dict, trace=None
    ) -> dict:
        """Admit one ticket and await its payload, enforcing the deadline."""
        if self._draining:
            raise ShuttingDownError("service is draining; request rejected")
        loop = asyncio.get_running_loop()
        timeout = message.get("timeout_s", self.config.default_timeout_s)
        if timeout is not None:
            timeout = float(timeout)
        ticket = Ticket(
            op=op,
            params=params,
            future=loop.create_future(),
            enqueued_at=loop.time(),
            deadline=None if timeout is None else loop.time() + timeout,
        )
        if trace is not None:
            trace.queue_depth = host.queue.depth
            ticket.meta["trace"] = trace
        host.queue.submit(ticket)  # raises QueueFull / ShuttingDown
        try:
            if timeout is None:
                return await ticket.future
            return await asyncio.wait_for(ticket.future, timeout)
        except asyncio.TimeoutError:
            # The batcher retires the cancelled ticket when it reaches
            # it; the caller hears about the deadline immediately.
            ticket.cancelled = True
            raise DeadlineExceededError(
                f"{op} missed its {timeout:g}s deadline on "
                f"workspace {host.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "serving",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started_at,
            "workspaces": sorted(self.hosts),
        }

    def _stats(self, message: Optional[dict] = None) -> dict:
        """Service stats; ``prefix`` widens the registry view.

        The default prefix ``"service."`` keeps the historical payload
        shape; ``prefix: ""`` exposes the *whole* process registry —
        pager, leaf-cache and exec counters included — and any other
        prefix selects its slice.  ``window`` holds the rolling-window
        views of every windowed metric under the same prefix.
        """
        message = message or {}
        prefix = message.get("prefix", "service.")
        if not isinstance(prefix, str):
            raise BadRequestError("stats 'prefix' must be a string")
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "status": "draining" if self._draining else "serving",
            "requests": {
                op: counter.value for op, counter in self._requests.items()
            },
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits.value,
                "misses": self.cache.misses.value,
                "evictions": self.cache.evictions.value,
                "invalidations": self.cache.invalidations.value,
            },
            "counters": REGISTRY.snapshot(prefix),
            "window": REGISTRY.window_snapshot(prefix),
            "workspaces": {
                name: host.describe() for name, host in sorted(self.hosts.items())
            },
        }


# ----------------------------------------------------------------------
# Threaded embedding (tests, benchmarks, notebooks)
# ----------------------------------------------------------------------
class ServiceHandle:
    """A running service on a background thread; ``stop()`` tears it down."""

    def __init__(self, thread: threading.Thread, box: dict):
        self._thread = thread
        self._box = box
        self.host: str = box["host"]
        self.port: int = box["port"]

    @property
    def service(self) -> QueryService:
        return self._box["service"]

    def stop(self, drain: bool = True, timeout: float = 15.0) -> None:
        box = self._box
        if self._thread.is_alive():
            box["drain"] = drain
            box["loop"].call_soon_threadsafe(box["stopped"].set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")
        error = box.get("error")
        if error is not None:
            raise error

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve_in_thread(
    workspaces: dict[str, Any],
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServiceHandle:
    """Run a :class:`QueryService` on a daemon thread; returns once it
    is accepting connections (with the bound host/port filled in)."""
    started = threading.Event()
    box: dict = {}

    def _run() -> None:
        async def _main() -> None:
            service = QueryService(workspaces, config)
            try:
                box["host"], box["port"] = await service.start(host, port)
            except Exception as exc:  # noqa: BLE001 — reported to caller
                box["error"] = exc
                return
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            box["stopped"] = asyncio.Event()
            started.set()
            await box["stopped"].wait()
            await service.shutdown(drain=box.get("drain", True))

        try:
            asyncio.run(_main())
        except Exception as exc:  # noqa: BLE001 — reported to caller
            box.setdefault("error", exc)
        finally:
            started.set()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(30.0):
        raise RuntimeError("service did not start within 30s")
    if "error" in box:
        raise box["error"]
    return ServiceHandle(thread, box)
