"""The versioned result cache of the query service.

Location-selection is a repeated, interactive workload: many concurrent
requests ask the same question of the same dataset.  The cache stores
finished ``select`` (and ``evaluate``) results keyed by

    (workspace name, workspace ``data_version``, operation, params)

so a repeated request is answered without touching the engine at all —
and a mutation, which bumps the governing version, makes every cached
result it could have changed unreachable *by construction*.  There is
no TTL to tune and no invalidation message to lose: staleness is
impossible because the version is part of the key.

For a :class:`~repro.core.dynamic.DynamicWorkspace` the "version" is
no longer the all-or-nothing ``data_version`` but the region clock's
per-operation sub-epoch (:class:`~repro.core.regions.RegionClock`):
``select``/``partials`` answers key on ``select_epoch`` (bumped only
when a mutation's affected region covers a potential location) and
``evaluate`` on ``evaluate_epoch`` (bumped when any client state
changed) — so a spatially disjoint mutation leaves the matching cached
answers *live*, not just lazily reclaimed.  :meth:`invalidate` takes
the per-op live versions, eagerly drops only the entries whose epoch
moved, and reports how many survived, which feeds the per-workspace
cache-survival gauge in ``describe()``/``mindist top``.

Hit/miss/eviction/invalidation counts are reported into the process
:data:`~repro.obs.registry.REGISTRY` (``service.cache.*``), next to the
storage layer's metrics, so one ``stats`` call shows how much of the
offered load the cache absorbed.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Optional

from repro.obs.registry import REGISTRY

#: Default maximum number of cached results (LRU beyond this).
DEFAULT_CAPACITY = 1024


def params_key(params: dict) -> str:
    """A canonical, hashable fingerprint of request parameters.

    Sorted-key JSON, so two requests that differ only in key order (or
    in fields that do not affect the answer and were already stripped by
    the caller) produce the same cache key.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """An LRU cache of finished results, keyed by workspace version."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = REGISTRY.counter("service.cache.hits")
        self.misses = REGISTRY.counter("service.cache.misses")
        self.evictions = REGISTRY.counter("service.cache.evictions")
        self.invalidations = REGISTRY.counter("service.cache.invalidations")

    @staticmethod
    def key(workspace: str, version: int, op: str, params: dict) -> tuple:
        return (workspace, version, op, params_key(params))

    # ------------------------------------------------------------------
    def get(self, key: tuple) -> Optional[Any]:
        """The cached value, refreshing its LRU position; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses.inc()
                return None
            self._entries.move_to_end(key)
        self.hits.inc()
        return value

    def put(self, key: tuple, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions.inc()

    def invalidate(
        self,
        workspace: str,
        live_version: Optional[int] = None,
        live_versions: Optional[dict[str, int]] = None,
    ) -> tuple[int, int]:
        """Eagerly drop ``workspace``'s dead entries; returns
        ``(dropped, survived)``.

        ``live_versions`` maps an operation name to the version still
        current for that op (the region clock's sub-epochs): an entry
        survives when its key version equals its op's live version —
        i.e. when the mutation's region provably could not change its
        answer.  ``live_version`` is the legacy single-version form
        (applies to every op).  With neither, everything for the
        workspace goes.  Version keying already guarantees correctness
        without this — the eager drop only reclaims memory promptly
        after mutations; the survivor count is what makes cache warmth
        under churn observable.
        """

        def alive(key: tuple) -> bool:
            if live_versions is not None:
                live = live_versions.get(key[2], live_version)
            else:
                live = live_version
            return live is not None and key[1] == live

        with self._lock:
            mine = [key for key in self._entries if key[0] == workspace]
            stale = [key for key in mine if not alive(key)]
            for key in stale:
                del self._entries[key]
        if stale:
            self.invalidations.inc(len(stale))
        return len(stale), len(mine) - len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}, capacity={self.capacity}, "
            f"hits={self.hits.value}, misses={self.misses.value})"
        )
