"""The versioned result cache of the query service.

Location-selection is a repeated, interactive workload: many concurrent
requests ask the same question of the same dataset.  The cache stores
finished ``select`` (and ``evaluate``) results keyed by

    (workspace name, workspace ``data_version``, operation, params)

so a repeated request is answered without touching the engine at all —
and a :class:`~repro.core.dynamic.DynamicWorkspace` mutation, which
bumps ``data_version``, makes every cached result for that workspace
unreachable *by construction*.  There is no TTL to tune and no
invalidation message to lose: staleness is impossible because the
version is part of the key.  (:meth:`invalidate` additionally drops a
workspace's dead-version entries eagerly, so mutation-heavy workloads
do not wait for LRU pressure to reclaim them.)

Hit/miss/eviction/invalidation counts are reported into the process
:data:`~repro.obs.registry.REGISTRY` (``service.cache.*``), next to the
storage layer's metrics, so one ``stats`` call shows how much of the
offered load the cache absorbed.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Optional

from repro.obs.registry import REGISTRY

#: Default maximum number of cached results (LRU beyond this).
DEFAULT_CAPACITY = 1024


def params_key(params: dict) -> str:
    """A canonical, hashable fingerprint of request parameters.

    Sorted-key JSON, so two requests that differ only in key order (or
    in fields that do not affect the answer and were already stripped by
    the caller) produce the same cache key.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """An LRU cache of finished results, keyed by workspace version."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = REGISTRY.counter("service.cache.hits")
        self.misses = REGISTRY.counter("service.cache.misses")
        self.evictions = REGISTRY.counter("service.cache.evictions")
        self.invalidations = REGISTRY.counter("service.cache.invalidations")

    @staticmethod
    def key(workspace: str, version: int, op: str, params: dict) -> tuple:
        return (workspace, version, op, params_key(params))

    # ------------------------------------------------------------------
    def get(self, key: tuple) -> Optional[Any]:
        """The cached value, refreshing its LRU position; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses.inc()
                return None
            self._entries.move_to_end(key)
        self.hits.inc()
        return value

    def put(self, key: tuple, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions.inc()

    def invalidate(self, workspace: str, live_version: Optional[int] = None) -> int:
        """Eagerly drop ``workspace``'s entries; returns the count.

        With ``live_version`` given, entries recorded at exactly that
        version survive (they are still correct); everything older goes.
        Version keying already guarantees correctness without this —
        the eager drop only reclaims memory promptly after mutations.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key[0] == workspace
                and (live_version is None or key[1] != live_version)
            ]
            for key in stale:
                del self._entries[key]
        if stale:
            self.invalidations.inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}, capacity={self.capacity}, "
            f"hits={self.hits.value}, misses={self.misses.value})"
        )
