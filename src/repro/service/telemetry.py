"""Live telemetry of the query service: traces, windows, exporters.

:class:`ServiceTelemetry` is the one object the server consults about
observability.  It owns

* the bounded :class:`~repro.obs.live.TraceBuffer` and
  :class:`~repro.obs.live.SlowQueryLog` of finished request traces;
* the structured JSON :class:`~repro.obs.live.AccessLog` (one line per
  request, written atomically);
* the *windowed* upgrade of the service's registry metrics — counters
  and histograms the admission queue, result cache and batcher already
  report into are upgraded in place to their rolling-window variants,
  plus per-``(op, workspace)`` labelled request counters/latency
  histograms (``service.request.count{op=...,workspace=...}``) so a
  live view can show per-workspace qps and windowed p99;
* the OpenMetrics exposition (the ``metrics`` op and the optional
  plain-HTTP ``/metrics`` listener) and the periodic JSON-lines
  registry snapshot sink.

**Ordering matters**: the telemetry object must be constructed *before*
the admission queues, result cache and workspace hosts grab their
metric handles — the in-place upgrade only feeds the rolling windows
for handles fetched *after* it ran.  :class:`QueryService` constructs
telemetry first for exactly this reason.

Telemetry never changes what a query computes: trace ids ride in span
``attrs`` and request envelopes only, so results (``dr`` vectors, I/O
accounting) are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.obs.live import (
    AccessLog,
    RequestTrace,
    SlowQueryLog,
    SnapshotWriter,
    TraceBuffer,
    mint_trace_id,
)
from repro.obs.openmetrics import CONTENT_TYPE, labeled_name, render_openmetrics
from repro.obs.registry import (
    REGISTRY,
    MetricsRegistry,
    WindowedCounter,
    WindowedHistogram,
)

#: Ops that address a workspace (and so get a workspace label).
_WORKSPACE_OPS = ("select", "evaluate", "update")

#: Registry counters upgraded to windowed variants at telemetry start.
_WINDOWED_COUNTERS = (
    "service.admitted",
    "service.rejected.queue_full",
    "service.rejected.shutting_down",
    "service.batches",
    "service.coalesced",
    "service.expired",
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.evictions",
    "service.cache.invalidations",
)

#: Registry histograms upgraded to windowed variants at telemetry start.
_WINDOWED_HISTOGRAMS = (
    "service.select.latency_s",
    "service.batch.size",
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Tunables of one :class:`ServiceTelemetry`."""

    #: Master switch: ``False`` keeps the plain (unwindowed) metrics and
    #: skips all per-request trace work.
    enabled: bool = True
    #: Finished traces kept findable by ``trace_id`` (ring buffer).
    trace_buffer: int = 512
    #: Slowest finished traces kept regardless of buffer churn.
    slow_log: int = 32
    #: Traces faster than this never enter the slow log.
    slow_log_min_s: float = 0.0
    #: Rolling-window span of the windowed metrics.
    window_s: float = 60.0
    #: Ring granularity of the rolling windows.
    window_buckets: int = 12
    #: JSON access log destination (path); ``None`` disables it.
    access_log: Optional[Union[str, Path]] = None
    #: Minimum severity written to the access log.
    log_level: str = "info"
    #: JSON-lines registry snapshot destination; ``None`` disables it.
    snapshot_path: Optional[Union[str, Path]] = None
    #: Cadence of the snapshot task.
    snapshot_interval_s: float = 10.0
    #: Plain-HTTP ``GET /metrics`` port (0 = ephemeral); ``None``
    #: disables the listener (the ``metrics`` op always works).
    metrics_port: Optional[int] = None


class ServiceTelemetry:
    """Traces, windowed metrics and exporters for one service."""

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        registry: MetricsRegistry = REGISTRY,
    ):
        self.config = config or TelemetryConfig()
        self.registry = registry
        self.enabled = self.config.enabled
        self.traces = TraceBuffer(self.config.trace_buffer)
        self.slow = SlowQueryLog(
            self.config.slow_log, self.config.slow_log_min_s
        )
        self.access_log: Optional[AccessLog] = None
        if self.enabled and self.config.access_log is not None:
            self.access_log = AccessLog(
                self.config.access_log, level=self.config.log_level
            )
        self.snapshots: Optional[SnapshotWriter] = None
        if self.enabled and self.config.snapshot_path is not None:
            self.snapshots = SnapshotWriter(
                self.config.snapshot_path, registry, prefix="service."
            )
        self._labeled: dict[tuple[str, str], tuple[WindowedCounter, WindowedHistogram]] = {}
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._tasks: list[asyncio.Task] = []
        if self.enabled:
            self._upgrade_registry()

    # ------------------------------------------------------------------
    # Windowed metrics
    # ------------------------------------------------------------------
    def _upgrade_registry(self) -> None:
        """Upgrade the service's shared metrics to windowed variants.

        Runs before the queues/cache/hosts fetch their handles (see the
        module docstring), so their increments feed the windows.
        """
        w, b = self.config.window_s, self.config.window_buckets
        for name in _WINDOWED_COUNTERS:
            self.registry.windowed_counter(name, window_s=w, buckets=b)
        for name in _WINDOWED_HISTOGRAMS:
            self.registry.windowed_histogram(name, window_s=w, buckets=b)

    def request_metrics(
        self, op: str, workspace: str
    ) -> tuple[WindowedCounter, WindowedHistogram]:
        """The labelled per-``(op, workspace)`` counter and latency
        histogram (get-or-create, cached)."""
        key = (op, workspace)
        pair = self._labeled.get(key)
        if pair is None:
            w, b = self.config.window_s, self.config.window_buckets
            pair = (
                self.registry.windowed_counter(
                    labeled_name("service.request.count", op=op, workspace=workspace),
                    window_s=w,
                    buckets=b,
                ),
                self.registry.windowed_histogram(
                    labeled_name(
                        "service.request.latency_s", op=op, workspace=workspace
                    ),
                    window_s=w,
                    buckets=b,
                ),
            )
            self._labeled[key] = pair
        return pair

    # ------------------------------------------------------------------
    # Per-request lifecycle
    # ------------------------------------------------------------------
    def begin(self, message: dict) -> Optional[RequestTrace]:
        """Open a trace for one decoded request (None when disabled).

        The client's ``trace_id`` is honoured when present; otherwise
        the server mints one, so every response can echo an id the
        caller may look up later.
        """
        if not self.enabled:
            return None
        trace_id = message.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            trace_id = mint_trace_id()
        op = str(message.get("op"))
        workspace = message.get("workspace")
        if workspace is None and op in _WORKSPACE_OPS:
            workspace = "default"
        return RequestTrace(
            trace_id=trace_id,
            op=op,
            workspace=workspace,
            method=message.get("method"),
            request_id=message.get("id"),
        )

    def finish(self, trace: Optional[RequestTrace], outcome: str = "ok") -> None:
        """Close a trace: buffer it, update windows, write the log line."""
        if trace is None:
            return
        trace.finish(outcome)
        self.traces.record(trace)
        self.slow.offer(trace)
        counter, latency = self.request_metrics(
            trace.op, trace.workspace or "-"
        )
        counter.inc()
        latency.observe(trace.latency_s)
        if self.access_log is not None:
            self.access_log.write(
                trace.to_dict(), level="info" if outcome == "ok" else "warning"
            )

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render_metrics(self, prefix: str = "") -> str:
        """The registry in OpenMetrics text exposition form."""
        return render_openmetrics(self.registry, prefix=prefix)

    def trace_payload(self, message: dict) -> dict:
        """Answer one ``trace`` op: by id, the slow log, or recent."""
        if not self.enabled:
            return {"enabled": False, "traces": []}
        trace_id = message.get("trace_id")
        if trace_id is not None:
            found = self.traces.find(str(trace_id))
            return {
                "enabled": True,
                "traces": [found.to_dict()] if found is not None else [],
            }
        if message.get("slow"):
            limit = message["slow"]
            limit = None if limit is True else int(limit)
            return {
                "enabled": True,
                "traces": [t.to_dict() for t in self.slow.slowest(limit)],
            }
        n = int(message.get("recent", 20))
        return {
            "enabled": True,
            "traces": [t.to_dict() for t in self.traces.recent(n)],
        }

    # ------------------------------------------------------------------
    # Background exporters (run on the service's event loop)
    # ------------------------------------------------------------------
    async def start_exporters(
        self, host: str = "127.0.0.1"
    ) -> Optional[tuple[str, int]]:
        """Start the snapshot task and the HTTP listener (if configured).

        Returns the bound ``(host, port)`` of the metrics listener, or
        ``None`` when no listener was requested.
        """
        address: Optional[tuple[str, int]] = None
        if not self.enabled:
            return None
        if self.snapshots is not None:
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._snapshot_loop(), name="svc-telemetry-snapshots"
                )
            )
        if self.config.metrics_port is not None:
            self._http_server = await asyncio.start_server(
                self._serve_http, host, self.config.metrics_port
            )
            sockname = self._http_server.sockets[0].getsockname()
            address = (sockname[0], sockname[1])
        return address

    async def _snapshot_loop(self) -> None:
        assert self.snapshots is not None
        while True:
            await asyncio.sleep(self.config.snapshot_interval_s)
            await asyncio.to_thread(self.snapshots.write_snapshot)

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A deliberately minimal HTTP/1.0 responder for scrapers."""
        try:
            request_line = await reader.readline()
            while True:  # drain headers; scrape requests carry no body
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else "/"
            if path.split("?")[0] in ("/metrics", "/"):
                body = self.render_metrics().encode("utf-8")
                status, ctype = "200 OK", CONTENT_TYPE
            else:
                body = b"not found\n"
                status, ctype = "404 Not Found", "text/plain; charset=utf-8"
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def stop_exporters(self) -> None:
        """Cancel the snapshot task, close the listener and the logs."""
        for task in self._tasks:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        if self.snapshots is not None:
            # One final snapshot so short-lived runs still record data.
            try:
                self.snapshots.write_snapshot(final=True)
            except OSError:
                pass
            self.snapshots.close()
        if self.access_log is not None:
            self.access_log.close()
