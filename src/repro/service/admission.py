"""Admission control: the bounded request queue of one workspace.

A service that accepts every request eventually serves none of them
well; the admission queue makes overload explicit instead.  Each hosted
workspace owns one :class:`AdmissionQueue`:

* **bounded** — at most ``max_pending`` requests may be admitted and
  unfinished at once; a request beyond that is rejected *immediately*
  with :class:`~repro.service.protocol.QueueFullError` (the client sees
  ``queue_full`` and can back off), never silently buffered;
* **deadlines** — an admitted request carries an optional deadline.
  The connection handler stops waiting when it passes (the client gets
  ``deadline_exceeded`` right away) and marks the ticket cancelled, so
  the batcher skips it instead of spending engine time on an answer
  nobody is waiting for;
* **drainable** — :meth:`close` rejects new submissions while
  :meth:`drain` waits for every admitted request to finish, which is
  exactly the graceful-shutdown contract the server needs.

Tickets resolve through an :class:`asyncio.Future` carrying either a
response payload or a :class:`ServiceError`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.registry import REGISTRY
from repro.service.protocol import QueueFullError, ShuttingDownError


@dataclass
class Ticket:
    """One admitted request travelling from connection to batcher."""

    op: str
    params: dict
    future: "asyncio.Future[Any]"
    enqueued_at: float
    deadline: Optional[float] = None  # absolute loop time, None = no limit
    cancelled: bool = False
    meta: dict = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def resolve(self, payload: Any) -> None:
        """Deliver a response payload (idempotent once the waiter left)."""
        if not self.future.done():
            self.future.set_result(payload)

    def fail(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)


class AdmissionQueue:
    """A bounded FIFO of tickets with explicit rejection."""

    def __init__(self, name: str, max_pending: int):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.name = name
        self.max_pending = max_pending
        self._queue: asyncio.Queue[Ticket] = asyncio.Queue()
        self._pending = 0  # admitted and not yet finished
        self._closed = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._rejected_full = REGISTRY.counter("service.rejected.queue_full")
        self._rejected_closed = REGISTRY.counter("service.rejected.shutting_down")
        self._admitted = REGISTRY.counter("service.admitted")

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests admitted and not yet finished (queued + in flight)."""
        return self._pending

    @property
    def depth(self) -> int:
        """Requests waiting in the queue (not yet picked up)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def submit(self, ticket: Ticket) -> None:
        """Admit ``ticket`` or raise the applicable typed rejection."""
        if self._closed:
            self._rejected_closed.inc()
            raise ShuttingDownError(
                f"workspace {self.name!r} is draining and accepts no new requests"
            )
        if self._pending >= self.max_pending:
            self._rejected_full.inc()
            raise QueueFullError(
                f"workspace {self.name!r} admission queue is full "
                f"({self.max_pending} pending); retry with backoff"
            )
        self._pending += 1
        self._idle.clear()
        self._admitted.inc()
        self._queue.put_nowait(ticket)

    async def get(self) -> Ticket:
        """The next admitted ticket, FIFO."""
        return await self._queue.get()

    async def get_nowait_or_wait(self, timeout: float) -> Optional[Ticket]:
        """The next ticket, or None once ``timeout`` elapses.

        The batcher uses this to hold a micro-batch open for the rest of
        its collection window.
        """
        if timeout <= 0:
            try:
                return self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return None
        try:
            return await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    def finish(self, ticket: Ticket) -> None:
        """Mark one admitted ticket complete (however it resolved)."""
        self._pending -= 1
        if self._pending <= 0:
            self._pending = 0
            self._idle.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; already-admitted requests still run."""
        self._closed = True

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted request finished; False on timeout."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue({self.name!r}, pending={self._pending}/"
            f"{self.max_pending}, closed={self._closed})"
        )
