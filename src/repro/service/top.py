"""``mindist top``: a terminal live view of a running query service.

The renderer is a pure function from one ``stats`` payload (the
``stats`` op's result, default ``service.`` prefix) to a screenful of
text, so it is testable without a terminal or a server.  The CLI loop
around it polls ``stats`` every interval and repaints.

What it shows:

* the header — serving/draining state, uptime, windowed request rate
  and cache hit rate over the service's rolling window;
* one row per ``(workspace, op)`` — windowed qps and p50/p99 latency,
  from the labelled ``service.request.*`` windowed metrics;
* one row per hosted workspace — queue depth, pending, admission
  bound, data version, the region clock's select epoch and the cache
  survival rate under mutations (how much of the result cache outlived
  this workspace's writes — ``-`` before any mutation retired entries);
* the lifetime counter footer (admitted / rejected / batches /
  coalesced / expired), for orientation between windows.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.openmetrics import split_labels

#: The labelled metric families the per-op table is built from.
_COUNT_FAMILY = "service.request.count"
_LATENCY_FAMILY = "service.request.latency_s"


def _fmt_duration(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def _window_views(stats: dict) -> dict[str, dict]:
    window = stats.get("window")
    return window if isinstance(window, dict) else {}


def _op_rows(stats: dict) -> list[dict[str, Any]]:
    """One row per labelled (workspace, op) pair, sorted for stability."""
    rows: dict[tuple[str, str], dict[str, Any]] = {}

    def row(workspace: str, op: str) -> dict[str, Any]:
        return rows.setdefault(
            (workspace, op),
            {"workspace": workspace, "op": op, "qps": 0.0, "p50": 0.0, "p99": 0.0},
        )

    for name, view in _window_views(stats).items():
        family, labels = split_labels(name)
        workspace = labels.get("workspace", "-")
        op = labels.get("op", "?")
        if family == _COUNT_FAMILY:
            row(workspace, op)["qps"] = float(view.get("rate", 0.0))
        elif family == _LATENCY_FAMILY:
            entry = row(workspace, op)
            entry["p50"] = float(view.get("p50", 0.0))
            entry["p99"] = float(view.get("p99", 0.0))
    return [rows[key] for key in sorted(rows)]


def _window_cache_hit_rate(stats: dict) -> Optional[float]:
    window = _window_views(stats)
    hits = window.get("service.cache.hits", {}).get("total")
    misses = window.get("service.cache.misses", {}).get("total")
    if hits is None or misses is None or hits + misses == 0:
        return None
    return hits / (hits + misses)


def render_top(
    stats: dict,
    interval_s: float = 2.0,
    endpoint: str = "",
) -> str:
    """Render one ``stats`` payload as a live-view screen."""
    lines: list[str] = []
    status = stats.get("status", "?")
    uptime = float(stats.get("uptime_s", 0.0))
    rows = _op_rows(stats)
    total_qps = sum(r["qps"] for r in rows)
    hit_rate = _window_cache_hit_rate(stats)
    where = f" {endpoint}" if endpoint else ""
    lines.append(
        f"mindist top{where} — {status}, up {_fmt_duration(uptime)}, "
        f"refresh {interval_s:g}s"
    )
    lines.append(
        f"window: {total_qps:.1f} req/s, cache hit rate "
        + (f"{hit_rate:.2f}" if hit_rate is not None else "n/a")
    )
    lines.append("")
    lines.append(f"{'WORKSPACE':<14} {'OP':<10} {'QPS':>8} {'P50MS':>8} {'P99MS':>8}")
    if rows:
        for r in rows:
            lines.append(
                f"{r['workspace']:<14} {r['op']:<10} {r['qps']:>8.1f} "
                f"{_fmt_ms(r['p50']):>8} {_fmt_ms(r['p99']):>8}"
            )
    else:
        lines.append("(no windowed request metrics yet — issue some requests)")
    lines.append("")
    workspaces = stats.get("workspaces", {})
    if workspaces:
        lines.append(
            f"{'WORKSPACE':<14} {'QUEUE':>6} {'PENDING':>8} {'BOUND':>6} "
            f"{'VERSION':>8} {'EPOCH':>6} {'SURV':>6} {'SIZE (c/f/p)':>16}"
        )
        for name in sorted(workspaces):
            ws = workspaces[name]
            size = f"{ws.get('n_c', 0)}/{ws.get('n_f', 0)}/{ws.get('n_p', 0)}"
            clock = ws.get("region_clock") or {}
            epoch = clock.get("select_epoch", "-")
            survival = ws.get("cache_survival")
            surv = f"{survival:.2f}" if survival is not None else "-"
            lines.append(
                f"{name:<14} {ws.get('queue_depth', 0):>6} "
                f"{ws.get('pending', 0):>8} {ws.get('max_pending', 0):>6} "
                f"{ws.get('data_version', 0):>8} {epoch!s:>6} {surv:>6} "
                f"{size:>16}"
            )
        lines.append("")
    counters = stats.get("counters", {})
    lines.append(
        "lifetime: "
        f"admitted={counters.get('service.admitted', 0):.0f} "
        f"queue_full={counters.get('service.rejected.queue_full', 0):.0f} "
        f"batches={counters.get('service.batches', 0):.0f} "
        f"coalesced={counters.get('service.coalesced', 0):.0f} "
        f"expired={counters.get('service.expired', 0):.0f} "
        f"cache_hits={counters.get('service.cache.hits', 0):.0f}"
    )
    return "\n".join(lines) + "\n"
