"""The blocking client of the query service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
one TCP connection.  Two calling styles:

* request/response — :meth:`select`, :meth:`evaluate`, :meth:`update`,
  :meth:`stats`, :meth:`health` each send one request and block for its
  response;
* pipelined — :meth:`select_many` writes a burst of requests before
  reading any response, so they all land inside the server's micro-
  batch window and are executed through a single engine batch.  The
  responses are re-associated by ``id`` (the server answers in
  completion order, not request order).

``select`` returns a :class:`ServiceSelection`: the reconstructed
:class:`~repro.core.types.SelectionResult` — floats round-trip the wire
exactly, so it compares ``==`` against an in-process ``select()`` —
plus the service-side envelope (cache hit?, micro-batch size, queue
wait, data version).

The client is thread-safe in the simple sense: a lock serialises whole
calls, so concurrent *load* should use one client per thread (or
pipelining), not one shared client.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.types import SelectionResult
from repro.service.protocol import (
    ClientConnectionError,
    decode,
    encode,
    error_from_wire,
    selection_from_wire,
)


@dataclass(frozen=True)
class ServiceSelection:
    """One ``select`` answer plus its service envelope."""

    result: SelectionResult
    cached: bool
    data_version: int
    batch_size: Optional[int] = None
    queue_wait_s: Optional[float] = None
    #: The id this request's server-side spans were correlated under
    #: (client-assigned or server-minted); look it up with ``trace``.
    trace_id: Optional[str] = None

    @classmethod
    def from_response(cls, response: dict) -> "ServiceSelection":
        return cls(
            result=selection_from_wire(response["result"]),
            cached=bool(response.get("cached", False)),
            data_version=int(response.get("data_version", 0)),
            batch_size=response.get("batch_size"),
            queue_wait_s=response.get("queue_wait_s"),
            trace_id=response.get("trace_id"),
        )


class ServiceClient:
    """A blocking newline-JSON client; usable as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7733,
        connect_timeout_s: float = 10.0,
        io_timeout_s: Optional[float] = 60.0,
        connect_retries: int = 0,
        retry_delay_s: float = 0.1,
    ):
        """Connect eagerly; raises :class:`ClientConnectionError` on failure.

        ``connect_retries`` bounds *re*-attempts after a refused/failed
        connect (0 = the historical single attempt), each preceded by a
        ``retry_delay_s`` pause — enough for a server that is still
        binding its port, or a shard coordinator waiting out a shard
        restart, without ever hanging on one that never comes up.
        """
        if connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        self.host = host
        self.port = port
        last_error: Optional[OSError] = None
        for attempt in range(connect_retries + 1):
            if attempt:
                time.sleep(retry_delay_s)
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=connect_timeout_s
                )
                break
            except OSError as exc:
                last_error = exc
        else:
            raise ClientConnectionError(
                f"cannot connect to {host}:{port} after "
                f"{connect_retries + 1} attempt(s): {last_error}"
            ) from last_error
        self._sock.settimeout(io_timeout_s)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0
        #: Per-connection tag making auto-assigned trace ids unique
        #: across clients without any coordination.
        self._trace_tag = uuid.uuid4().hex[:12]

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _mint_trace_id(self, request_id: int) -> str:
        return f"c-{self._trace_tag}-{request_id}"

    def _send(self, message: dict) -> None:
        self._file.write(encode(message))

    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ClientConnectionError(
                "service closed the connection mid-request"
            )
        return decode(line)

    def _roundtrip(self, message: dict) -> dict:
        """Send one request; return its ``ok`` response or raise.

        Transport failures (reset, timeout, mid-request EOF) surface as
        :class:`ClientConnectionError`, never a raw ``OSError``.
        """
        with self._lock:
            try:
                self._send(message)
                self._file.flush()
                response = self._read_response()
            except ClientConnectionError:
                raise
            except OSError as exc:
                raise ClientConnectionError(
                    f"connection to {self.host}:{self.port} failed "
                    f"mid-request: {exc}"
                ) from exc
        return _unwrap(response, expected_id=message["id"])

    def call(self, op: str, **params: Any) -> dict:
        """Issue one raw operation; returns the full response dict."""
        message = {"id": self._take_id(), "op": op, **params}
        return self._roundtrip(message)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def select(
        self,
        method: str = "MND",
        workspace: str = "default",
        timeout_s: Optional[float] = None,
        no_cache: bool = False,
        trace_id: Optional[str] = None,
    ) -> ServiceSelection:
        """Answer one min-dist location selection query over the wire.

        Every request carries a ``trace_id`` — the caller's, or an
        auto-assigned per-connection one — so server-side spans are
        always recoverable via :meth:`trace`.
        """
        request_id = self._take_id()
        message: dict[str, Any] = {
            "id": request_id,
            "op": "select",
            "workspace": workspace,
            "method": method,
            "trace_id": trace_id or self._mint_trace_id(request_id),
        }
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        if no_cache:
            message["no_cache"] = True
        return ServiceSelection.from_response(self._roundtrip(message))

    def select_many(
        self,
        methods: Sequence[str],
        workspace: str = "default",
        timeout_s: Optional[float] = None,
        no_cache: bool = False,
    ) -> list[ServiceSelection]:
        """Pipeline many selections on this one connection.

        All requests are written before any response is read, so the
        server sees them (near-)simultaneously and coalesces them into
        a micro-batch.  Results come back in ``methods`` order no
        matter the completion order; the first error is raised after
        every response arrived.
        """
        if not methods:
            return []
        with self._lock:
            try:
                ids = []
                for method in methods:
                    request_id = self._take_id()
                    message: dict[str, Any] = {
                        "id": request_id,
                        "op": "select",
                        "workspace": workspace,
                        "method": method,
                        "trace_id": self._mint_trace_id(request_id),
                    }
                    if timeout_s is not None:
                        message["timeout_s"] = timeout_s
                    if no_cache:
                        message["no_cache"] = True
                    ids.append(message["id"])
                    self._send(message)
                self._file.flush()
                by_id: dict[Any, dict] = {}
                for _ in ids:
                    response = self._read_response()
                    by_id[response.get("id")] = response
            except ClientConnectionError:
                raise
            except OSError as exc:
                raise ClientConnectionError(
                    f"connection to {self.host}:{self.port} failed "
                    f"mid-pipeline: {exc}"
                ) from exc
        missing = [i for i in ids if i not in by_id]
        if missing:
            raise ClientConnectionError(
                f"no response for request id(s) {missing}"
            )
        return [
            ServiceSelection.from_response(_unwrap(by_id[i], expected_id=i))
            for i in ids
        ]

    def partials(
        self,
        method: str = "MND",
        workspace: str = "default",
        trace_id: Optional[str] = None,
    ) -> dict:
        """One workspace's full ``dr`` vector + I/O snapshot (the
        scatter half of a shard coordinator's merge); returns the whole
        response so callers see ``data_version`` and ``cached`` too."""
        params: dict[str, Any] = {"workspace": workspace, "method": method}
        if trace_id is not None:
            params["trace_id"] = trace_id
        return self.call("partials", **params)

    def evaluate(
        self, ids: Sequence[int], workspace: str = "default"
    ) -> list[dict]:
        response = self.call("evaluate", workspace=workspace, ids=list(ids))
        return response["result"]

    def update(self, action: str, workspace: str = "default", **params: Any) -> dict:
        """Apply one mutation (``add_client``, ``remove_client``,
        ``add_facility``, ``remove_facility``) and return its report."""
        response = self.call(
            "update", workspace=workspace, action=action, **params
        )
        return response["result"]

    def stats(self, prefix: Optional[str] = None) -> dict:
        """Service stats; ``prefix=""`` exposes the whole registry."""
        if prefix is None:
            return self.call("stats")["result"]
        return self.call("stats", prefix=prefix)["result"]

    def health(self) -> dict:
        return self.call("health")["result"]

    def metrics(self) -> str:
        """The registry in OpenMetrics text exposition form."""
        return self.call("metrics")["result"]["body"]

    def trace(
        self,
        trace_id: Optional[str] = None,
        recent: Optional[int] = None,
        slow: Optional[int] = None,
    ) -> list[dict]:
        """Finished request traces: one by id, the slow log, or recent."""
        params: dict[str, Any] = {}
        if trace_id is not None:
            params["trace_id"] = trace_id
        elif slow is not None:
            params["slow"] = slow
        elif recent is not None:
            params["recent"] = recent
        return self.call("trace", **params)["result"]["traces"]


def _unwrap(response: dict, expected_id: Any = None) -> dict:
    if expected_id is not None and response.get("id") != expected_id:
        raise ClientConnectionError(
            f"response id {response.get('id')!r} does not match "
            f"request id {expected_id!r} (unpipelined call)"
        )
    if not response.get("ok", False):
        raise error_from_wire(response.get("error", {}))
    return response
