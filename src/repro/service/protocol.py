"""The wire protocol of the query service.

Newline-delimited JSON: every request and every response is one JSON
object on one line, UTF-8 encoded.  Requests carry a caller-chosen
``id`` that the matching response echoes back — responses may arrive
out of request order (the server handles every request concurrently, so
a pipelined burst of selections coalesces into one micro-batch), and
the ``id`` is how callers re-associate them.

Request shape::

    {"id": 7, "op": "select", "workspace": "default", "method": "MND"}

Response shape::

    {"id": 7, "ok": true, "result": {...}, "cached": false, ...}
    {"id": 8, "ok": false, "error": {"code": "queue_full", "message": "..."}}

Operations: ``select`` (answer one query), ``evaluate`` (report on
specific candidates), ``update`` (mutate a dynamic workspace),
``stats`` (service counters; optional ``prefix`` widens the registry
view), ``health`` (liveness/drain state), ``metrics`` (OpenMetrics
text exposition), ``trace`` (look up finished request traces) and
``partials`` (one workspace's full ``dr`` vector plus I/O snapshot —
the scatter half of the shard coordinator's exact merge, see
:mod:`repro.shard`).

Any request may carry a caller-chosen ``trace_id`` string; the server
correlates its internal spans under it and echoes it on the response
(minting one when absent), so a slow answer can be investigated after
the fact with the ``trace`` op.

Floats cross the wire through ``json``'s ``repr``-based formatting,
which round-trips every finite IEEE-754 double exactly — so a ``dr``
value read back from the wire is *byte-identical* to the in-process
one, and the parity tests can (and do) compare with ``==``, not with a
tolerance.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.types import SelectionResult, Site

#: Protocol revision, echoed by ``health``.  Bump on any incompatible
#: change to request/response shapes.
PROTOCOL_VERSION = 1

#: The operations a server understands.
OPERATIONS = (
    "select",
    "evaluate",
    "update",
    "stats",
    "health",
    "metrics",
    "trace",
    "partials",
)

# ----------------------------------------------------------------------
# Error codes
# ----------------------------------------------------------------------
E_BAD_REQUEST = "bad_request"
E_UNKNOWN_WORKSPACE = "unknown_workspace"
E_UNKNOWN_METHOD = "unknown_method"
E_QUEUE_FULL = "queue_full"
E_DEADLINE_EXCEEDED = "deadline_exceeded"
E_SHUTTING_DOWN = "shutting_down"
E_UNSUPPORTED = "unsupported"
E_INTERNAL = "internal"
#: A shard coordinator could not reach (or lost) one of its shard
#: servers mid-scatter.  The coordinator never serves a partial answer:
#: the whole request fails with this code until the shard rejoins.
E_SHARD_UNAVAILABLE = "shard_unavailable"
#: Client-side only: the TCP connection itself failed (refused, reset,
#: mid-request EOF, timed out).  Never sent by a server — there is no
#: connection left to send it on — but carried by the same typed-error
#: taxonomy so callers and the load generator account it uniformly.
E_CONNECTION = "connection"


class ServiceError(Exception):
    """A protocol-level failure with a machine-readable code.

    Raised by the server while handling a request (turned into an
    ``ok: false`` response) and re-raised by the client when it reads
    one back.
    """

    code = E_INTERNAL

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        if code is not None:
            self.code = code

    @property
    def message(self) -> str:
        return str(self)


class BadRequestError(ServiceError):
    code = E_BAD_REQUEST


class UnknownWorkspaceError(ServiceError):
    code = E_UNKNOWN_WORKSPACE


class UnknownMethodError(ServiceError):
    code = E_UNKNOWN_METHOD


class QueueFullError(ServiceError):
    code = E_QUEUE_FULL


class DeadlineExceededError(ServiceError):
    code = E_DEADLINE_EXCEEDED


class ShuttingDownError(ServiceError):
    code = E_SHUTTING_DOWN


class UnsupportedError(ServiceError):
    code = E_UNSUPPORTED


class ShardUnavailableError(ServiceError):
    """A scatter-gather fan-out lost a shard (see :mod:`repro.shard`)."""

    code = E_SHARD_UNAVAILABLE


class ClientConnectionError(ServiceError, ConnectionError):
    """The transport failed under the client (refused, reset, EOF).

    Subclasses :class:`ConnectionError` too, so pre-existing callers
    that catch the builtin keep working; new callers get the typed
    ``code`` (``"connection"``) the error taxonomy promises.  Not in
    :data:`_ERROR_TYPES` on purpose: it never crosses the wire.
    """

    code = E_CONNECTION


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        BadRequestError,
        UnknownWorkspaceError,
        UnknownMethodError,
        QueueFullError,
        DeadlineExceededError,
        ShuttingDownError,
        UnsupportedError,
        ShardUnavailableError,
    )
}


def error_from_wire(error: dict) -> ServiceError:
    """Rebuild the typed error a response's ``error`` object describes."""
    code = error.get("code", E_INTERNAL)
    message = error.get("message", "unknown service error")
    cls = _ERROR_TYPES.get(code, ServiceError)
    return cls(message, code=code)


# ----------------------------------------------------------------------
# Line framing
# ----------------------------------------------------------------------
def encode(message: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one line into a message dict.

    Raises :class:`BadRequestError` on anything that is not a JSON
    object — the server answers those with a ``bad_request`` error
    rather than dropping the connection.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise BadRequestError(f"request is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise BadRequestError("request must be a JSON object")
    return message


def ok_response(request_id: Any, result: Any, **extra: Any) -> dict:
    response = {"id": request_id, "ok": True, "result": result}
    response.update(extra)
    return response


def error_response(request_id: Any, error: ServiceError) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": error.code, "message": error.message},
    }


# ----------------------------------------------------------------------
# SelectionResult <-> wire
# ----------------------------------------------------------------------
def selection_to_wire(result: SelectionResult) -> dict:
    """A :class:`SelectionResult` as a JSON-safe dict."""
    return {
        "method": result.method,
        "location": {
            "sid": result.location.sid,
            "x": result.location.x,
            "y": result.location.y,
        },
        "dr": result.dr,
        "elapsed_s": result.elapsed_s,
        "cpu_s": result.cpu_s,
        "io_total": result.io_total,
        "io_reads": dict(result.io_reads),
        "index_pages": result.index_pages,
    }


def selection_from_wire(data: dict) -> SelectionResult:
    """The inverse of :func:`selection_to_wire` (exact round-trip)."""
    loc = data["location"]
    return SelectionResult(
        method=data["method"],
        location=Site(int(loc["sid"]), float(loc["x"]), float(loc["y"])),
        dr=float(data["dr"]),
        elapsed_s=float(data["elapsed_s"]),
        cpu_s=float(data["cpu_s"]),
        io_total=int(data["io_total"]),
        io_reads={str(k): int(v) for k, v in data.get("io_reads", {}).items()},
        index_pages=int(data.get("index_pages", 0)),
    )
