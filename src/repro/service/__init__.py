"""The async query service: serving min-dist selections over TCP.

The layers below the wire (four query methods, the deterministic
parallel engine, the obs/bench stack) answer queries *inside* one
Python process; this package serves them to the outside.  One
long-lived :class:`QueryService` hosts named workspaces behind a
newline-delimited JSON protocol with

* **admission control** — a bounded per-workspace queue with explicit
  ``queue_full`` rejection, per-request deadlines and graceful drain;
* **micro-batching** — concurrent selections coalesce into single
  :meth:`~repro.exec.engine.QueryEngine.run_batch` calls, amortising
  the worker pool and the decoded-leaf cache across requests;
* a **versioned result cache** — keyed by the workspace's
  ``data_version``, so a ``DynamicWorkspace`` mutation invalidates by
  construction;
* **live telemetry** — request tracing under client-assigned trace
  ids, rolling-window metrics with an OpenMetrics exposition, a JSON
  access log and the ``mindist top`` live view (see
  :mod:`repro.service.telemetry`).

Quick usage::

    from repro.core import DynamicWorkspace
    from repro.datasets import make_instance
    from repro.service import ServiceClient, serve_in_thread

    ws = DynamicWorkspace(make_instance(10_000, 500, 500, rng=7))
    with serve_in_thread({"default": ws}) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            answer = client.select("MND")
            print(answer.result.location, answer.result.dr)

or from a shell: ``mindist serve --random 10000 500 500 --port 7733``
and ``mindist call select --method MND --port 7733``.
"""

from repro.service.admission import AdmissionQueue, Ticket
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceSelection
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BadRequestError,
    ClientConnectionError,
    DeadlineExceededError,
    QueueFullError,
    ServiceError,
    ShardUnavailableError,
    ShuttingDownError,
    UnknownMethodError,
    UnknownWorkspaceError,
    UnsupportedError,
)
from repro.service.server import (
    QueryService,
    ServiceConfig,
    ServiceHandle,
    WorkspaceHost,
    serve_in_thread,
)
from repro.service.telemetry import ServiceTelemetry, TelemetryConfig
from repro.service.top import render_top

__all__ = [
    "AdmissionQueue",
    "BadRequestError",
    "ClientConnectionError",
    "DeadlineExceededError",
    "PROTOCOL_VERSION",
    "QueryService",
    "QueueFullError",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "ServiceSelection",
    "ServiceTelemetry",
    "ShardUnavailableError",
    "ShuttingDownError",
    "TelemetryConfig",
    "Ticket",
    "UnknownMethodError",
    "UnknownWorkspaceError",
    "UnsupportedError",
    "WorkspaceHost",
    "render_top",
    "serve_in_thread",
]
