"""Road networks: graphs with embedded nodes and length-weighted edges.

Two generators cover the usual evaluation settings:

* ``grid_network`` — a Manhattan-style lattice with positional jitter
  and random edge dropout (kept connected), resembling planned cities;
* ``delaunay_network`` — the Delaunay triangulation of random sites,
  resembling organically grown road systems (planar, well connected,
  realistic degree distribution).
"""

from __future__ import annotations

import math
import random
import networkx as nx

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.datasets.generators import DOMAIN


class RoadNetwork:
    """A connected, undirected road graph embedded in the plane.

    Nodes are integers with a ``pos`` attribute; edge weights are the
    Euclidean length of the segment (the common road-network model).
    """

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("a road network needs at least one node")
        if not nx.is_connected(graph):
            raise ValueError("road networks must be connected")
        for __, data in graph.nodes(data=True):
            if "pos" not in data:
                raise ValueError("every node needs a 'pos' attribute")
        self.graph = graph

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def position(self, node: int) -> Point:
        return Point(*self.graph.nodes[node]["pos"])

    def nodes(self) -> list[int]:
        return list(self.graph.nodes)

    def nearest_node(self, p: Point) -> int:
        """The node closest (Euclidean) to an arbitrary point — used to
        snap off-network objects onto the network."""
        return min(
            self.graph.nodes,
            key=lambda n: p.distance_sq_to(self.position(n)),
        )

    def shortest_path_length(self, a: int, b: int) -> float:
        return nx.dijkstra_path_length(self.graph, a, b, weight="weight")

    def total_length(self) -> float:
        return sum(d["weight"] for __, __, d in self.graph.edges(data=True))

    def __repr__(self) -> str:
        return f"RoadNetwork(nodes={self.num_nodes}, edges={self.num_edges})"


def _euclidean_weight(graph: nx.Graph) -> None:
    for a, b in graph.edges:
        pa = graph.nodes[a]["pos"]
        pb = graph.nodes[b]["pos"]
        graph.edges[a, b]["weight"] = math.dist(pa, pb)


def grid_network(
    rows: int,
    cols: int,
    rng: random.Random | int | None = None,
    jitter: float = 0.2,
    dropout: float = 0.1,
    domain: Rect = DOMAIN,
) -> RoadNetwork:
    """A jittered ``rows x cols`` lattice with random edge dropout.

    ``jitter`` displaces intersections by up to that fraction of the
    cell size; ``dropout`` removes that fraction of edges, skipping any
    removal that would disconnect the network.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid networks need at least 2x2 intersections")
    r = rng if isinstance(rng, random.Random) else random.Random(rng)
    graph = nx.Graph()
    cell_w = domain.width / (cols - 1)
    cell_h = domain.height / (rows - 1)

    def node_id(i: int, j: int) -> int:
        return i * cols + j

    for i in range(rows):
        for j in range(cols):
            x = domain.xmin + j * cell_w + r.uniform(-jitter, jitter) * cell_w
            y = domain.ymin + i * cell_h + r.uniform(-jitter, jitter) * cell_h
            graph.add_node(node_id(i, j), pos=(x, y))
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                graph.add_edge(node_id(i, j), node_id(i, j + 1))
            if i + 1 < rows:
                graph.add_edge(node_id(i, j), node_id(i + 1, j))

    edges = list(graph.edges)
    r.shuffle(edges)
    to_drop = int(len(edges) * dropout)
    for edge in edges[:to_drop]:
        graph.remove_edge(*edge)
        if not nx.is_connected(graph):
            graph.add_edge(*edge)

    _euclidean_weight(graph)
    return RoadNetwork(graph)


def delaunay_network(
    n_nodes: int,
    rng: random.Random | int | None = None,
    domain: Rect = DOMAIN,
) -> RoadNetwork:
    """The Delaunay triangulation of ``n_nodes`` random sites.

    Requires at least 3 non-collinear sites; the triangulation of random
    points is connected and planar, a standard synthetic road model.
    """
    if n_nodes < 3:
        raise ValueError("a Delaunay network needs at least 3 nodes")
    import numpy as np
    from scipy.spatial import Delaunay

    r = rng if isinstance(rng, random.Random) else random.Random(rng)
    sites = np.array(
        [
            (r.uniform(domain.xmin, domain.xmax), r.uniform(domain.ymin, domain.ymax))
            for __ in range(n_nodes)
        ]
    )
    triangulation = Delaunay(sites)
    graph = nx.Graph()
    for i, (x, y) in enumerate(sites):
        graph.add_node(i, pos=(float(x), float(y)))
    for simplex in triangulation.simplices:
        a, b, c = (int(v) for v in simplex)
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(c, a)
    _euclidean_weight(graph)
    return RoadNetwork(graph)
