"""Road-network variant of the min-dist location selection query.

The paper studies the Euclidean setting; its closest min-dist relative,
Xiao et al. [17] (ICDE 2011), works on road networks.  This package
carries the paper's *discrete candidate set* formulation over to
networks: clients, facilities and potential locations sit on the nodes
of a road graph, distances are shortest-path lengths, and the query
still maximises the total nearest-facility-distance reduction.

Provided substrates:

* :mod:`~repro.network.roadnet` — road-network construction: perturbed
  grids and Delaunay-based random planar networks with Euclidean edge
  weights.
* :mod:`~repro.network.query` — ``dnn`` precomputation via multi-source
  Dijkstra, a per-candidate Dijkstra baseline, and a pruned expansion
  that stops at the largest remaining NFD (the network analogue of the
  NFC insight: a candidate only influences clients within NFD radius).
"""

from repro.network.query import NetworkMindistQuery, network_dnn
from repro.network.roadnet import RoadNetwork, delaunay_network, grid_network

__all__ = [
    "NetworkMindistQuery",
    "RoadNetwork",
    "delaunay_network",
    "grid_network",
    "network_dnn",
]
